//! Top-level declarations: functions, globals, tables, and modules
//! (paper Fig. 2, bottom).

use std::fmt;

use super::instr::Instr;
use super::size::Size;
use super::types::{FunType, Pretype};

/// A function declaration `f ::= ex* function χ local sz* e* |
/// ex* function im`.
#[derive(Debug, Clone, PartialEq)]
pub enum Func {
    /// A function defined in this module.
    Defined {
        /// Names under which the function is exported.
        exports: Vec<String>,
        /// The (possibly polymorphic) function type.
        ty: FunType,
        /// Sizes of the extra local slots (parameters get their own slots
        /// implicitly, sized by their types).
        locals: Vec<Size>,
        /// The body.
        body: Vec<Instr>,
    },
    /// A function imported from another module.
    Imported {
        /// Names under which the import is re-exported.
        exports: Vec<String>,
        /// The providing module's name.
        module: String,
        /// The export name within the providing module.
        name: String,
        /// The declared type — checked against the provider at link time.
        ty: FunType,
    },
}

impl Func {
    /// The function's declared type.
    pub fn ty(&self) -> &FunType {
        match self {
            Func::Defined { ty, .. } | Func::Imported { ty, .. } => ty,
        }
    }

    /// The function's export names.
    pub fn exports(&self) -> &[String] {
        match self {
            Func::Defined { exports, .. } | Func::Imported { exports, .. } => exports,
        }
    }
}

/// The defining payload of a global declaration
/// `glob ::= ex* glob mut? p e* | ex* glob im`.
///
/// Globals hold unrestricted pretypes (they may be read repeatedly), so no
/// qualifier annotation is needed: the qualifier is always `unr`.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalKind {
    /// A global defined in this module; `init` is a constant expression.
    Defined {
        /// Whether the global may be written with `set_global`.
        mutable: bool,
        /// The pretype stored (at qualifier `unr`).
        ty: Pretype,
        /// The constant initialiser instruction sequence.
        init: Vec<Instr>,
    },
    /// A global imported from another module.
    Imported {
        /// The providing module's name.
        module: String,
        /// The export name within the providing module.
        name: String,
        /// Whether the global is mutable.
        mutable: bool,
        /// The pretype stored.
        ty: Pretype,
    },
}

/// A global declaration together with its export names.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Names under which the global is exported.
    pub exports: Vec<String>,
    /// The declaration payload.
    pub kind: GlobalKind,
}

impl Global {
    /// Whether the global is mutable.
    pub fn mutable(&self) -> bool {
        match &self.kind {
            GlobalKind::Defined { mutable, .. } | GlobalKind::Imported { mutable, .. } => *mutable,
        }
    }

    /// The stored pretype.
    pub fn ty(&self) -> &Pretype {
        match &self.kind {
            GlobalKind::Defined { ty, .. } | GlobalKind::Imported { ty, .. } => ty,
        }
    }
}

/// The module's function table `tab ::= ex* table i* | ex* table im`,
/// used for indirect calls through `coderef`s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Names under which the table is exported.
    pub exports: Vec<String>,
    /// Function indices (into the module's `funcs`) populating the table.
    pub entries: Vec<u32>,
}

/// A RichWasm module `m ::= module f* glob* tab`.
///
/// ```
/// use richwasm::syntax::Module;
/// let m = Module::default();
/// assert!(m.funcs.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// The functions, defined and imported.
    pub funcs: Vec<Func>,
    /// The globals, defined and imported.
    pub globals: Vec<Global>,
    /// The function table.
    pub table: Table,
}

impl Module {
    /// Finds the index of the function exported under `name`.
    pub fn find_export(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|f| f.exports().iter().any(|e| e == name))
            .map(|i| i as u32)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "(module")?;
        for (i, func) in self.funcs.iter().enumerate() {
            match func {
                Func::Defined {
                    exports,
                    ty,
                    locals,
                    body,
                } => {
                    writeln!(
                        f,
                        "  (func {i} {:?} {ty} (locals {locals:?}) [{} instrs])",
                        exports,
                        body.len()
                    )?;
                }
                Func::Imported {
                    module, name, ty, ..
                } => {
                    writeln!(f, "  (func {i} (import \"{module}\" \"{name}\") {ty})")?;
                }
            }
        }
        for (i, g) in self.globals.iter().enumerate() {
            writeln!(f, "  (global {i} mut={} {})", g.mutable(), g.ty())?;
        }
        writeln!(f, "  (table {:?})", self.table.entries)?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::types::FunType;

    #[test]
    fn find_export_by_name() {
        let m = Module {
            funcs: vec![
                Func::Defined {
                    exports: vec!["f".into()],
                    ty: FunType::mono(vec![], vec![]),
                    locals: vec![],
                    body: vec![],
                },
                Func::Defined {
                    exports: vec!["g".into(), "g2".into()],
                    ty: FunType::mono(vec![], vec![]),
                    locals: vec![],
                    body: vec![],
                },
            ],
            ..Module::default()
        };
        assert_eq!(m.find_export("g2"), Some(1));
        assert_eq!(m.find_export("f"), Some(0));
        assert_eq!(m.find_export("nope"), None);
    }

    #[test]
    fn accessors() {
        let g = Global {
            exports: vec![],
            kind: GlobalKind::Defined {
                mutable: true,
                ty: Pretype::Unit,
                init: vec![],
            },
        };
        assert!(g.mutable());
        assert_eq!(g.ty(), &Pretype::Unit);
    }

    #[test]
    fn display_smoke() {
        let m = Module::default();
        assert!(m.to_string().starts_with("(module"));
    }
}
