//! Property-based tests for the core data structures and judgements:
//! substitution (the part of the paper's Coq development with the only
//! admitted lemmas!), the entailment solvers, and sizing.

use proptest::prelude::*;
use richwasm::env::{KindCtx, SizeBounds};
use richwasm::solver::{qual_leq, size_leq};
use richwasm::subst::{
    generalize_loc, shift_type, subst_type, unshift_type, Depth, Kind, SubstEnv,
};
use richwasm::syntax::{HeapType, Loc, MemPriv, NumType, Pretype, Qual, Size, Type};

/// A generator for closed-ish pretypes with free location variables below
/// `max_loc` and type variables below `max_ty`.
fn arb_pretype(max_loc: u32, max_ty: u32) -> impl Strategy<Value = Pretype> {
    let leaf = prop_oneof![
        Just(Pretype::Unit),
        Just(Pretype::Num(NumType::I32)),
        Just(Pretype::Num(NumType::I64)),
        Just(Pretype::Num(NumType::F64)),
        (0..max_loc.max(1)).prop_map(move |i| {
            if max_loc == 0 {
                Pretype::Ptr(Loc::lin(i))
            } else {
                Pretype::Ptr(Loc::Var(i % max_loc))
            }
        }),
        (0..8u32).prop_map(|i| Pretype::Ptr(Loc::lin(i))),
        (0..8u32).prop_map(|i| Pretype::Ptr(Loc::unr(i))),
    ];
    let leaf = if max_ty > 0 {
        prop_oneof![leaf, (0..max_ty).prop_map(Pretype::Var)].boxed()
    } else {
        leaf.boxed()
    };
    leaf.prop_recursive(3, 24, 4, move |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone().prop_map(|p| p.unr()), 0..4)
                .prop_map(Pretype::Prod),
            inner.clone().prop_map(|p| {
                Pretype::Ref(MemPriv::ReadWrite, Loc::Var(0), HeapType::Array(p.unr()))
            }),
            inner.prop_map(|p| Pretype::ExistsLoc(Box::new(
                Pretype::Prod(vec![p.unr(), Pretype::Ptr(Loc::Var(0)).unr(),]).unr()
            ))),
        ]
    })
}

proptest! {
    /// shift-then-unshift is the identity for every kind.
    #[test]
    fn shift_unshift_roundtrip(p in arb_pretype(4, 3)) {
        let t = p.unr();
        for kind in [Kind::Loc, Kind::Size, Kind::Qual, Kind::Type] {
            let shifted = shift_type(&t, Depth::one(kind));
            let back = unshift_type(&shifted, kind).expect("fresh var cannot occur");
            prop_assert_eq!(&back, &t);
        }
    }

    /// Generalizing a location and substituting it back is the identity
    /// (mem.pack is invertible by mem.unpack).
    #[test]
    fn generalize_then_subst_roundtrip(p in arb_pretype(0, 0), idx in 0u32..8) {
        let t = p.unr();
        let target = Loc::lin(idx);
        let gen = generalize_loc(&t, target);
        let back = subst_type(&gen, &SubstEnv::loc(target));
        prop_assert_eq!(back, t);
    }

    /// Substitution for a variable that does not occur only shifts others.
    #[test]
    fn subst_noop_when_var_absent(p in arb_pretype(0, 0)) {
        let t = p.unr();
        // No type variables occur; substituting type var 0 is a no-op.
        let out = subst_type(&t, &SubstEnv::pretype(Pretype::Unit));
        prop_assert_eq!(out, t);
    }

    /// `size_leq` is sound: whenever it derives `a ≤ b` under concrete
    /// variable bounds, every assignment within those bounds satisfies the
    /// inequality numerically.
    #[test]
    fn size_leq_sound(
        consts in prop::collection::vec(0u64..64, 2..4),
        a_terms in prop::collection::vec(0usize..4, 1..4),
        b_terms in prop::collection::vec(0usize..4, 1..4),
        assignments in prop::collection::vec(0u64..64, 8),
    ) {
        // Context: vars σi with upper bound consts[i % len] (lower bound 0).
        let mut ctx = KindCtx::new();
        let nvars = 4u32;
        let mut uppers = Vec::new();
        for i in 0..nvars {
            let u = consts[i as usize % consts.len()];
            uppers.push(u);
            ctx.push_size(SizeBounds { lower: vec![], upper: vec![Size::Const(u)] });
        }
        // Lookup shifting: bounds written at push time reference nothing,
        // so indices are stable.
        let term = |ts: &[usize]| {
            Size::sum(ts.iter().map(|i| Size::Var((nvars as usize - 1 - *i % 4) as u32)))
        };
        let a = term(&a_terms);
        let b = term(&b_terms) + Size::Const(consts[0]);
        if size_leq(&ctx, &a, &b) {
            // Check a few concrete assignments respecting the bounds.
            let assign = |s: &Size, vals: &[u64]| -> u64 {
                fn eval(s: &Size, vals: &[u64]) -> u64 {
                    match s {
                        Size::Var(i) => vals[*i as usize],
                        Size::Const(c) => *c,
                        Size::Plus(x, y) => eval(x, vals) + eval(y, vals),
                    }
                }
                eval(s, vals)
            };
            let mut vals = vec![0u64; nvars as usize];
            for (k, v) in assignments.iter().enumerate() {
                for i in 0..nvars as usize {
                    // De Bruijn index i corresponds to binder nvars-1-i.
                    let bound = uppers[nvars as usize - 1 - i];
                    vals[i] = (v + k as u64 * 7 + i as u64) % (bound + 1);
                }
                prop_assert!(
                    assign(&a, &vals) <= assign(&b, &vals),
                    "size_leq claimed {a} ≤ {b} but assignment {vals:?} violates it"
                );
            }
        }
    }

    /// Qualifier entailment is reflexive and transitive on the concrete
    /// lattice, with unr bottom and lin top.
    #[test]
    fn qual_lattice_laws(a in 0u8..2, b in 0u8..2, c in 0u8..2) {
        let q = |x: u8| if x == 0 { Qual::Unr } else { Qual::Lin };
        let ctx = KindCtx::new();
        let (a, b, c) = (q(a), q(b), q(c));
        prop_assert!(qual_leq(&ctx, a, a));
        if qual_leq(&ctx, a, b) && qual_leq(&ctx, b, c) {
            prop_assert!(qual_leq(&ctx, a, c));
        }
        prop_assert!(qual_leq(&ctx, Qual::Unr, a));
        prop_assert!(qual_leq(&ctx, a, Qual::Lin));
    }

    /// Sizing is compositional: a tuple's size is the sum of its parts.
    #[test]
    fn tuple_size_is_sum(parts in prop::collection::vec(arb_pretype(0, 0), 0..5)) {
        use richwasm::sizing::size_of_type;
        let ctx = KindCtx::new();
        let types: Vec<Type> = parts.into_iter().map(|p| p.unr()).collect();
        let mut component_sum = 0u64;
        let mut all_sized = true;
        for t in &types {
            match size_of_type(&ctx, t).map(|s| s.eval_closed()) {
                Ok(Some(n)) => component_sum += n,
                _ => all_sized = false,
            }
        }
        prop_assume!(all_sized);
        let tuple = Pretype::Prod(types).unr();
        let total = size_of_type(&ctx, &tuple).unwrap().eval_closed().unwrap();
        prop_assert_eq!(total, component_sum);
    }
}
