//! Integration tests for the RichWasm instruction/module type checker,
//! exercising the typing rules of paper Fig. 7 end to end — including the
//! paper's motivating unsafe-interop shapes (Fig. 1/Fig. 3), which must be
//! *statically rejected*.

use richwasm::env::ModuleEnv;
use richwasm::syntax::instr::Block;
use richwasm::syntax::*;
use richwasm::typecheck::{check_function_body, check_module};
use richwasm::TypeError;

fn i32t() -> Type {
    Type::num(NumType::I32)
}

fn i64t() -> Type {
    Type::num(NumType::I64)
}

/// Builds a single-function module and checks it. By-value parameters
/// keep the dozens of call sites free of `&`/`.clone()` noise.
#[allow(clippy::needless_pass_by_value)]
fn check_fn(ty: FunType, locals: Vec<Size>, body: Vec<Instr>) -> Result<(), TypeError> {
    let env = ModuleEnv::default();
    check_function_body(&env, &ty, &locals, &body).map(|_| ())
}

fn add(nt: NumType) -> Instr {
    Instr::Num(NumInstr::IntBinop(nt, instr_int_add()))
}

fn instr_int_add() -> richwasm::syntax::instr::IntBinop {
    richwasm::syntax::instr::IntBinop::Add
}

#[test]
fn constant_function() {
    check_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![],
        vec![Instr::i32(42)],
    )
    .unwrap();
}

#[test]
fn add_two_params() {
    let ty = FunType::mono(vec![i32t(), i32t()], vec![i32t()]);
    let body = vec![
        Instr::GetLocal(0, Qual::Unr),
        Instr::GetLocal(1, Qual::Unr),
        add(NumType::I32),
    ];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn wrong_result_type_rejected() {
    let err = check_fn(
        FunType::mono(vec![], vec![i64t()]),
        vec![],
        vec![Instr::i32(1)],
    );
    assert!(err.is_err());
}

#[test]
fn leftover_stack_value_rejected() {
    let err = check_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![],
        vec![Instr::i32(1), Instr::i32(2)],
    );
    assert!(err.is_err());
}

#[test]
fn stack_underflow_rejected() {
    let err = check_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![],
        vec![add(NumType::I32)],
    );
    assert!(matches!(err, Err(TypeError::StackUnderflow { .. })));
}

// ---------------------------------------------------------------------
// Linearity
// ---------------------------------------------------------------------

/// A linear tuple type used as a stand-in for a linear resource.
fn lin_res() -> Type {
    Pretype::Prod(vec![Type::unit()]).lin()
}

#[test]
fn dropping_linear_value_rejected() {
    let ty = FunType::mono(vec![lin_res()], vec![]);
    let body = vec![Instr::GetLocal(0, Qual::Lin), Instr::Drop];
    let err = check_fn(ty, vec![], body);
    assert!(
        matches!(err, Err(TypeError::LinearityViolation { .. })),
        "{err:?}"
    );
}

#[test]
fn linear_param_left_in_local_rejected() {
    // Never touching the linear parameter means the final local env still
    // holds it — Fig. 8 requires all locals unrestricted at the end.
    let ty = FunType::mono(vec![lin_res()], vec![]);
    let err = check_fn(ty, vec![], vec![]);
    assert!(
        matches!(err, Err(TypeError::LinearityViolation { .. })),
        "{err:?}"
    );
}

#[test]
fn linear_value_consumed_by_ungroup_ok() {
    let ty = FunType::mono(vec![lin_res()], vec![]);
    // Ungroup the linear tuple into its (unit) components and drop them.
    let body = vec![Instr::GetLocal(0, Qual::Lin), Instr::Ungroup, Instr::Drop];
    check_fn(ty, vec![], body).unwrap();
}

/// The paper's Fig. 1 `stash` shape: using a linear value twice. After the
/// first `get_local` the slot is strongly updated to `unit`, so the second
/// read cannot see the linear value again.
#[test]
fn fig1_stash_duplication_rejected() {
    let ty = FunType::mono(vec![lin_res()], vec![lin_res(), lin_res()]);
    let body = vec![Instr::GetLocal(0, Qual::Lin), Instr::GetLocal(0, Qual::Lin)];
    let err = check_fn(ty, vec![], body);
    assert!(err.is_err(), "duplicating a linear value must be rejected");
}

#[test]
fn tee_local_of_linear_rejected() {
    let ty = FunType::mono(vec![lin_res()], vec![lin_res()]);
    let body = vec![Instr::GetLocal(0, Qual::Lin), Instr::TeeLocal(0)];
    let err = check_fn(ty, vec![], body);
    assert!(
        matches!(err, Err(TypeError::LinearityViolation { .. })),
        "{err:?}"
    );
}

#[test]
fn set_local_over_linear_contents_rejected() {
    let ty = FunType::mono(vec![lin_res(), i32t()], vec![]);
    // Overwriting slot 0 (holding a linear value) drops it.
    let body = vec![Instr::GetLocal(1, Qual::Unr), Instr::SetLocal(0)];
    let err = check_fn(ty, vec![], body);
    assert!(
        matches!(err, Err(TypeError::LinearityViolation { .. })),
        "{err:?}"
    );
}

#[test]
fn select_requires_unrestricted() {
    let ty = FunType::mono(vec![lin_res(), lin_res(), i32t()], vec![lin_res()]);
    let body = vec![
        Instr::GetLocal(0, Qual::Lin),
        Instr::GetLocal(1, Qual::Lin),
        Instr::GetLocal(2, Qual::Unr),
        Instr::Select,
    ];
    let err = check_fn(ty, vec![], body);
    assert!(
        matches!(err, Err(TypeError::LinearityViolation { .. })),
        "{err:?}"
    );
}

// ---------------------------------------------------------------------
// Locals: sizes and strong updates
// ---------------------------------------------------------------------

#[test]
fn set_local_checks_slot_size() {
    // Slot of 32 bits cannot hold an i64.
    let ty = FunType::mono(vec![i64t()], vec![]);
    let body = vec![
        Instr::GetLocal(0, Qual::Unr),
        Instr::SetLocal(1),
        Instr::GetLocal(1, Qual::Unr),
        Instr::Drop,
    ];
    let err = check_fn(ty.clone(), vec![Size::Const(32)], body.clone());
    assert!(matches!(err, Err(TypeError::SizeNotLeq { .. })), "{err:?}");
    // A 64-bit slot works, and the slot's type strongly updates.
    check_fn(ty, vec![Size::Const(64)], body).unwrap();
}

#[test]
fn get_local_annotation_must_match_slot() {
    let ty = FunType::mono(vec![i32t()], vec![i32t()]);
    let body = vec![Instr::GetLocal(0, Qual::Lin)];
    assert!(check_fn(ty, vec![], body).is_err());
}

// ---------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------

#[test]
fn block_with_result() {
    let ty = FunType::mono(vec![], vec![i32t()]);
    let body = vec![Instr::BlockI(
        Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
        vec![Instr::i32(5)],
    )];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn br_transfers_block_result() {
    let ty = FunType::mono(vec![], vec![i32t()]);
    let body = vec![Instr::BlockI(
        Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
        vec![Instr::i32(5), Instr::Br(0), Instr::i32(7)],
    )];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn br_dropping_linear_value_rejected() {
    // A linear value sits on the block's stack below the transferred i32.
    let ty = FunType::mono(vec![lin_res()], vec![i32t()]);
    let body = vec![Instr::BlockI(
        Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
        vec![Instr::GetLocal(0, Qual::Lin), Instr::i32(5), Instr::Br(0)],
    )];
    let err = check_fn(ty, vec![], body);
    assert!(
        matches!(err, Err(TypeError::LinearityViolation { .. })),
        "{err:?}"
    );
}

#[test]
fn loop_with_counter() {
    // local0: i32 counter. Loop: counter += 1; br_if back while < 10.
    let ty = FunType::mono(vec![i32t()], vec![]);
    let body = vec![Instr::LoopI(
        ArrowType::new(vec![], vec![]),
        vec![
            Instr::GetLocal(0, Qual::Unr),
            Instr::i32(1),
            add(NumType::I32),
            Instr::TeeLocal(0),
            Instr::i32(10),
            Instr::Num(NumInstr::IntRelop(
                NumType::I32,
                instr::IntRelop::Lt(instr::Sign::S),
            )),
            Instr::BrIf(0),
        ],
    )];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn br_to_loop_start_with_changed_locals_rejected() {
    // The loop body changes local 0 from i32 to i64 (strong update) and
    // then branches back: the entry locals no longer match.
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![Instr::LoopI(
        ArrowType::new(vec![], vec![]),
        vec![Instr::Val(Value::i64(1)), Instr::SetLocal(0), Instr::Br(0)],
    )];
    let err = check_fn(ty, vec![Size::Const(64)], body);
    assert!(err.is_err());
}

#[test]
fn if_branches_must_agree_on_locals() {
    // then-branch strongly updates local 0 to i64, else leaves it: the
    // declared effects say i64, so the else branch must be rejected.
    let effects = vec![instr::LocalEffect::new(0, i64t())];
    let ty = FunType::mono(vec![i32t()], vec![]);
    let body = vec![
        Instr::GetLocal(0, Qual::Unr),
        Instr::IfI(
            Block::new(ArrowType::new(vec![], vec![]), effects),
            vec![Instr::Val(Value::i64(1)), Instr::SetLocal(1)],
            vec![Instr::Nop],
        ),
        Instr::GetLocal(1, Qual::Unr),
        Instr::Drop,
    ];
    let err = check_fn(ty, vec![Size::Const(64)], body);
    assert!(err.is_err());
}

#[test]
fn return_mid_function() {
    let ty = FunType::mono(vec![], vec![i32t()]);
    let body = vec![Instr::i32(1), Instr::Return, Instr::i32(2)];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn unreachable_makes_rest_polymorphic() {
    let ty = FunType::mono(vec![], vec![i32t()]);
    let body = vec![Instr::Unreachable, add(NumType::I32)];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn br_table_targets_must_agree() {
    let ty = FunType::mono(vec![i32t()], vec![]);
    let body = vec![Instr::BlockI(
        Block::new(ArrowType::new(vec![], vec![]), vec![]),
        vec![
            Instr::BlockI(
                Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                vec![
                    Instr::i32(0),
                    Instr::GetLocal(0, Qual::Unr),
                    // Inner label yields i32, outer yields nothing: disagree.
                    Instr::BrTable(vec![0], 1),
                ],
            ),
            Instr::Drop,
        ],
    )];
    assert!(check_fn(ty, vec![], body).is_err());
}

// ---------------------------------------------------------------------
// Structs: allocation, strong update, swap, free
// ---------------------------------------------------------------------

fn unpack_then(body: Vec<Instr>) -> Instr {
    Instr::MemUnpack(Block::new(ArrowType::new(vec![], vec![]), vec![]), body)
}

/// `mem.unpack` with declared results and local effects.
fn unpack_with(results: Vec<Type>, effects: Vec<instr::LocalEffect>, body: Vec<Instr>) -> Instr {
    Instr::MemUnpack(Block::new(ArrowType::new(vec![], results), effects), body)
}

#[test]
fn struct_roundtrip_linear() {
    // malloc a linear struct { i32@64 }, read the field, free it.
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
        unpack_then(vec![Instr::StructGet(0), Instr::Drop, Instr::StructFree]),
    ];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn struct_strong_update_through_linear_ref() {
    // Replace an i32 field with an i64 (fits the 64-bit slot) — allowed
    // through a linear reference.
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
        unpack_then(vec![
            Instr::Val(Value::i64(9)),
            Instr::StructSet(0),
            Instr::StructFree,
        ]),
    ];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn struct_strong_update_overflowing_slot_rejected() {
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::StructMalloc(vec![Size::Const(32)], Qual::Lin),
        unpack_then(vec![
            Instr::Val(Value::i64(9)),
            Instr::StructSet(0),
            Instr::StructFree,
        ]),
    ];
    let err = check_fn(ty, vec![], body);
    assert!(matches!(err, Err(TypeError::SizeNotLeq { .. })), "{err:?}");
}

#[test]
fn struct_strong_update_through_unr_ref_rejected() {
    // Through an unrestricted (aliasable, GC'd) reference only
    // type-preserving updates are allowed.
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::StructMalloc(vec![Size::Const(64)], Qual::Unr),
        unpack_then(vec![
            Instr::Val(Value::i64(9)),
            Instr::StructSet(0),
            Instr::Drop,
        ]),
    ];
    let err = check_fn(ty, vec![], body);
    assert!(matches!(err, Err(TypeError::Mismatch { .. })), "{err:?}");
}

#[test]
fn struct_type_preserving_update_through_unr_ref_ok() {
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::StructMalloc(vec![Size::Const(64)], Qual::Unr),
        unpack_then(vec![Instr::i32(9), Instr::StructSet(0), Instr::Drop]),
    ];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn struct_get_of_linear_field_rejected() {
    // A linear struct holding a linear tuple: struct.get would duplicate.
    let ty = FunType::mono(vec![lin_res()], vec![]);
    let body = vec![
        Instr::GetLocal(0, Qual::Lin),
        Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
        unpack_then(vec![Instr::StructGet(0), Instr::Drop, Instr::StructFree]),
    ];
    let err = check_fn(ty, vec![], body);
    assert!(
        matches!(err, Err(TypeError::LinearityViolation { .. })),
        "{err:?}"
    );
}

#[test]
fn struct_swap_moves_linear_field() {
    // Swap the linear field out (replacing it with unit), consume it, then
    // free the struct.
    let ty = FunType::mono(vec![lin_res()], vec![]);
    let body = vec![
        Instr::GetLocal(0, Qual::Lin),
        Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
        unpack_then(vec![
            Instr::Val(Value::Unit),
            Instr::StructSwap(0),
            // Stack: ref, old linear tuple. Consume the tuple:
            Instr::Ungroup,
            Instr::Drop,
            Instr::StructFree,
        ]),
    ];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn struct_free_with_linear_field_rejected() {
    let ty = FunType::mono(vec![lin_res()], vec![]);
    let body = vec![
        Instr::GetLocal(0, Qual::Lin),
        Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
        unpack_then(vec![Instr::StructFree]),
    ];
    let err = check_fn(ty, vec![], body);
    assert!(
        matches!(err, Err(TypeError::LinearityViolation { .. })),
        "{err:?}"
    );
}

#[test]
fn struct_free_of_unrestricted_ref_rejected() {
    // Freeing GC'd memory manually is not allowed.
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::StructMalloc(vec![Size::Const(32)], Qual::Unr),
        unpack_then(vec![Instr::StructFree]),
    ];
    let err = check_fn(ty, vec![], body);
    assert!(matches!(err, Err(TypeError::QualNotLeq { .. })), "{err:?}");
}

#[test]
fn linear_struct_never_freed_rejected() {
    // Dropping the linear reference (or just leaving it) is a linearity
    // violation.
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::StructMalloc(vec![Size::Const(32)], Qual::Lin),
        Instr::Drop,
    ];
    let err = check_fn(ty, vec![], body);
    assert!(
        matches!(err, Err(TypeError::LinearityViolation { .. })),
        "{err:?}"
    );
}

// ---------------------------------------------------------------------
// Variants
// ---------------------------------------------------------------------

#[test]
fn variant_case_unr_returns_ref() {
    let cases = vec![i32t(), Type::unit()];
    let ty = FunType::mono(vec![], vec![i32t()]);
    let body = vec![
        Instr::i32(3),
        Instr::VariantMalloc(0, cases.clone(), Qual::Unr),
        unpack_with(
            vec![i32t()],
            vec![instr::LocalEffect::new(0, i32t())],
            vec![
                Instr::VariantCase(
                    Qual::Unr,
                    HeapType::Variant(cases),
                    Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                    vec![
                        vec![],                           // case 0: payload i32 is the result
                        vec![Instr::Drop, Instr::i32(0)], // case 1: unit payload
                    ],
                ),
                // Stack: ref, i32 — stash the i32, drop the (unr) ref.
                Instr::SetLocal(0),
                Instr::Drop,
                Instr::GetLocal(0, Qual::Unr),
            ],
        ),
    ];
    check_fn(ty, vec![Size::Const(32)], body).unwrap();
}

#[test]
fn variant_case_lin_consumes_and_frees() {
    let cases = vec![i32t(), Type::unit()];
    let ty = FunType::mono(vec![], vec![i32t()]);
    let body = vec![
        Instr::i32(3),
        Instr::VariantMalloc(0, cases.clone(), Qual::Lin),
        unpack_with(
            vec![i32t()],
            vec![],
            vec![Instr::VariantCase(
                Qual::Lin,
                HeapType::Variant(cases),
                Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                vec![vec![], vec![Instr::Drop, Instr::i32(0)]],
            )],
        ),
    ];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn variant_case_unr_with_linear_payload_rejected() {
    let cases = vec![lin_res()];
    let ty = FunType::mono(vec![lin_res()], vec![]);
    let body = vec![
        Instr::GetLocal(0, Qual::Lin),
        Instr::VariantMalloc(0, cases.clone(), Qual::Lin),
        unpack_then(vec![
            Instr::VariantCase(
                Qual::Unr,
                HeapType::Variant(cases),
                Block::new(ArrowType::new(vec![], vec![]), vec![]),
                vec![vec![Instr::Ungroup, Instr::Drop]],
            ),
            Instr::StructFree,
        ]),
    ];
    assert!(check_fn(ty, vec![], body).is_err());
}

// ---------------------------------------------------------------------
// Polymorphism and calls
// ---------------------------------------------------------------------

#[test]
fn call_polymorphic_identity() {
    // id : ∀ (unr ⪯ α ≲ 64). [α^unr] → [α^unr]
    let id_ty = FunType {
        quants: vec![Quantifier::Type {
            lower_qual: Qual::Unr,
            size: Size::Const(64),
            may_contain_caps: false,
        }],
        arrow: ArrowType::new(vec![Pretype::Var(0).unr()], vec![Pretype::Var(0).unr()]),
    };
    let id = Func::Defined {
        exports: vec![],
        ty: id_ty,
        locals: vec![],
        body: vec![Instr::GetLocal(0, Qual::Unr)],
    };
    let main = Func::Defined {
        exports: vec![],
        ty: FunType::mono(vec![], vec![i32t()]),
        locals: vec![],
        body: vec![
            Instr::i32(11),
            Instr::Call(0, vec![Index::Pretype(Pretype::Num(NumType::I32))]),
        ],
    };
    let m = Module {
        funcs: vec![id, main],
        ..Module::default()
    };
    check_module(&m).unwrap();
}

#[test]
fn call_with_oversized_witness_rejected() {
    let id_ty = FunType {
        quants: vec![Quantifier::Type {
            lower_qual: Qual::Unr,
            size: Size::Const(32),
            may_contain_caps: false,
        }],
        arrow: ArrowType::new(vec![Pretype::Var(0).unr()], vec![Pretype::Var(0).unr()]),
    };
    let id = Func::Defined {
        exports: vec![],
        ty: id_ty,
        locals: vec![],
        body: vec![Instr::GetLocal(0, Qual::Unr)],
    };
    let main = Func::Defined {
        exports: vec![],
        ty: FunType::mono(vec![], vec![i64t()]),
        locals: vec![],
        body: vec![
            Instr::Val(Value::i64(1)),
            Instr::Call(0, vec![Index::Pretype(Pretype::Num(NumType::I64))]),
        ],
    };
    let m = Module {
        funcs: vec![id, main],
        ..Module::default()
    };
    assert!(check_module(&m).is_err());
}

#[test]
fn coderef_inst_call_indirect() {
    let f = Func::Defined {
        exports: vec![],
        ty: FunType {
            quants: vec![Quantifier::Type {
                lower_qual: Qual::Unr,
                size: Size::Const(64),
                may_contain_caps: false,
            }],
            arrow: ArrowType::new(vec![Pretype::Var(0).unr()], vec![Pretype::Var(0).unr()]),
        },
        locals: vec![],
        body: vec![Instr::GetLocal(0, Qual::Unr)],
    };
    let main = Func::Defined {
        exports: vec![],
        ty: FunType::mono(vec![], vec![i32t()]),
        locals: vec![],
        body: vec![
            Instr::i32(5),
            Instr::CodeRefI(0),
            Instr::Inst(vec![Index::Pretype(Pretype::Num(NumType::I32))]),
            Instr::CallIndirect,
        ],
    };
    let m = Module {
        funcs: vec![f, main],
        table: Table {
            exports: vec![],
            entries: vec![0],
        },
        ..Module::default()
    };
    check_module(&m).unwrap();
}

#[test]
fn qualify_only_upward() {
    let ty = FunType::mono(vec![i32t()], vec![Pretype::Num(NumType::I32).lin()]);
    let body = vec![Instr::GetLocal(0, Qual::Unr), Instr::Qualify(Qual::Lin)];
    check_fn(ty, vec![], body).unwrap();
    // Downward coercion rejected.
    let ty = FunType::mono(vec![Pretype::Num(NumType::I32).lin()], vec![i32t()]);
    let body = vec![Instr::GetLocal(0, Qual::Lin), Instr::Qualify(Qual::Unr)];
    assert!(check_fn(ty, vec![], body).is_err());
}

// ---------------------------------------------------------------------
// Tuples, arrays, existentials
// ---------------------------------------------------------------------

#[test]
fn group_ungroup_roundtrip() {
    let ty = FunType::mono(vec![i32t(), i64t()], vec![i32t(), i64t()]);
    let body = vec![
        Instr::GetLocal(0, Qual::Unr),
        Instr::GetLocal(1, Qual::Unr),
        Instr::Group(2, Qual::Unr),
        Instr::Ungroup,
    ];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn group_linear_into_unr_tuple_rejected() {
    let ty = FunType::mono(vec![lin_res()], vec![Pretype::Prod(vec![lin_res()]).lin()]);
    let body = vec![Instr::GetLocal(0, Qual::Lin), Instr::Group(1, Qual::Unr)];
    assert!(check_fn(ty, vec![], body).is_err());
    let body = vec![Instr::GetLocal(0, Qual::Lin), Instr::Group(1, Qual::Lin)];
    check_fn(
        FunType::mono(vec![lin_res()], vec![Pretype::Prod(vec![lin_res()]).lin()]),
        vec![],
        body,
    )
    .unwrap();
}

#[test]
fn array_roundtrip() {
    let ty = FunType::mono(vec![], vec![i32t()]);
    let body = vec![
        Instr::i32(0),             // fill value
        Instr::Val(Value::u32(8)), // length
        Instr::ArrayMalloc(Qual::Lin),
        unpack_with(
            vec![],
            vec![instr::LocalEffect::new(0, i32t())],
            vec![
                Instr::Val(Value::u32(3)),
                Instr::i32(99),
                Instr::ArraySet,
                Instr::Val(Value::u32(3)),
                Instr::ArrayGet,
                Instr::SetLocal(0),
                Instr::ArrayFree,
            ],
        ),
        Instr::GetLocal(0, Qual::Unr),
    ];
    check_fn(ty, vec![Size::Const(32)], body).unwrap();
}

#[test]
fn exist_pack_unpack_roundtrip() {
    // Pack an i32 as ∃α≲64. α^unr, then unpack (linear cell, freed) and
    // drop the opened (abstract!) value — allowed because its qualifier is
    // unr.
    let psi = HeapType::Exists(Qual::Unr, Size::Const(64), Box::new(Pretype::Var(0).unr()));
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::ExistPack(Pretype::Num(NumType::I32), psi.clone(), Qual::Lin),
        unpack_then(vec![Instr::ExistUnpack(
            Qual::Lin,
            psi,
            Block::new(ArrowType::new(vec![], vec![]), vec![]),
            vec![Instr::Drop],
        )]),
    ];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn exist_unpack_escape_rejected() {
    // Returning the opened abstract value from the unpack block would let
    // the pretype variable escape its scope.
    let psi = HeapType::Exists(Qual::Unr, Size::Const(64), Box::new(Pretype::Var(0).unr()));
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::ExistPack(Pretype::Num(NumType::I32), psi.clone(), Qual::Lin),
        unpack_then(vec![
            Instr::ExistUnpack(
                Qual::Lin,
                psi,
                // Claims to return α^unr — but α is not in scope outside.
                Block::new(ArrowType::new(vec![], vec![Pretype::Var(0).unr()]), vec![]),
                vec![],
            ),
            Instr::Drop,
        ]),
    ];
    assert!(check_fn(ty, vec![], body).is_err());
}

#[test]
fn mem_pack_then_unpack() {
    // malloc → package; unpack; repack with mem.pack; unpack again; free.
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::StructMalloc(vec![Size::Const(32)], Qual::Lin),
        unpack_then(vec![
            Instr::MemPack(Loc::Var(0)),
            Instr::MemUnpack(
                Block::new(ArrowType::new(vec![], vec![]), vec![]),
                vec![Instr::StructFree],
            ),
        ]),
    ];
    check_fn(ty, vec![], body).unwrap();
}

#[test]
fn trace_records_instruction_types() {
    let env = ModuleEnv::default();
    let ty = FunType::mono(vec![i32t()], vec![i32t()]);
    let body = vec![
        Instr::GetLocal(0, Qual::Unr),
        Instr::i32(1),
        add(NumType::I32),
    ];
    let trace = check_function_body(&env, &ty, &[], &body).unwrap();
    assert_eq!(trace.len(), 3);
    assert_eq!(trace[0].produced, vec![i32t()]);
    assert_eq!(trace[2].consumed, vec![i32t(), i32t()]);
    assert_eq!(trace[2].produced, vec![i32t()]);
}

// ---------------------------------------------------------------------
// §5/§8 relaxation: capabilities in the heap
// ---------------------------------------------------------------------

/// Builds a `cap rw` + `ptr` pair for a fresh linear cell, stores the
/// *bare capability* in another linear struct (allowed: the GC does not
/// own linear memory), then recombines and frees everything.
#[test]
fn caps_allowed_in_linear_heap() {
    let cell_psi = || HeapType::Struct(vec![(i32t(), Size::Const(32))]);
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        // Allocate the inner cell and split it into cap + ptr.
        Instr::i32(7),
        Instr::StructMalloc(vec![Size::Const(32)], Qual::Lin),
        unpack_then(vec![
            Instr::RefSplit,
            // Stack: [cap, ptr]. Park the pointer in a local (unrestricted).
            Instr::SetLocal(0),
            // Store the bare capability in a *linear* struct: accepted
            // under the relaxed rule.
            Instr::StructMalloc(vec![Size::Const(0)], Qual::Lin),
            Instr::MemUnpack(
                Block::new(ArrowType::new(vec![], vec![]), vec![]),
                vec![
                    // Take the capability back out and free the holder.
                    Instr::Val(Value::Unit),
                    Instr::StructSwap(0),
                    Instr::SetLocal(1),
                    Instr::StructFree,
                    // Recombine with the pointer and free the inner cell.
                    Instr::GetLocal(1, Qual::Lin),
                    Instr::GetLocal(0, Qual::Unr),
                    Instr::RefJoin,
                    Instr::StructFree,
                ],
            ),
            // Clear the pointer so no ρ-mentioning type escapes the
            // outer unpack scope.
            Instr::Val(Value::Unit),
            Instr::SetLocal(0),
        ]),
    ];
    // Local 0: the ptr (32 bits); local 1: the capability (0 bits, but
    // slots may be larger).
    let env = ModuleEnv::default();
    let _ = cell_psi;
    check_function_body(&env, &ty, &[Size::Const(32), Size::Const(64)], &body).unwrap();
}

#[test]
fn caps_still_rejected_in_gc_heap() {
    // The same capability stored in an *unrestricted* (GC-owned) struct is
    // rejected: erasure would leave the collector blind to the owned
    // memory (§3).
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(7),
        Instr::StructMalloc(vec![Size::Const(32)], Qual::Lin),
        unpack_then(vec![
            Instr::RefSplit,
            Instr::SetLocal(0),
            // An unrestricted struct holding a bare capability: rejected.
            Instr::StructMalloc(vec![Size::Const(0)], Qual::Unr),
            Instr::Drop,
            Instr::GetLocal(0, Qual::Unr),
            Instr::Drop,
            Instr::Unreachable,
        ]),
    ];
    let env = ModuleEnv::default();
    let err = check_function_body(&env, &ty, &[Size::Const(32)], &body);
    assert!(
        matches!(err, Err(TypeError::CapsInHeap { .. })),
        "caps must stay out of GC-owned memory: {err:?}"
    );
}

#[test]
fn cap_split_and_join_roundtrip() {
    // cap rw ⇄ (cap r, own): the temporary read-only borrow of §2.1.
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(1),
        Instr::StructMalloc(vec![Size::Const(32)], Qual::Lin),
        unpack_then(vec![
            Instr::RefSplit,
            Instr::SetLocal(0), // ptr
            Instr::CapSplit,
            // Stack: [cap r, own] — recombine.
            Instr::CapJoin,
            Instr::GetLocal(0, Qual::Unr),
            Instr::RefJoin,
            Instr::StructFree,
            Instr::Val(Value::Unit),
            Instr::SetLocal(0),
        ]),
    ];
    let env = ModuleEnv::default();
    check_function_body(&env, &ty, &[Size::Const(32)], &body).unwrap();
}

#[test]
fn struct_get_requires_read_privilege_content() {
    // ref.demote produces a read-only reference; struct.set through it is
    // rejected (needs rw).
    let ty = FunType::mono(vec![], vec![]);
    let body = vec![
        Instr::i32(1),
        Instr::StructMalloc(vec![Size::Const(32)], Qual::Lin),
        unpack_then(vec![
            Instr::RefDemote,
            Instr::i32(2),
            Instr::StructSet(0),
            Instr::StructFree,
        ]),
    ];
    let env = ModuleEnv::default();
    let err = check_function_body(&env, &ty, &[], &body);
    assert!(
        err.is_err(),
        "writing through a read-only reference must fail"
    );
}
