//! # richwasm-queue
//!
//! A **bounded, lock-free ring queue** — the job-submission primitive of
//! the serving layer (`richwasm_repro::server::EngineServer`). Written
//! from scratch on `std` atomics only: no external dependencies, no
//! locks, no spinning-while-full.
//!
//! The layout is the classic bounded sequence-number ring (Vyukov): a
//! header of two cache-line-separated atomic cursors (`tail` for
//! producers, `head` for consumers) over a power-of-two data ring whose
//! slots each carry their own sequence number. A slot's sequence tells
//! both sides, without any shared lock, whether the slot is free to
//! write (`seq == ticket`) or ready to read (`seq == ticket + 1`):
//!
//! ```text
//!   header            data ring (capacity 2^k)
//! ┌──────┐  ┌───────┬───────┬───────┬───────┐
//! │ tail │→ │ seq,T │ seq,T │ seq,T │ seq,T │ … wraps
//! │ head │→ └───────┴───────┴───────┴───────┘
//! └──────┘
//! ```
//!
//! Operations are **non-blocking by construction**: [`RingQueue::push`]
//! on a full ring returns the value back immediately (`Err`) instead of
//! waiting — the backpressure signal admission control builds on — and
//! [`RingQueue::pop`] on an empty ring returns `None`. Any number of
//! producers and consumers may operate concurrently; per-producer FIFO
//! order is preserved (two pushes by one thread are popped in push
//! order).

#![warn(missing_docs)]
// The ring is the only unsafe code in the workspace; every `unsafe`
// operation must sit in an explicit `unsafe` block with its own
// `// SAFETY:` justification, even inside an `unsafe fn`.
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads the producer and consumer cursors onto their own cache lines so
/// a producer CAS does not invalidate the line every consumer is
/// spinning on (false sharing).
#[repr(align(128))]
struct CachePadded<T>(T);

/// One ring slot: the slot's sequence number plus (possibly
/// uninitialised) storage for a value.
///
/// The sequence protocol, for the slot at ring index `i` claimed by
/// ticket `t` (where `t % capacity == i`):
///
/// * `seq == t` — empty, writable by the producer holding ticket `t`;
/// * `seq == t + 1` — full, readable by the consumer holding ticket `t`;
/// * anything else — the slot belongs to a lap another thread is still
///   completing; the observer re-reads the cursor and retries.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded, lock-free, multi-producer multi-consumer ring queue.
///
/// Capacity is fixed at construction (rounded up to a power of two so
/// index masking replaces division). `push` never blocks and never
/// spins on a full queue; `pop` never blocks on an empty one.
pub struct RingQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Producer cursor: the next ticket to write.
    tail: CachePadded<AtomicUsize>,
    /// Consumer cursor: the next ticket to read.
    head: CachePadded<AtomicUsize>,
}

// SAFETY: values move through the queue by ownership — a slot is
// written by exactly one producer (the CAS winner for that ticket) and
// read by exactly one consumer, with the slot's Release/Acquire
// sequence pair ordering the value transfer. `T: Send` is required
// because values cross threads when the queue itself is sent.
unsafe impl<T: Send> Send for RingQueue<T> {}
// SAFETY: shared access (`&RingQueue`) exposes only `push`/`pop`/`len`,
// whose slot claims are serialised by the ticket CAS above — no `&T`
// into a slot ever escapes, so `T: Send` is all `Sync` requires.
unsafe impl<T: Send> Sync for RingQueue<T> {}

impl<T> RingQueue<T> {
    /// Creates a queue holding at least `capacity` elements (rounded up
    /// to the next power of two; a requested capacity of 0 rounds to 1).
    /// [`RingQueue::capacity`] reports the actual size.
    pub fn with_capacity(capacity: usize) -> RingQueue<T> {
        let cap = capacity.max(1).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingQueue {
            slots,
            mask: cap - 1,
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Number of elements the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enqueues `value`, or hands it back when the ring is full.
    ///
    /// Lock-free: a stalled producer can delay only its own slot, never
    /// the queue as a whole, and a full queue is reported immediately —
    /// this is the non-blocking edge admission control turns into a
    /// `Backpressure` rejection.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            // Distance from the state this ticket needs (`seq == tail`).
            // Wrapping arithmetic keeps the comparison valid across
            // cursor wraparound.
            let dist = seq.wrapping_sub(tail) as isize;
            if dist == 0 {
                // Slot is empty and current — claim the ticket.
                match self.tail.0.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives this thread sole
                        // write access to the slot until the sequence
                        // store below publishes it.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => tail = current,
                }
            } else if dist < 0 {
                // The slot still holds the previous lap's value: the
                // ring is full (head is a full lap behind).
                return Err(value);
            } else {
                // Another producer claimed this ticket; catch up.
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest element, or `None` when the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            // A readable slot has `seq == head + 1` (the producer's
            // publishing store).
            let dist = seq.wrapping_sub(head.wrapping_add(1)) as isize;
            if dist == 0 {
                match self.head.0.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives this thread sole
                        // read access; the value was fully written before
                        // the producer's Release store we Acquired above.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        // Mark the slot writable for the *next lap*'s
                        // producer (ticket head + capacity).
                        slot.seq
                            .store(head.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => head = current,
                }
            } else if dist < 0 {
                // The producer for this ticket has not published yet:
                // the ring is empty (from this consumer's view).
                return None;
            } else {
                head = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Number of enqueued elements. Exact when the queue is quiescent;
    /// under concurrent pushes/pops it is a point-in-time estimate
    /// (clamped to `0..=capacity`).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head).min(self.capacity())
    }

    /// True when no element is enqueued (same caveat as
    /// [`RingQueue::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for RingQueue<T> {
    fn drop(&mut self) {
        // Undelivered values still own their contents.
        while self.pop().is_some() {}
    }
}

impl<T> fmt::Debug for RingQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RingQueue {{ len: {}, capacity: {} }}",
            self.len(),
            self.capacity()
        )
    }
}

// The queue's whole reason to exist is crossing threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RingQueue<u64>>();
    assert_send_sync::<RingQueue<Vec<String>>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_producer() {
        let q = RingQueue::with_capacity(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_and_empty_boundaries() {
        let q = RingQueue::with_capacity(4);
        assert_eq!(q.capacity(), 4);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None, "empty pop is None, not a block");

        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.push(99), Err(99), "full push returns the value back");

        assert_eq!(q.pop(), Some(0));
        q.push(4).unwrap();
        assert_eq!(q.push(99), Err(99), "full again after one pop + push");
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(RingQueue::<u8>::with_capacity(0).capacity(), 1);
        assert_eq!(RingQueue::<u8>::with_capacity(1).capacity(), 1);
        assert_eq!(RingQueue::<u8>::with_capacity(3).capacity(), 4);
        assert_eq!(RingQueue::<u8>::with_capacity(100).capacity(), 128);
    }

    #[test]
    fn wraparound_many_laps() {
        // A small ring driven far past its capacity exercises the
        // sequence-number lap protocol on every slot.
        let q = RingQueue::with_capacity(2);
        for lap in 0u64..1000 {
            q.push(2 * lap).unwrap();
            q.push(2 * lap + 1).unwrap();
            assert_eq!(q.push(u64::MAX), Err(u64::MAX));
            assert_eq!(q.pop(), Some(2 * lap));
            assert_eq!(q.pop(), Some(2 * lap + 1));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn interleaved_push_pop_preserves_order_across_wraps() {
        let q = RingQueue::with_capacity(4);
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        // Irregular interleaving: fill by 3, drain by 2, repeatedly.
        for _ in 0..100 {
            for _ in 0..3 {
                if q.push(next_in).is_ok() {
                    next_in += 1;
                }
            }
            for _ in 0..2 {
                if let Some(v) = q.pop() {
                    assert_eq!(v, next_out);
                    next_out += 1;
                }
            }
        }
        while let Some(v) = q.pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_in, next_out, "every pushed value was popped once");
    }

    #[test]
    fn drop_releases_undelivered_values() {
        // Arc counts observe the drop of the three undelivered clones.
        let token = Arc::new(());
        {
            let q = RingQueue::with_capacity(4);
            for _ in 0..3 {
                q.push(Arc::clone(&token)).unwrap();
            }
            assert_eq!(Arc::strong_count(&token), 4);
        }
        assert_eq!(Arc::strong_count(&token), 1, "queue drop freed its slots");
    }
}
