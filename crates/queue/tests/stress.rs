//! Multi-threaded stress coverage for the bounded ring queue.
//!
//! Loom-style exhaustive interleaving exploration is not available
//! offline, so these tests substitute volume: many producers hammering
//! one ring (with and without concurrent consumers), asserting the three
//! delivery invariants the serving layer relies on — **no loss** (every
//! accepted push is popped), **no duplication** (each exactly once), and
//! **per-producer FIFO** (two pushes by one thread arrive in push order).

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use richwasm_queue::RingQueue;

const PRODUCERS: usize = 8;
const PER_PRODUCER: u64 = 10_000;

/// Each message encodes (producer id, per-producer sequence number).
fn msg(producer: usize, seq: u64) -> u64 {
    (producer as u64) << 32 | seq
}

/// 8 producers × 10k messages through one ring with a single concurrent
/// consumer: no loss, no duplication, no reorder within any producer.
#[test]
fn eight_producers_single_consumer_delivers_exactly_once_in_order() {
    let q = RingQueue::with_capacity(64);
    let done = AtomicBool::new(false);
    let mut received: Vec<u64> = Vec::with_capacity(PRODUCERS * PER_PRODUCER as usize);

    thread::scope(|scope| {
        let (q, done) = (&q, &done);
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                scope.spawn(move || {
                    for seq in 0..PER_PRODUCER {
                        let mut v = msg(p, seq);
                        // Full ring = backpressure; a real submitter
                        // would shed, the stress test retries so the
                        // count stays exact.
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumer = scope.spawn(|| {
            let mut out = Vec::with_capacity(PRODUCERS * PER_PRODUCER as usize);
            loop {
                match q.pop() {
                    Some(v) => out.push(v),
                    None if done.load(Ordering::Acquire) => match q.pop() {
                        // One final drain after the producers signalled
                        // completion closes the publish race.
                        Some(v) => out.push(v),
                        None => break,
                    },
                    None => thread::yield_now(),
                }
            }
            out
        });
        for h in producers {
            h.join().expect("producer panicked");
        }
        done.store(true, Ordering::Release);
        received = consumer.join().expect("consumer panicked");
        let expected = (PRODUCERS as u64 * PER_PRODUCER) as usize;
        assert_eq!(received.len(), expected, "no loss, no duplication");
    });

    // Exactly-once: every (producer, seq) pair appears exactly once.
    let mut sorted = received.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        received.len(),
        "a message was delivered twice"
    );

    // Per-producer FIFO: for each producer, sequence numbers appear in
    // strictly increasing order in the consumer's arrival sequence.
    let mut next_seq = [0u64; PRODUCERS];
    for v in &received {
        let p = (v >> 32) as usize;
        let seq = v & 0xffff_ffff;
        assert_eq!(
            seq, next_seq[p],
            "producer {p} reordered: expected seq {} next",
            next_seq[p]
        );
        next_seq[p] += 1;
    }
    for (p, n) in next_seq.iter().enumerate() {
        assert_eq!(*n, PER_PRODUCER, "producer {p} lost messages");
    }
}

/// Producers against a deliberately tiny ring: the accepted/shed split
/// must exactly account for every attempt, and every accepted message is
/// delivered exactly once (no retry loop this time — shed means shed).
#[test]
fn shedding_accounts_for_every_attempt() {
    let q = RingQueue::with_capacity(8);
    let done = AtomicBool::new(false);

    thread::scope(|scope| {
        let (q, done) = (&q, &done);
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                scope.spawn(move || {
                    let mut accepted = Vec::new();
                    for seq in 0..PER_PRODUCER {
                        if q.push(msg(p, seq)).is_ok() {
                            accepted.push(msg(p, seq));
                        }
                    }
                    accepted
                })
            })
            .collect();
        let consumer = scope.spawn(|| {
            let mut out = Vec::new();
            loop {
                match q.pop() {
                    Some(v) => out.push(v),
                    None if done.load(Ordering::Acquire) => match q.pop() {
                        Some(v) => out.push(v),
                        None => break,
                    },
                    None => thread::yield_now(),
                }
            }
            out
        });

        let accepted: Vec<u64> = producers
            .into_iter()
            .flat_map(|h| h.join().expect("producer panicked"))
            .collect();
        done.store(true, Ordering::Release);
        let mut received = consumer.join().expect("consumer panicked");

        let mut expected = accepted;
        expected.sort_unstable();
        received.sort_unstable();
        assert_eq!(
            received, expected,
            "delivered set != accepted set (loss or duplication)"
        );
    });
}

/// Multi-consumer drain: the union of what N consumers pop is exactly
/// the set pushed, each message once (MPMC mode, as used when several
/// workers share one tenant queue).
#[test]
fn four_consumers_share_the_drain_exactly_once() {
    const CONSUMERS: usize = 4;
    let q = RingQueue::with_capacity(32);
    let done = AtomicBool::new(false);

    thread::scope(|scope| {
        let (q, done) = (&q, &done);
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                scope.spawn(move || {
                    for seq in 0..PER_PRODUCER / 4 {
                        let mut v = msg(p, seq);
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        match q.pop() {
                            Some(v) => out.push(v),
                            None if done.load(Ordering::Acquire) => match q.pop() {
                                Some(v) => out.push(v),
                                None => break,
                            },
                            None => thread::yield_now(),
                        }
                    }
                    out
                })
            })
            .collect();

        // Producers retry until accepted, so once they have all joined
        // the full message count is in flight or already delivered.
        for h in producers {
            h.join().expect("producer panicked");
        }
        done.store(true, Ordering::Release);
        let expected = PRODUCERS * (PER_PRODUCER / 4) as usize;
        let mut received: Vec<u64> = Vec::with_capacity(expected);
        for c in consumers {
            received.extend(c.join().expect("consumer panicked"));
        }
        received.sort_unstable();
        let dedup_len = {
            let mut d = received.clone();
            d.dedup();
            d.len()
        };
        assert_eq!(received.len(), expected, "loss across shared consumers");
        assert_eq!(dedup_len, expected, "duplication across shared consumers");
    });
}
