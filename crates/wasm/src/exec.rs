//! The WebAssembly interpreter: a tree-walking evaluator over validated
//! modules, with a multi-module store and typed import resolution.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::ast::*;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// 32-bit integer (bit pattern).
    I32(u32),
    /// 64-bit integer (bit pattern).
    I64(u64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Val {
    /// The value's type.
    pub fn ty(&self) -> ValType {
        match self {
            Val::I32(_) => ValType::I32,
            Val::I64(_) => ValType::I64,
            Val::F32(_) => ValType::F32,
            Val::F64(_) => ValType::F64,
        }
    }

    /// Zero of a type.
    pub fn zero(t: ValType) -> Val {
        match t {
            ValType::I32 => Val::I32(0),
            ValType::I64 => Val::I64(0),
            ValType::F32 => Val::F32(0.0),
            ValType::F64 => Val::F64(0.0),
        }
    }

    /// Extracts an `i32` payload.
    pub fn as_i32(&self) -> Option<u32> {
        match self {
            Val::I32(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::I32(v) => write!(f, "i32:{}", *v as i32),
            Val::I64(v) => write!(f, "i64:{}", *v as i64),
            Val::F32(v) => write!(f, "f32:{v}"),
            Val::F64(v) => write!(f, "f64:{v}"),
        }
    }
}

/// A Wasm trap (or host-level execution failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WasmTrap(pub String);

/// Canonical trap message for an exhausted instruction budget. Kept as
/// a well-known string (rather than an enum variant) so the ~two dozen
/// existing `WasmTrap(String)` construction sites stay untouched while
/// embedders can still classify the trap.
const FUEL_EXHAUSTED_MSG: &str = "instruction budget exhausted";

impl WasmTrap {
    /// The trap raised when the per-invocation instruction budget
    /// ([`WasmLinker::max_steps`]) runs out.
    pub fn fuel_exhausted() -> WasmTrap {
        WasmTrap(FUEL_EXHAUSTED_MSG.to_string())
    }

    /// True when this trap is a fuel (instruction budget) exhaustion —
    /// an embedder resource-policy event, not a guest semantic failure.
    pub fn is_fuel_exhausted(&self) -> bool {
        self.0 == FUEL_EXHAUSTED_MSG
    }
}

impl fmt::Display for WasmTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wasm trap: {}", self.0)
    }
}

impl std::error::Error for WasmTrap {}

fn trap<T>(msg: impl Into<String>) -> Result<T, WasmTrap> {
    Err(WasmTrap(msg.into()))
}

/// One 64 KiB Wasm page.
pub const PAGE: usize = 65536;

/// Address of a function in the store.
type FuncAddr = usize;

/// A host function: a Rust closure exposed to Wasm modules as an
/// importable export (see [`WasmLinker::register_host_module`]).
///
/// `Fn` (not `FnMut`) so one closure can back several stores at once;
/// stateful hosts use interior mutability. Errors become guest-visible
/// traps.
pub type HostFn = Arc<dyn Fn(&[Val]) -> Result<Vec<Val>, WasmTrap> + Send + Sync>;

/// What a function address resolves to: a Wasm body, a host closure, or a
/// flat-bytecode compilation of a Wasm body (see [`crate::compile`]).
/// The body is `Arc`-shared so entering a call clones a pointer, not the
/// instruction tree.
#[derive(Clone)]
pub(crate) enum FuncImpl {
    Wasm(Arc<FuncDef>),
    Host(HostFn),
    Compiled(Arc<crate::compile::CompiledFunc>),
}

impl fmt::Debug for FuncImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuncImpl::Wasm(def) => write!(f, "Wasm({def:?})"),
            FuncImpl::Host(_) => write!(f, "Host(..)"),
            FuncImpl::Compiled(cf) => write!(f, "Compiled({} ops)", cf.code.len()),
        }
    }
}

#[derive(Debug)]
pub(crate) struct FuncInst {
    pub(crate) ty: FuncType,
    pub(crate) module: usize,
    pub(crate) def: FuncImpl,
}

/// A module instance's view of the store.
#[derive(Debug, Default, Clone)]
pub(crate) struct ModuleInst {
    pub(crate) func_addrs: Vec<FuncAddr>,
    pub(crate) global_addrs: Vec<usize>,
    pub(crate) mem_addr: Option<usize>,
    pub(crate) table_addr: Option<usize>,
    exports: HashMap<String, ExportKind>,
}

/// A snapshot of the store's mutable state (globals, memories, tables),
/// captured by [`WasmLinker::seal`] and restored by [`WasmLinker::reset`].
#[derive(Debug, Clone)]
struct Baseline {
    globals: Vec<Val>,
    memories: Vec<Vec<u8>>,
    tables: Vec<Vec<Option<FuncAddr>>>,
}

/// The multi-module store plus a name registry: the host embedding that
/// RichWasm's lowered modules run in.
#[derive(Debug, Default)]
pub struct WasmLinker {
    pub(crate) funcs: Vec<FuncInst>,
    pub(crate) globals: Vec<Val>,
    pub(crate) memories: Vec<Vec<u8>>,
    pub(crate) tables: Vec<Vec<Option<FuncAddr>>>,
    pub(crate) instances: Vec<ModuleInst>,
    pub(crate) module_types: Vec<Vec<FuncType>>,
    names: HashMap<String, usize>,
    baseline: Option<Baseline>,
    pub(crate) steps: u64,
    /// Fuel: maximum function-call depth.
    pub max_call_depth: usize,
    /// Fuel: maximum executed instructions per invocation.
    pub max_steps: u64,
}

/// Control flow signal inside the evaluator.
enum Flow {
    Normal,
    Br(u32),
    Return,
}

struct Activation {
    module: usize,
    locals: Vec<Val>,
    stack: Vec<Val>,
    depth: usize,
}

// Concurrency contract (enforced at compile time, relied on by the
// embedder's `InstancePool`): a `WasmLinker` owns its entire store
// (functions, globals, memories, tables) and can be moved across threads;
// `&mut self` on every mutating entry point plus `Send + Sync` host
// closures ([`HostFn`]) make it `Sync` too. The transient exec state
// (`Activation`) lives on the invoking thread's stack and never escapes.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WasmLinker>();
    assert_send_sync::<Val>();
    assert_send_sync::<WasmTrap>();
};

impl WasmLinker {
    /// Creates an empty linker.
    pub fn new() -> WasmLinker {
        WasmLinker {
            max_call_depth: 2048,
            max_steps: 500_000_000,
            ..WasmLinker::default()
        }
    }

    /// Validates and instantiates `module` under `name`, resolving imports
    /// against previously instantiated modules.
    ///
    /// # Errors
    ///
    /// Validation failures and unresolved/ill-typed imports are reported
    /// as [`WasmTrap`]s (host-level errors).
    pub fn instantiate(&mut self, name: &str, module: Module) -> Result<usize, WasmTrap> {
        crate::validate::validate_module(&module).map_err(|e| WasmTrap(e.to_string()))?;
        // A baseline captured before this module existed would restore a
        // store with dangling addresses — invalidate it; callers seal
        // again once the full program is instantiated.
        self.baseline = None;
        let mut inst = ModuleInst::default();

        for im in &module.imports {
            let provider = *self
                .names
                .get(&im.module)
                .ok_or_else(|| WasmTrap(format!("unknown import module {}", im.module)))?;
            let pexports = self.instances[provider].exports.clone();
            let kind = pexports
                .get(&im.name)
                .ok_or_else(|| WasmTrap(format!("unknown import {}.{}", im.module, im.name)))?;
            match (&im.kind, kind) {
                (ImportKind::Func(ti), ExportKind::Func(fi)) => {
                    let want = module
                        .types
                        .get(*ti as usize)
                        .ok_or_else(|| WasmTrap("bad import type".into()))?;
                    let addr = self.instances[provider].func_addrs[*fi as usize];
                    if &self.funcs[addr].ty != want {
                        return Err(WasmTrap(format!(
                            "import {}.{}: function type mismatch",
                            im.module, im.name
                        )));
                    }
                    inst.func_addrs.push(addr);
                }
                (ImportKind::Global(t, _), ExportKind::Global(gi)) => {
                    let addr = self.instances[provider].global_addrs[*gi as usize];
                    if self.globals[addr].ty() != *t {
                        return Err(WasmTrap(format!(
                            "import {}.{}: global type mismatch",
                            im.module, im.name
                        )));
                    }
                    inst.global_addrs.push(addr);
                }
                (ImportKind::Memory(_), ExportKind::Memory(_)) => {
                    inst.mem_addr = self.instances[provider].mem_addr;
                }
                (ImportKind::Table(_), ExportKind::Table(_)) => {
                    inst.table_addr = self.instances[provider].table_addr;
                }
                _ => {
                    return Err(WasmTrap(format!(
                        "import {}.{}: kind mismatch",
                        im.module, im.name
                    )));
                }
            }
        }

        let module_idx = self.instances.len();
        // Defined functions.
        for f in &module.funcs {
            let ty = module.types[f.type_idx as usize].clone();
            let addr = self.funcs.len();
            self.funcs.push(FuncInst {
                ty,
                module: module_idx,
                def: FuncImpl::Wasm(Arc::new(f.clone())),
            });
            inst.func_addrs.push(addr);
        }
        // Globals.
        for g in &module.globals {
            let v = match g.init {
                WInstr::I32Const(c) => Val::I32(c as u32),
                WInstr::I64Const(c) => Val::I64(c as u64),
                WInstr::F32Const(c) => Val::F32(c),
                WInstr::F64Const(c) => Val::F64(c),
                _ => return Err(WasmTrap("non-constant global initialiser".into())),
            };
            inst.global_addrs.push(self.globals.len());
            self.globals.push(v);
        }
        // Memory.
        if let Some(pages) = module.memory {
            inst.mem_addr = Some(self.memories.len());
            self.memories.push(vec![0u8; pages as usize * PAGE]);
        }
        // Table creation, then element segments (which may target an
        // imported table).
        if let Some(min) = module.table {
            inst.table_addr = Some(self.tables.len());
            self.tables.push(vec![None; min as usize]);
        }
        if !module.elems.is_empty() {
            let ta = inst
                .table_addr
                .ok_or_else(|| WasmTrap("element segment without a table".into()))?;
            for el in &module.elems {
                for (i, &fi) in el.funcs.iter().enumerate() {
                    let slot = el.offset as usize + i;
                    let table = &mut self.tables[ta];
                    if slot >= table.len() {
                        table.resize(slot + 1, None);
                    }
                    table[slot] = Some(inst.func_addrs[fi as usize]);
                }
            }
        }
        // Data segments.
        if let Some(ma) = inst.mem_addr {
            for d in &module.data {
                let mem = &mut self.memories[ma];
                let end = d.offset as usize + d.bytes.len();
                if end > mem.len() {
                    return Err(WasmTrap("data segment out of bounds".into()));
                }
                mem[d.offset as usize..end].copy_from_slice(&d.bytes);
            }
        }
        // Exports.
        for ex in &module.exports {
            inst.exports.insert(ex.name.clone(), ex.kind.clone());
        }

        self.instances.push(inst);
        let start = module.start;
        self.module_types.push(module.types);
        self.names.insert(name.to_string(), module_idx);

        // Start function.
        if let Some(s) = start {
            let addr = self.instances[module_idx].func_addrs[s as usize];
            self.invoke_addr(addr, &[])?;
        }
        Ok(module_idx)
    }

    /// Registers a *host module*: Rust closures exposed as the function
    /// exports of a module instance named `name`, so later-instantiated
    /// Wasm modules can import them (`(import "name" "fn" (func …))`)
    /// through the exact same typed resolution as module-to-module
    /// imports. Returns the instance index.
    ///
    /// Each closure receives arguments matching its declared
    /// [`FuncType`]; its results are checked against that type after
    /// every call (a mismatch traps — the host is outside the validated
    /// world, so the store re-establishes the invariant dynamically).
    pub fn register_host_module(
        &mut self,
        name: &str,
        funcs: Vec<(String, FuncType, HostFn)>,
    ) -> usize {
        // Same rule as `instantiate`: the store changed shape, so any
        // earlier baseline is stale.
        self.baseline = None;
        let module_idx = self.instances.len();
        let mut inst = ModuleInst::default();
        for (i, (export, ty, f)) in funcs.into_iter().enumerate() {
            let addr = self.funcs.len();
            self.funcs.push(FuncInst {
                ty,
                module: module_idx,
                def: FuncImpl::Host(f),
            });
            inst.func_addrs.push(addr);
            inst.exports.insert(export, ExportKind::Func(i as u32));
        }
        self.instances.push(inst);
        self.module_types.push(Vec::new());
        self.names.insert(name.to_string(), module_idx);
        module_idx
    }

    /// Attaches flat-bytecode compilations (see [`crate::compile`]) to the
    /// defined functions of `instance`: each function with a compiled form
    /// is re-pointed from its tree-walked [`FuncDef`] to the bytecode VM
    /// (see [`crate::vm`]), which every later call — by name, by address,
    /// or from other functions — then executes. Functions the compiler
    /// declined (`None` entries) keep their tree-walking implementation,
    /// so the two tiers interoperate call-by-call. Returns how many
    /// functions were re-pointed.
    ///
    /// # Errors
    ///
    /// A [`WasmTrap`] when `instance` is unknown or `compiled` has a
    /// different function count than the instance's defined functions.
    pub fn attach_compiled(
        &mut self,
        instance: usize,
        compiled: &crate::compile::CompiledModule,
    ) -> Result<usize, WasmTrap> {
        let inst = self
            .instances
            .get(instance)
            .ok_or_else(|| WasmTrap(format!("no instance {instance}")))?;
        // Defined functions occupy the tail of the func-address list
        // (imports precede them, mirroring the Wasm index space).
        let defined: Vec<FuncAddr> = inst
            .func_addrs
            .iter()
            .copied()
            .filter(|&a| {
                self.funcs[a].module == instance && !matches!(self.funcs[a].def, FuncImpl::Host(_))
            })
            .collect();
        if defined.len() != compiled.funcs.len() {
            return trap(format!(
                "compiled module has {} functions, instance defines {}",
                compiled.funcs.len(),
                defined.len()
            ));
        }
        let mut attached = 0;
        for (addr, cf) in defined.into_iter().zip(&compiled.funcs) {
            if let Some(cf) = cf {
                self.funcs[addr].def = FuncImpl::Compiled(cf.clone());
                attached += 1;
            }
        }
        Ok(attached)
    }

    /// Looks up an instantiated module by name.
    pub fn instance_by_name(&self, name: &str) -> Option<usize> {
        self.names.get(name).copied()
    }

    /// Resolves the function export `name` of `instance` to its store
    /// address, usable with [`WasmLinker::invoke_addr`] — the resolve-once
    /// half of a typed call handle.
    pub fn export_func_addr(&self, instance: usize, name: &str) -> Option<FuncAddr> {
        let inst = self.instances.get(instance)?;
        match inst.exports.get(name) {
            Some(ExportKind::Func(fi)) => inst.func_addrs.get(*fi as usize).copied(),
            _ => None,
        }
    }

    /// The type of the function at store address `addr`.
    pub fn func_type(&self, addr: FuncAddr) -> Option<&FuncType> {
        self.funcs.get(addr).map(|f| &f.ty)
    }

    /// Captures the current mutable state (globals, memories, tables) as
    /// the linker's *baseline*, enabling [`WasmLinker::reset`].
    ///
    /// Call this once, after all modules are instantiated (and their start
    /// functions have run): the baseline then represents the freshly
    /// instantiated program, and resetting to it is equivalent to — but
    /// much cheaper than — re-validating and re-instantiating every
    /// module.
    pub fn seal(&mut self) {
        self.baseline = Some(Baseline {
            globals: self.globals.clone(),
            memories: self.memories.clone(),
            tables: self.tables.clone(),
        });
    }

    /// True once [`WasmLinker::seal`] has captured a baseline.
    pub fn is_sealed(&self) -> bool {
        self.baseline.is_some()
    }

    /// Restores all mutable state to the baseline captured by
    /// [`WasmLinker::seal`]: the store is indistinguishable from a fresh
    /// instantiation of the same modules, without re-running validation,
    /// import resolution, or data-segment initialisation.
    ///
    /// # Errors
    ///
    /// A [`WasmTrap`] when no baseline was captured.
    pub fn reset(&mut self) -> Result<(), WasmTrap> {
        let base = self
            .baseline
            .as_ref()
            .ok_or_else(|| WasmTrap("reset without a sealed baseline".into()))?;
        self.globals.clone_from(&base.globals);
        self.memories.clone_from(&base.memories);
        self.tables.clone_from(&base.tables);
        self.steps = 0;
        Ok(())
    }

    /// Invokes exported function `name` of `instance` with `args`.
    ///
    /// # Errors
    ///
    /// Returns a [`WasmTrap`] for traps, missing exports, and argument
    /// type mismatches.
    pub fn invoke(
        &mut self,
        instance: usize,
        name: &str,
        args: &[Val],
    ) -> Result<Vec<Val>, WasmTrap> {
        let inst = self
            .instances
            .get(instance)
            .ok_or_else(|| WasmTrap(format!("no instance {instance}")))?;
        let Some(ExportKind::Func(fi)) = inst.exports.get(name) else {
            return trap(format!("no function export {name}"));
        };
        let addr = inst.func_addrs[*fi as usize];
        self.invoke_addr(addr, args)
    }

    /// Invokes the function at store address `addr` directly (no name
    /// lookup), with the same argument checking as [`WasmLinker::invoke`].
    ///
    /// # Errors
    ///
    /// As [`WasmLinker::invoke`], plus a trap for an unknown address.
    pub fn invoke_addr(&mut self, addr: FuncAddr, args: &[Val]) -> Result<Vec<Val>, WasmTrap> {
        let Some(f) = self.funcs.get(addr) else {
            return trap(format!("no function at address {addr}"));
        };
        if f.ty.params.len() != args.len() {
            return trap("argument count mismatch");
        }
        for (a, p) in args.iter().zip(&f.ty.params) {
            if a.ty() != *p {
                return trap("argument type mismatch");
            }
        }
        self.steps = 0;
        self.call_function(addr, args.to_vec(), 0)
    }

    /// Instructions executed by the most recent invocation.
    pub fn last_steps(&self) -> u64 {
        self.steps
    }

    pub(crate) fn call_function(
        &mut self,
        addr: FuncAddr,
        args: Vec<Val>,
        depth: usize,
    ) -> Result<Vec<Val>, WasmTrap> {
        if depth > self.max_call_depth {
            return trap("call stack exhausted");
        }
        let (module, def, nresults) = {
            let f = &self.funcs[addr];
            match &f.def {
                FuncImpl::Wasm(def) => (f.module, def.clone(), f.ty.results.len()),
                FuncImpl::Compiled(cf) => {
                    let (module, cf) = (f.module, cf.clone());
                    return crate::vm::invoke_compiled(self, module, &cf, args, depth);
                }
                FuncImpl::Host(h) => {
                    let h = h.clone();
                    let result_types = f.ty.results.clone();
                    // A host call costs exactly one step of the instruction
                    // budget. When the call arrives through a `call` /
                    // `call_indirect` instruction (depth > 0), that step was
                    // already charged by the dispatching interpreter (the
                    // tree-walker's `exec` or the bytecode VM's call op);
                    // only a *top-level* host invocation, which no
                    // instruction dispatched, charges it here.
                    if depth == 0 {
                        self.steps += 1;
                        if self.steps > self.max_steps {
                            return Err(WasmTrap::fuel_exhausted());
                        }
                    }
                    let results = h(&args)?;
                    // The host lives outside the validated world: re-check
                    // its results against the declared type so a
                    // misbehaving closure cannot corrupt the typed value
                    // stack.
                    if results.len() != result_types.len()
                        || results.iter().zip(&result_types).any(|(v, t)| v.ty() != *t)
                    {
                        return trap(format!(
                            "host function returned {:?}, its type declares {result_types:?}",
                            results.iter().map(Val::ty).collect::<Vec<_>>(),
                        ));
                    }
                    return Ok(results);
                }
            }
        };
        let mut locals = args;
        for l in &def.locals {
            locals.push(Val::zero(*l));
        }
        let mut act = Activation {
            module,
            locals,
            stack: Vec::new(),
            depth,
        };
        match act.exec_seq(self, &def.body)? {
            Flow::Normal | Flow::Return => {}
            Flow::Br(_) => return trap("br escaped function body"),
        }
        if act.stack.len() < nresults {
            return trap("function left too few results");
        }
        let results = act.stack.split_off(act.stack.len() - nresults);
        Ok(results)
    }
}

impl Activation {
    fn mem<'l>(&self, linker: &'l mut WasmLinker) -> Result<&'l mut Vec<u8>, WasmTrap> {
        let ma = linker.instances[self.module]
            .mem_addr
            .ok_or_else(|| WasmTrap("no memory".into()))?;
        Ok(&mut linker.memories[ma])
    }

    fn pop(&mut self) -> Result<Val, WasmTrap> {
        self.stack
            .pop()
            .ok_or_else(|| WasmTrap("value stack underflow".into()))
    }

    fn pop_i32(&mut self) -> Result<u32, WasmTrap> {
        match self.pop()? {
            Val::I32(v) => Ok(v),
            other => trap(format!("expected i32, got {other}")),
        }
    }

    fn exec_seq(&mut self, linker: &mut WasmLinker, body: &[WInstr]) -> Result<Flow, WasmTrap> {
        for e in body {
            match self.exec(linker, e)? {
                Flow::Normal => {}
                f => return Ok(f),
            }
        }
        Ok(Flow::Normal)
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, linker: &mut WasmLinker, e: &WInstr) -> Result<Flow, WasmTrap> {
        linker.steps += 1;
        if linker.steps > linker.max_steps {
            return Err(WasmTrap::fuel_exhausted());
        }
        use WInstr::*;
        match e {
            Unreachable => return trap("unreachable executed"),
            Nop => {}
            Block(bt, body) => {
                let (_, results) = self.resolved_arity(linker, bt)?;
                let base = self.stack.len();
                match self.exec_seq(linker, body)? {
                    Flow::Normal => {}
                    Flow::Br(0) => {
                        // Keep the top `results`, discard down to base -
                        // params… params were already consumed by the body.
                        let keep = self.stack.split_off(self.stack.len() - results);
                        self.stack.truncate(base_minus(base, 0));
                        self.stack.extend(keep);
                    }
                    Flow::Br(n) => return Ok(Flow::Br(n - 1)),
                    Flow::Return => return Ok(Flow::Return),
                }
            }
            Loop(bt, body) => loop {
                let (params, _) = self.resolved_arity(linker, bt)?;
                let base = self.stack.len() - params;
                match self.exec_seq(linker, body)? {
                    Flow::Normal => break,
                    Flow::Br(0) => {
                        // Branch back to the loop start with the params.
                        let keep = self.stack.split_off(self.stack.len() - params);
                        self.stack.truncate(base);
                        self.stack.extend(keep);
                        continue;
                    }
                    Flow::Br(n) => return Ok(Flow::Br(n - 1)),
                    Flow::Return => return Ok(Flow::Return),
                }
            },
            If(bt, t, f) => {
                let c = self.pop_i32()?;
                let (_, results) = self.resolved_arity(linker, bt)?;
                let base = self.stack.len();
                let body = if c != 0 { t } else { f };
                match self.exec_seq(linker, body)? {
                    Flow::Normal => {}
                    Flow::Br(0) => {
                        let keep = self.stack.split_off(self.stack.len() - results);
                        self.stack.truncate(base_minus(base, 0));
                        self.stack.extend(keep);
                    }
                    Flow::Br(n) => return Ok(Flow::Br(n - 1)),
                    Flow::Return => return Ok(Flow::Return),
                }
            }
            Br(l) => return Ok(Flow::Br(*l)),
            BrIf(l) => {
                if self.pop_i32()? != 0 {
                    return Ok(Flow::Br(*l));
                }
            }
            BrTable(ls, d) => {
                let i = self.pop_i32()? as usize;
                let l = ls.get(i).copied().unwrap_or(*d);
                return Ok(Flow::Br(l));
            }
            Return => return Ok(Flow::Return),
            Call(f) => {
                let addr = linker.instances[self.module].func_addrs[*f as usize];
                self.do_call(linker, addr)?;
            }
            CallIndirect(ti) => {
                let i = self.pop_i32()? as usize;
                let ta = linker.instances[self.module]
                    .table_addr
                    .ok_or_else(|| WasmTrap("no table".into()))?;
                let Some(Some(addr)) = linker.tables[ta].get(i).copied() else {
                    return trap(format!("uninitialised table entry {i}"));
                };
                let want = linker.module_types[self.module][*ti as usize].clone();
                if linker.funcs[addr].ty != want {
                    return trap("indirect call type mismatch");
                }
                self.do_call(linker, addr)?;
            }
            Drop => {
                self.pop()?;
            }
            Select => {
                let c = self.pop_i32()?;
                let b = self.pop()?;
                let a = self.pop()?;
                self.stack.push(if c != 0 { a } else { b });
            }
            LocalGet(i) => {
                let v = self.locals[*i as usize];
                self.stack.push(v);
            }
            LocalSet(i) => {
                let v = self.pop()?;
                self.locals[*i as usize] = v;
            }
            LocalTee(i) => {
                let v = *self
                    .stack
                    .last()
                    .ok_or_else(|| WasmTrap("underflow".into()))?;
                self.locals[*i as usize] = v;
            }
            GlobalGet(i) => {
                let addr = linker.instances[self.module].global_addrs[*i as usize];
                self.stack.push(linker.globals[addr]);
            }
            GlobalSet(i) => {
                let v = self.pop()?;
                let addr = linker.instances[self.module].global_addrs[*i as usize];
                linker.globals[addr] = v;
            }
            Load(t, off) => {
                let base = self.pop_i32()? as usize;
                let addr = base + *off as usize;
                let bytes = t_size(*t);
                let mem = self.mem(linker)?;
                if addr + bytes > mem.len() {
                    return trap("out of bounds memory access");
                }
                let mut buf = [0u8; 8];
                buf[..bytes].copy_from_slice(&mem[addr..addr + bytes]);
                let raw = u64::from_le_bytes(buf);
                self.stack.push(match t {
                    ValType::I32 => Val::I32(raw as u32),
                    ValType::I64 => Val::I64(raw),
                    ValType::F32 => Val::F32(f32::from_bits(raw as u32)),
                    ValType::F64 => Val::F64(f64::from_bits(raw)),
                });
            }
            Store(t, off) => {
                let v = self.pop()?;
                let base = self.pop_i32()? as usize;
                let addr = base + *off as usize;
                let bytes = t_size(*t);
                let raw = match v {
                    Val::I32(x) => x as u64,
                    Val::I64(x) => x,
                    Val::F32(x) => x.to_bits() as u64,
                    Val::F64(x) => x.to_bits(),
                };
                let mem = self.mem(linker)?;
                if addr + bytes > mem.len() {
                    return trap("out of bounds memory access");
                }
                mem[addr..addr + bytes].copy_from_slice(&raw.to_le_bytes()[..bytes]);
            }
            Load8U(off) => {
                let base = self.pop_i32()? as usize;
                let addr = base + *off as usize;
                let mem = self.mem(linker)?;
                if addr >= mem.len() {
                    return trap("out of bounds memory access");
                }
                let b = mem[addr];
                self.stack.push(Val::I32(b as u32));
            }
            Store8(off) => {
                let v = self.pop_i32()?;
                let base = self.pop_i32()? as usize;
                let addr = base + *off as usize;
                let mem = self.mem(linker)?;
                if addr >= mem.len() {
                    return trap("out of bounds memory access");
                }
                mem[addr] = v as u8;
            }
            MemorySize => {
                let pages = (self.mem(linker)?.len() / PAGE) as u32;
                self.stack.push(Val::I32(pages));
            }
            MemoryGrow => {
                let delta = self.pop_i32()? as usize;
                let mem = self.mem(linker)?;
                let old = mem.len() / PAGE;
                mem.resize(mem.len() + delta * PAGE, 0);
                self.stack.push(Val::I32(old as u32));
            }
            I32Const(c) => self.stack.push(Val::I32(*c as u32)),
            I64Const(c) => self.stack.push(Val::I64(*c as u64)),
            F32Const(c) => self.stack.push(Val::F32(*c)),
            F64Const(c) => self.stack.push(Val::F64(*c)),
            IUn(w, op) => {
                let a = self.pop_int(*w)?;
                let r = match (w, op) {
                    (Width::W32, IUnOp::Clz) => (a as u32).leading_zeros() as u64,
                    (Width::W32, IUnOp::Ctz) => (a as u32).trailing_zeros() as u64,
                    (Width::W32, IUnOp::Popcnt) => (a as u32).count_ones() as u64,
                    (Width::W64, IUnOp::Clz) => a.leading_zeros() as u64,
                    (Width::W64, IUnOp::Ctz) => a.trailing_zeros() as u64,
                    (Width::W64, IUnOp::Popcnt) => a.count_ones() as u64,
                };
                self.push_int(*w, r);
            }
            IBin(w, op) => {
                let b = self.pop_int(*w)?;
                let a = self.pop_int(*w)?;
                let r = ibin(*w, *op, a, b)?;
                self.push_int(*w, r);
            }
            ITest(w) => {
                let a = self.pop_int(*w)?;
                self.stack.push(Val::I32((a == 0) as u32));
            }
            IRel(w, op) => {
                let b = self.pop_int(*w)?;
                let a = self.pop_int(*w)?;
                self.stack.push(Val::I32(irel(*w, *op, a, b) as u32));
            }
            FUn(w, op) => {
                let a = self.pop_float(*w)?;
                let r = match op {
                    FUnOp::Abs => a.abs(),
                    FUnOp::Neg => -a,
                    FUnOp::Sqrt => a.sqrt(),
                    FUnOp::Ceil => a.ceil(),
                    FUnOp::Floor => a.floor(),
                    FUnOp::Trunc => a.trunc(),
                    FUnOp::Nearest => {
                        let r = a.round();
                        if (a - a.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                            r - a.signum()
                        } else {
                            r
                        }
                    }
                };
                self.push_float(*w, r);
            }
            FBin(w, op) => {
                let b = self.pop_float(*w)?;
                let a = self.pop_float(*w)?;
                let r = match op {
                    FBinOp::Add => a + b,
                    FBinOp::Sub => a - b,
                    FBinOp::Mul => a * b,
                    FBinOp::Div => a / b,
                    FBinOp::Min => a.min(b),
                    FBinOp::Max => a.max(b),
                    FBinOp::Copysign => a.copysign(b),
                };
                self.push_float(*w, r);
            }
            FRel(w, op) => {
                let b = self.pop_float(*w)?;
                let a = self.pop_float(*w)?;
                let r = match op {
                    FRelOp::Eq => a == b,
                    FRelOp::Ne => a != b,
                    FRelOp::Lt => a < b,
                    FRelOp::Gt => a > b,
                    FRelOp::Le => a <= b,
                    FRelOp::Ge => a >= b,
                };
                self.stack.push(Val::I32(r as u32));
            }
            I32WrapI64 => {
                let a = self.pop_int(Width::W64)?;
                self.stack.push(Val::I32(a as u32));
            }
            I64ExtendI32(sx) => {
                let a = self.pop_int(Width::W32)?;
                let r = match sx {
                    Sx::S => a as u32 as i32 as i64 as u64,
                    Sx::U => a as u32 as u64,
                };
                self.stack.push(Val::I64(r));
            }
            ITruncF(iw, fw, sx) => {
                let a = self.pop_float(*fw)?;
                if a.is_nan() {
                    return trap("invalid conversion to integer");
                }
                let t = a.trunc();
                let r = match (iw, sx) {
                    (Width::W32, Sx::S) => {
                        if t < i32::MIN as f64 || t > i32::MAX as f64 {
                            return trap("integer overflow");
                        }
                        t as i32 as u32 as u64
                    }
                    (Width::W32, Sx::U) => {
                        if t < 0.0 || t > u32::MAX as f64 {
                            return trap("integer overflow");
                        }
                        t as u32 as u64
                    }
                    (Width::W64, Sx::S) => {
                        if t < i64::MIN as f64 || t >= i64::MAX as f64 {
                            return trap("integer overflow");
                        }
                        t as i64 as u64
                    }
                    (Width::W64, Sx::U) => {
                        if t < 0.0 || t >= u64::MAX as f64 {
                            return trap("integer overflow");
                        }
                        t as u64
                    }
                };
                self.push_int(*iw, r);
            }
            FConvertI(fw, iw, sx) => {
                let a = self.pop_int(*iw)?;
                let x = match (iw, sx) {
                    (Width::W32, Sx::S) => a as u32 as i32 as f64,
                    (Width::W32, Sx::U) => a as u32 as f64,
                    (Width::W64, Sx::S) => a as i64 as f64,
                    (Width::W64, Sx::U) => a as f64,
                };
                self.push_float(*fw, x);
            }
            F32DemoteF64 => {
                let a = self.pop_float(Width::W64)?;
                self.stack.push(Val::F32(a as f32));
            }
            F64PromoteF32 => {
                let a = self.pop_float(Width::W32)?;
                self.stack.push(Val::F64(a));
            }
            IReinterpretF(w) => {
                let a = self.pop_float(*w)?;
                match w {
                    Width::W32 => self.stack.push(Val::I32((a as f32).to_bits())),
                    Width::W64 => self.stack.push(Val::I64(a.to_bits())),
                }
            }
            FReinterpretI(w) => {
                let a = self.pop_int(*w)?;
                match w {
                    Width::W32 => self.stack.push(Val::F32(f32::from_bits(a as u32))),
                    Width::W64 => self.stack.push(Val::F64(f64::from_bits(a))),
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn do_call(&mut self, linker: &mut WasmLinker, addr: FuncAddr) -> Result<(), WasmTrap> {
        let nparams = linker.funcs[addr].ty.params.len();
        if self.stack.len() < nparams {
            return trap("call with too few arguments");
        }
        let args = self.stack.split_off(self.stack.len() - nparams);
        let results = linker.call_function(addr, args, self.depth + 1)?;
        self.stack.extend(results);
        Ok(())
    }

    fn resolved_arity(
        &self,
        linker: &WasmLinker,
        bt: &BlockType,
    ) -> Result<(usize, usize), WasmTrap> {
        Ok(match bt {
            BlockType::Empty => (0, 0),
            BlockType::Value(_) => (0, 1),
            BlockType::Func(i) => {
                let ft = linker.module_types[self.module]
                    .get(*i as usize)
                    .ok_or_else(|| WasmTrap(format!("unknown block type {i}")))?;
                (ft.params.len(), ft.results.len())
            }
        })
    }

    fn pop_int(&mut self, w: Width) -> Result<u64, WasmTrap> {
        match (w, self.pop()?) {
            (Width::W32, Val::I32(v)) => Ok(v as u64),
            (Width::W64, Val::I64(v)) => Ok(v),
            (_, other) => trap(format!("expected integer, got {other}")),
        }
    }

    fn push_int(&mut self, w: Width, v: u64) {
        match w {
            Width::W32 => self.stack.push(Val::I32(v as u32)),
            Width::W64 => self.stack.push(Val::I64(v)),
        }
    }

    fn pop_float(&mut self, w: Width) -> Result<f64, WasmTrap> {
        match (w, self.pop()?) {
            (Width::W32, Val::F32(v)) => Ok(v as f64),
            (Width::W64, Val::F64(v)) => Ok(v),
            (_, other) => trap(format!("expected float, got {other}")),
        }
    }

    fn push_float(&mut self, w: Width, v: f64) {
        match w {
            Width::W32 => self.stack.push(Val::F32(v as f32)),
            Width::W64 => self.stack.push(Val::F64(v)),
        }
    }
}

fn base_minus(base: usize, n: usize) -> usize {
    base.saturating_sub(n)
}

pub(crate) fn t_size(t: ValType) -> usize {
    match t {
        ValType::I32 | ValType::F32 => 4,
        ValType::I64 | ValType::F64 => 8,
    }
}

pub(crate) fn ibin(w: Width, op: IBinOp, a: u64, b: u64) -> Result<u64, WasmTrap> {
    let mask = |v: u64| {
        if matches!(w, Width::W32) {
            v & 0xFFFF_FFFF
        } else {
            v
        }
    };
    let r = match (w, op) {
        (Width::W32, op) => {
            let (x, y) = (a as u32, b as u32);
            match op {
                IBinOp::Add => x.wrapping_add(y) as u64,
                IBinOp::Sub => x.wrapping_sub(y) as u64,
                IBinOp::Mul => x.wrapping_mul(y) as u64,
                IBinOp::Div(Sx::U) => {
                    if y == 0 {
                        return trap("integer divide by zero");
                    }
                    (x / y) as u64
                }
                IBinOp::Div(Sx::S) => {
                    let (x, y) = (x as i32, y as i32);
                    if y == 0 {
                        return trap("integer divide by zero");
                    }
                    if x == i32::MIN && y == -1 {
                        return trap("integer overflow");
                    }
                    (x / y) as u32 as u64
                }
                IBinOp::Rem(Sx::U) => {
                    if y == 0 {
                        return trap("integer divide by zero");
                    }
                    (x % y) as u64
                }
                IBinOp::Rem(Sx::S) => {
                    let (x, y) = (x as i32, y as i32);
                    if y == 0 {
                        return trap("integer divide by zero");
                    }
                    x.wrapping_rem(y) as u32 as u64
                }
                IBinOp::And => (x & y) as u64,
                IBinOp::Or => (x | y) as u64,
                IBinOp::Xor => (x ^ y) as u64,
                IBinOp::Shl => x.wrapping_shl(y) as u64,
                IBinOp::Shr(Sx::U) => x.wrapping_shr(y) as u64,
                IBinOp::Shr(Sx::S) => (x as i32).wrapping_shr(y) as u32 as u64,
                IBinOp::Rotl => x.rotate_left(y % 32) as u64,
                IBinOp::Rotr => x.rotate_right(y % 32) as u64,
            }
        }
        (Width::W64, op) => {
            let (x, y) = (a, b);
            match op {
                IBinOp::Add => x.wrapping_add(y),
                IBinOp::Sub => x.wrapping_sub(y),
                IBinOp::Mul => x.wrapping_mul(y),
                IBinOp::Div(Sx::U) => {
                    if y == 0 {
                        return trap("integer divide by zero");
                    }
                    x / y
                }
                IBinOp::Div(Sx::S) => {
                    let (x, y) = (x as i64, y as i64);
                    if y == 0 {
                        return trap("integer divide by zero");
                    }
                    if x == i64::MIN && y == -1 {
                        return trap("integer overflow");
                    }
                    (x / y) as u64
                }
                IBinOp::Rem(Sx::U) => {
                    if y == 0 {
                        return trap("integer divide by zero");
                    }
                    x % y
                }
                IBinOp::Rem(Sx::S) => {
                    let (x, y) = (x as i64, y as i64);
                    if y == 0 {
                        return trap("integer divide by zero");
                    }
                    x.wrapping_rem(y) as u64
                }
                IBinOp::And => x & y,
                IBinOp::Or => x | y,
                IBinOp::Xor => x ^ y,
                IBinOp::Shl => x.wrapping_shl(b as u32),
                IBinOp::Shr(Sx::U) => x.wrapping_shr(b as u32),
                IBinOp::Shr(Sx::S) => (x as i64).wrapping_shr(b as u32) as u64,
                IBinOp::Rotl => x.rotate_left((b % 64) as u32),
                IBinOp::Rotr => x.rotate_right((b % 64) as u32),
            }
        }
    };
    Ok(mask(r))
}

pub(crate) fn irel(w: Width, op: IRelOp, a: u64, b: u64) -> bool {
    use std::cmp::Ordering::*;
    let cmp = |sx: Sx| match (w, sx) {
        (Width::W32, Sx::U) => (a as u32).cmp(&(b as u32)),
        (Width::W32, Sx::S) => (a as u32 as i32).cmp(&(b as u32 as i32)),
        (Width::W64, Sx::U) => a.cmp(&b),
        (Width::W64, Sx::S) => (a as i64).cmp(&(b as i64)),
    };
    match op {
        IRelOp::Eq => {
            if matches!(w, Width::W32) {
                (a as u32) == (b as u32)
            } else {
                a == b
            }
        }
        IRelOp::Ne => {
            if matches!(w, Width::W32) {
                (a as u32) != (b as u32)
            } else {
                a != b
            }
        }
        IRelOp::Lt(s) => cmp(s) == Less,
        IRelOp::Gt(s) => cmp(s) == Greater,
        IRelOp::Le(s) => cmp(s) != Greater,
        IRelOp::Ge(s) => cmp(s) != Less,
    }
}
