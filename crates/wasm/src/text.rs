//! A WAT-flavoured text rendering of modules, for debugging and golden
//! tests of the RichWasm → Wasm compiler's output.

use std::fmt::Write;

use crate::ast::*;

fn width(w: Width) -> &'static str {
    match w {
        Width::W32 => "i32",
        Width::W64 => "i64",
    }
}

fn fwidth(w: Width) -> &'static str {
    match w {
        Width::W32 => "f32",
        Width::W64 => "f64",
    }
}

fn sx(s: Sx) -> &'static str {
    match s {
        Sx::S => "s",
        Sx::U => "u",
    }
}

fn write_instr(e: &WInstr, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    use WInstr::*;
    match e {
        Block(_, body) => {
            let _ = writeln!(out, "{pad}block");
            for i in body {
                write_instr(i, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}end");
        }
        Loop(_, body) => {
            let _ = writeln!(out, "{pad}loop");
            for i in body {
                write_instr(i, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}end");
        }
        If(_, t, f) => {
            let _ = writeln!(out, "{pad}if");
            for i in t {
                write_instr(i, indent + 1, out);
            }
            if !f.is_empty() {
                let _ = writeln!(out, "{pad}else");
                for i in f {
                    write_instr(i, indent + 1, out);
                }
            }
            let _ = writeln!(out, "{pad}end");
        }
        other => {
            let s = match other {
                Unreachable => "unreachable".to_string(),
                Nop => "nop".to_string(),
                Br(l) => format!("br {l}"),
                BrIf(l) => format!("br_if {l}"),
                BrTable(ls, d) => format!("br_table {ls:?} {d}"),
                Return => "return".to_string(),
                Call(f) => format!("call {f}"),
                CallIndirect(t) => format!("call_indirect (type {t})"),
                Drop => "drop".to_string(),
                Select => "select".to_string(),
                LocalGet(i) => format!("local.get {i}"),
                LocalSet(i) => format!("local.set {i}"),
                LocalTee(i) => format!("local.tee {i}"),
                GlobalGet(i) => format!("global.get {i}"),
                GlobalSet(i) => format!("global.set {i}"),
                Load(t, o) => format!("{t}.load offset={o}"),
                Store(t, o) => format!("{t}.store offset={o}"),
                Load8U(o) => format!("i32.load8_u offset={o}"),
                Store8(o) => format!("i32.store8 offset={o}"),
                MemorySize => "memory.size".to_string(),
                MemoryGrow => "memory.grow".to_string(),
                I32Const(c) => format!("i32.const {c}"),
                I64Const(c) => format!("i64.const {c}"),
                F32Const(c) => format!("f32.const {c}"),
                F64Const(c) => format!("f64.const {c}"),
                IUn(w, op) => format!("{}.{:?}", width(*w), op).to_lowercase(),
                IBin(w, op) => format!("{}.{:?}", width(*w), op).to_lowercase(),
                ITest(w) => format!("{}.eqz", width(*w)),
                IRel(w, op) => format!("{}.{:?}", width(*w), op).to_lowercase(),
                FUn(w, op) => format!("{}.{:?}", fwidth(*w), op).to_lowercase(),
                FBin(w, op) => format!("{}.{:?}", fwidth(*w), op).to_lowercase(),
                FRel(w, op) => format!("{}.{:?}", fwidth(*w), op).to_lowercase(),
                I32WrapI64 => "i32.wrap_i64".to_string(),
                I64ExtendI32(s) => format!("i64.extend_i32_{}", sx(*s)),
                ITruncF(iw, fw, s) => {
                    format!("{}.trunc_{}_{}", width(*iw), fwidth(*fw), sx(*s))
                }
                FConvertI(fw, iw, s) => {
                    format!("{}.convert_{}_{}", fwidth(*fw), width(*iw), sx(*s))
                }
                F32DemoteF64 => "f32.demote_f64".to_string(),
                F64PromoteF32 => "f64.promote_f32".to_string(),
                IReinterpretF(w) => format!("{}.reinterpret_{}", width(*w), fwidth(*w)),
                FReinterpretI(w) => format!("{}.reinterpret_{}", fwidth(*w), width(*w)),
                Block(..) | Loop(..) | If(..) => unreachable!(),
            };
            let _ = writeln!(out, "{pad}{s}");
        }
    }
}

/// Renders a module in a WAT-flavoured format.
pub fn render_module(m: &Module) -> String {
    let mut out = String::from("(module\n");
    for im in &m.imports {
        let _ = writeln!(
            out,
            "  (import \"{}\" \"{}\" {:?})",
            im.module, im.name, im.kind
        );
    }
    if let Some(p) = m.memory {
        let _ = writeln!(out, "  (memory {p})");
    }
    if let Some(t) = m.table {
        let _ = writeln!(out, "  (table {t} funcref)");
    }
    for (i, g) in m.globals.iter().enumerate() {
        let _ = writeln!(
            out,
            "  (global {i} {} mut={} {:?})",
            g.ty, g.mutable, g.init
        );
    }
    let n = m.num_func_imports();
    for (i, f) in m.funcs.iter().enumerate() {
        let ft = &m.types[f.type_idx as usize];
        let _ = writeln!(
            out,
            "  (func {} (params {:?}) (results {:?}) (locals {:?})",
            i + n,
            ft.params,
            ft.results,
            f.locals
        );
        for e in &f.body {
            write_instr(e, 2, &mut out);
        }
        let _ = writeln!(out, "  )");
    }
    for ex in &m.exports {
        let _ = writeln!(out, "  (export \"{}\" {:?})", ex.name, ex.kind);
    }
    out.push(')');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_smoke() {
        let mut m = Module::default();
        let t = m.intern_type(FuncType {
            params: vec![],
            results: vec![ValType::I32],
        });
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![ValType::I64],
            body: vec![WInstr::Block(
                BlockType::Value(ValType::I32),
                vec![WInstr::I32Const(1)],
            )],
        });
        m.exports.push(Export {
            name: "f".into(),
            kind: ExportKind::Func(0),
        });
        let s = render_module(&m);
        assert!(s.contains("block"), "{s}");
        assert!(s.contains("i32.const 1"), "{s}");
        assert!(s.contains("export \"f\""), "{s}");
    }
}
