//! The flat-bytecode VM: executes [`crate::compile`] output inside the
//! same [`WasmLinker`] store as the tree-walking interpreter.
//!
//! One dispatch loop over a program counter replaces the tree-walker's
//! recursive block traversal: branches are single jumps with
//! pre-resolved keep/truncate unwinds, values are raw `u64` slots
//! (32-bit values zero-extended, floats as their bit patterns — the
//! exact representation `HostVal::bits()` uses on the embedder side).
//!
//! Compiled-to-compiled calls share **one** slot stack: a callee's frame
//! is `[params, zeroed locals, operands…]` laid out directly above its
//! caller's operands, so calling allocates nothing — arguments are
//! already in place when the callee starts, and results are already in
//! place when it returns. Branch targets are frame-relative and offset
//! by the frame base at run time.
//!
//! The VM is **observationally identical** to the tree-walker: the same
//! results bit-for-bit, the same trap messages, and the same fuel
//! accounting (each op that corresponds to a dispatched instruction
//! charges one step against [`WasmLinker::max_steps`]; the flattening's
//! two synthetic ops are free — see [`crate::compile`] for the
//! argument). Calls dispatch per callee: compiled functions recurse
//! directly on the shared slot stack, tree-walked and host functions go
//! back through [`WasmLinker`]'s `call_function`, so the two tiers and
//! the host boundary interoperate call-by-call — host record/replay,
//! fuel, and `reset()` all flow through unchanged.

use crate::ast::{ValType, Width};
use crate::compile::{BranchTarget, CompiledFunc, Op, ESCAPE_PC};
use crate::exec::{ibin, irel, t_size, FuncImpl, Val, WasmLinker, WasmTrap, PAGE};

fn trap<T>(msg: impl Into<String>) -> Result<T, WasmTrap> {
    Err(WasmTrap(msg.into()))
}

/// A typed value's slot representation: the raw bit pattern,
/// zero-extended to 64 bits.
#[inline]
pub(crate) fn slot_of(v: Val) -> u64 {
    match v {
        Val::I32(x) => x as u64,
        Val::I64(x) => x,
        Val::F32(x) => x.to_bits() as u64,
        Val::F64(x) => x.to_bits(),
    }
}

/// Rebuilds the typed value a slot represents at declared type `t`.
#[inline]
pub(crate) fn val_of(t: ValType, s: u64) -> Val {
    match t {
        ValType::I32 => Val::I32(s as u32),
        ValType::I64 => Val::I64(s),
        ValType::F32 => Val::F32(f32::from_bits(s as u32)),
        ValType::F64 => Val::F64(f64::from_bits(s)),
    }
}

/// Pops one operand of the current frame (slots below `base` belong to
/// the caller — dipping under is the tree-walker's underflow trap).
#[inline]
fn pop(stack: &mut Vec<u64>, base: usize) -> Result<u64, WasmTrap> {
    if stack.len() <= base {
        return trap("value stack underflow");
    }
    Ok(stack.pop().expect("len > base >= 0"))
}

#[inline]
fn pop_f(stack: &mut Vec<u64>, base: usize, w: Width) -> Result<f64, WasmTrap> {
    let s = pop(stack, base)?;
    Ok(match w {
        Width::W32 => f32::from_bits(s as u32) as f64,
        Width::W64 => f64::from_bits(s),
    })
}

#[inline]
fn push_f(stack: &mut Vec<u64>, w: Width, v: f64) {
    stack.push(match w {
        // The tree-walker computes f32 ops in f64 and narrows on push;
        // narrowing here keeps the results bit-identical.
        Width::W32 => (v as f32).to_bits() as u64,
        Width::W64 => v.to_bits(),
    });
}

/// Applies a pre-resolved branch: keep the top `keep` slots, truncate to
/// the frame's entry height (offset by the running frame's operand
/// `base`), re-push — the tree-walker's unwind, without the `Flow`
/// propagation. Returns the new pc.
#[inline]
fn take_branch(stack: &mut Vec<u64>, base: usize, t: &BranchTarget) -> Result<usize, WasmTrap> {
    if t.pc == ESCAPE_PC {
        // The validator admits `br` to the implicit function label; the
        // tree-walker traps on it, so the VM does too.
        return trap("br escaped function body");
    }
    let keep = t.keep as usize;
    let height = base + t.height as usize;
    let len = stack.len();
    if len < base + keep {
        return trap("value stack underflow");
    }
    let src = len - keep;
    if src > height {
        for i in 0..keep {
            stack[height + i] = stack[src + i];
        }
    }
    stack.truncate(height + keep);
    Ok(t.pc as usize)
}

/// Entry point from [`WasmLinker`]'s `call_function`: converts the typed
/// arguments to slots, runs the flat body on a fresh slot stack,
/// converts the results back. The caller has already performed the
/// call-depth check.
pub(crate) fn invoke_compiled(
    linker: &mut WasmLinker,
    module: usize,
    cf: &CompiledFunc,
    args: Vec<Val>,
    depth: usize,
) -> Result<Vec<Val>, WasmTrap> {
    let mut stack: Vec<u64> =
        Vec::with_capacity((args.len() + cf.nlocals as usize + cf.max_stack as usize).max(64));
    stack.extend(args.into_iter().map(slot_of));
    run(linker, module, cf, &mut stack, depth)?;
    // The frame is gone; the results sit at the bottom of the stack.
    Ok(stack
        .iter()
        .zip(&cf.result_types)
        .map(|(s, t)| val_of(*t, *s))
        .collect())
}

/// Dispatches a call from compiled code: compiled callees run in place
/// on the shared slot stack (arguments on top become their frame);
/// tree-walked and host callees convert at the boundary and go through
/// `call_function` (which applies the single-charge host fuel policy and
/// the tree-walker itself).
fn call_addr(
    linker: &mut WasmLinker,
    stack: &mut Vec<u64>,
    base: usize,
    addr: usize,
    depth: usize,
) -> Result<(), WasmTrap> {
    let callee = &linker.funcs[addr];
    match &callee.def {
        FuncImpl::Compiled(cf) => {
            let (cf, callee_module) = (cf.clone(), callee.module);
            if depth + 1 > linker.max_call_depth {
                return trap("call stack exhausted");
            }
            if stack.len() < base + cf.nparams as usize {
                return trap("call with too few arguments");
            }
            run(linker, callee_module, &cf, stack, depth + 1)
        }
        _ => {
            let nparams = callee.ty.params.len();
            if stack.len() < base + nparams {
                return trap("call with too few arguments");
            }
            let param_types: Vec<ValType> = callee.ty.params.clone();
            let args: Vec<Val> = stack
                .drain(stack.len() - nparams..)
                .zip(&param_types)
                .map(|(s, t)| val_of(*t, s))
                .collect();
            let results = linker.call_function(addr, args, depth + 1)?;
            stack.extend(results.into_iter().map(slot_of));
            Ok(())
        }
    }
}

/// The dispatch loop. On entry the top `cf.nparams` slots of `stack` are
/// the arguments; on success the frame has been replaced by the
/// function's results.
#[allow(clippy::too_many_lines)]
fn run(
    linker: &mut WasmLinker,
    module: usize,
    cf: &CompiledFunc,
    stack: &mut Vec<u64>,
    depth: usize,
) -> Result<(), WasmTrap> {
    // Frame layout: [.. caller .. | params, zeroed locals | operands..].
    let locals = stack.len() - cf.nparams as usize;
    stack.resize(locals + cf.nparams as usize + cf.nlocals as usize, 0);
    let base = stack.len();
    // Memory and function address spaces are per-instance constants;
    // resolve them once per activation instead of per access.
    let mem = linker.instances[module].mem_addr;
    let mut pc: usize = 0;
    loop {
        let op = &cf.code[pc];
        pc += 1;
        // Fuel: identical accounting to the tree-walker's per-dispatch
        // charge; the flattening's synthetic ops are free and fused
        // superinstructions batch-charge the sum of their parts. If the
        // budget crosses anywhere inside a batch the trap happens before
        // any of the op's effects, with `steps` pinned to the value the
        // tree-walker stops at (`max + 1`, the first charge that
        // exceeds) — exact because fused sub-ops are pure or
        // frame-local up to their final side effect (see
        // `crate::compile`'s fusion notes).
        let cost = op.cost();
        if cost != 0 {
            linker.steps += cost;
            if linker.steps > linker.max_steps {
                linker.steps = linker.max_steps + 1;
                return Err(WasmTrap::fuel_exhausted());
            }
        }
        match op {
            Op::Unreachable => return trap("unreachable executed"),
            Op::Nop | Op::Meter => {}
            Op::Jump(t) => pc = *t as usize,
            Op::IfFalse(t) => {
                if pop(stack, base)? as u32 == 0 {
                    pc = *t as usize;
                }
            }
            Op::Br(t) => pc = take_branch(stack, base, t)?,
            Op::BrIf(t) => {
                if pop(stack, base)? as u32 != 0 {
                    pc = take_branch(stack, base, t)?;
                }
            }
            Op::BrTable(d) => {
                let i = pop(stack, base)? as u32 as usize;
                let t = d.targets.get(i).unwrap_or(&d.default);
                pc = take_branch(stack, base, t)?;
            }
            Op::Return { keep } | Op::FallRet { keep } => {
                let keep = *keep as usize;
                if stack.len() < base + keep {
                    return trap("function left too few results");
                }
                // Collapse the frame: results move down over the locals.
                let src = stack.len() - keep;
                for i in 0..keep {
                    stack[locals + i] = stack[src + i];
                }
                stack.truncate(locals + keep);
                return Ok(());
            }
            Op::Call(fi) => {
                let addr = linker.instances[module].func_addrs[*fi as usize];
                call_addr(linker, stack, base, addr, depth)?;
            }
            Op::CallIndirect(want) => {
                let i = pop(stack, base)? as u32 as usize;
                let ta = linker.instances[module]
                    .table_addr
                    .ok_or_else(|| WasmTrap("no table".into()))?;
                let Some(Some(addr)) = linker.tables[ta].get(i).copied() else {
                    return trap(format!("uninitialised table entry {i}"));
                };
                if linker.funcs[addr].ty != **want {
                    return trap("indirect call type mismatch");
                }
                call_addr(linker, stack, base, addr, depth)?;
            }
            Op::Drop => {
                pop(stack, base)?;
            }
            Op::Select => {
                let c = pop(stack, base)?;
                let b = pop(stack, base)?;
                let a = pop(stack, base)?;
                stack.push(if c as u32 != 0 { a } else { b });
            }
            Op::LocalGet(i) => {
                let v = stack[locals + *i as usize];
                stack.push(v);
            }
            Op::LocalSet(i) => {
                let v = pop(stack, base)?;
                stack[locals + *i as usize] = v;
            }
            Op::LocalTee(i) => {
                if stack.len() <= base {
                    return trap("value stack underflow");
                }
                stack[locals + *i as usize] = stack[stack.len() - 1];
            }
            Op::GlobalGet(i) => {
                let addr = linker.instances[module].global_addrs[*i as usize];
                stack.push(slot_of(linker.globals[addr]));
            }
            Op::GlobalSet { idx, ty } => {
                let v = pop(stack, base)?;
                let addr = linker.instances[module].global_addrs[*idx as usize];
                linker.globals[addr] = val_of(*ty, v);
            }
            Op::Load { ty, offset } => {
                let a = pop(stack, base)? as u32 as usize;
                let addr = a + *offset as usize;
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                let m = &linker.memories[ma];
                // Fixed-width accesses (4 or 8 bytes, decided by the
                // static type) compile to single loads; the generic
                // `copy_from_slice` path would be a memcpy call per op.
                let v = if t_size(*ty) == 4 {
                    let Some(b) = m.get(addr..addr + 4) else {
                        return trap("out of bounds memory access");
                    };
                    u32::from_le_bytes(b.try_into().expect("4-byte slice")) as u64
                } else {
                    let Some(b) = m.get(addr..addr + 8) else {
                        return trap("out of bounds memory access");
                    };
                    u64::from_le_bytes(b.try_into().expect("8-byte slice"))
                };
                stack.push(v);
            }
            Op::Store { ty, offset } => {
                let raw = pop(stack, base)?;
                let a = pop(stack, base)? as u32 as usize;
                let addr = a + *offset as usize;
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                let m = &mut linker.memories[ma];
                if t_size(*ty) == 4 {
                    let Some(b) = m.get_mut(addr..addr + 4) else {
                        return trap("out of bounds memory access");
                    };
                    b.copy_from_slice(&(raw as u32).to_le_bytes());
                } else {
                    let Some(b) = m.get_mut(addr..addr + 8) else {
                        return trap("out of bounds memory access");
                    };
                    b.copy_from_slice(&raw.to_le_bytes());
                }
            }
            Op::Load8U(offset) => {
                let a = pop(stack, base)? as u32 as usize;
                let addr = a + *offset as usize;
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                let m = &linker.memories[ma];
                if addr >= m.len() {
                    return trap("out of bounds memory access");
                }
                stack.push(m[addr] as u64);
            }
            Op::Store8(offset) => {
                let v = pop(stack, base)?;
                let a = pop(stack, base)? as u32 as usize;
                let addr = a + *offset as usize;
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                let m = &mut linker.memories[ma];
                if addr >= m.len() {
                    return trap("out of bounds memory access");
                }
                m[addr] = v as u8;
            }
            Op::MemorySize => {
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                stack.push((linker.memories[ma].len() / PAGE) as u64);
            }
            Op::MemoryGrow => {
                let delta = pop(stack, base)? as u32 as usize;
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                let m = &mut linker.memories[ma];
                let old = m.len() / PAGE;
                m.resize(m.len() + delta * PAGE, 0);
                stack.push(old as u64);
            }
            Op::Const(v) => stack.push(*v),
            Op::IUn(w, op) => {
                let a = pop(stack, base)?;
                use crate::ast::IUnOp;
                let r = match (w, op) {
                    (Width::W32, IUnOp::Clz) => (a as u32).leading_zeros() as u64,
                    (Width::W32, IUnOp::Ctz) => (a as u32).trailing_zeros() as u64,
                    (Width::W32, IUnOp::Popcnt) => (a as u32).count_ones() as u64,
                    (Width::W64, IUnOp::Clz) => a.leading_zeros() as u64,
                    (Width::W64, IUnOp::Ctz) => a.trailing_zeros() as u64,
                    (Width::W64, IUnOp::Popcnt) => a.count_ones() as u64,
                };
                stack.push(r);
            }
            Op::IBin(w, op) => {
                let b = pop(stack, base)?;
                let a = pop(stack, base)?;
                stack.push(ibin(*w, *op, a, b)?);
            }
            Op::ITest(w) => {
                let a = pop(stack, base)?;
                let z = match w {
                    Width::W32 => a as u32 == 0,
                    Width::W64 => a == 0,
                };
                stack.push(z as u64);
            }
            Op::IRel(w, op) => {
                let b = pop(stack, base)?;
                let a = pop(stack, base)?;
                stack.push(irel(*w, *op, a, b) as u64);
            }
            Op::FUn(w, op) => {
                let a = pop_f(stack, base, *w)?;
                use crate::ast::FUnOp;
                let r = match op {
                    FUnOp::Abs => a.abs(),
                    FUnOp::Neg => -a,
                    FUnOp::Sqrt => a.sqrt(),
                    FUnOp::Ceil => a.ceil(),
                    FUnOp::Floor => a.floor(),
                    FUnOp::Trunc => a.trunc(),
                    FUnOp::Nearest => {
                        let r = a.round();
                        if (a - a.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                            r - a.signum()
                        } else {
                            r
                        }
                    }
                };
                push_f(stack, *w, r);
            }
            Op::FBin(w, op) => {
                let b = pop_f(stack, base, *w)?;
                let a = pop_f(stack, base, *w)?;
                use crate::ast::FBinOp;
                let r = match op {
                    FBinOp::Add => a + b,
                    FBinOp::Sub => a - b,
                    FBinOp::Mul => a * b,
                    FBinOp::Div => a / b,
                    FBinOp::Min => a.min(b),
                    FBinOp::Max => a.max(b),
                    FBinOp::Copysign => a.copysign(b),
                };
                push_f(stack, *w, r);
            }
            Op::FRel(w, op) => {
                let b = pop_f(stack, base, *w)?;
                let a = pop_f(stack, base, *w)?;
                use crate::ast::FRelOp;
                let r = match op {
                    FRelOp::Eq => a == b,
                    FRelOp::Ne => a != b,
                    FRelOp::Lt => a < b,
                    FRelOp::Gt => a > b,
                    FRelOp::Le => a <= b,
                    FRelOp::Ge => a >= b,
                };
                stack.push(r as u64);
            }
            Op::I32WrapI64 => {
                let a = pop(stack, base)?;
                stack.push(a as u32 as u64);
            }
            Op::I64ExtendI32(sx) => {
                let a = pop(stack, base)?;
                use crate::ast::Sx;
                stack.push(match sx {
                    Sx::S => a as u32 as i32 as i64 as u64,
                    Sx::U => a as u32 as u64,
                });
            }
            Op::ITruncF(iw, fw, sx) => {
                let a = pop_f(stack, base, *fw)?;
                if a.is_nan() {
                    return trap("invalid conversion to integer");
                }
                let t = a.trunc();
                use crate::ast::Sx;
                let r = match (iw, sx) {
                    (Width::W32, Sx::S) => {
                        if t < i32::MIN as f64 || t > i32::MAX as f64 {
                            return trap("integer overflow");
                        }
                        t as i32 as u32 as u64
                    }
                    (Width::W32, Sx::U) => {
                        if t < 0.0 || t > u32::MAX as f64 {
                            return trap("integer overflow");
                        }
                        t as u32 as u64
                    }
                    (Width::W64, Sx::S) => {
                        if t < i64::MIN as f64 || t >= i64::MAX as f64 {
                            return trap("integer overflow");
                        }
                        t as i64 as u64
                    }
                    (Width::W64, Sx::U) => {
                        if t < 0.0 || t >= u64::MAX as f64 {
                            return trap("integer overflow");
                        }
                        t as u64
                    }
                };
                stack.push(r);
            }
            Op::FConvertI(fw, iw, sx) => {
                let a = pop(stack, base)?;
                use crate::ast::Sx;
                let x = match (iw, sx) {
                    (Width::W32, Sx::S) => a as u32 as i32 as f64,
                    (Width::W32, Sx::U) => a as u32 as f64,
                    (Width::W64, Sx::S) => a as i64 as f64,
                    (Width::W64, Sx::U) => a as f64,
                };
                push_f(stack, *fw, x);
            }
            Op::F32DemoteF64 => {
                let a = pop_f(stack, base, Width::W64)?;
                stack.push((a as f32).to_bits() as u64);
            }
            Op::F64PromoteF32 => {
                let a = pop_f(stack, base, Width::W32)?;
                stack.push(a.to_bits());
            }
            Op::IReinterpretF(w) => {
                // Mirror the tree-walker's f64 round trip exactly (it
                // widens to f64 on pop and narrows on reinterpret).
                let a = pop_f(stack, base, *w)?;
                stack.push(match w {
                    Width::W32 => (a as f32).to_bits() as u64,
                    Width::W64 => a.to_bits(),
                });
            }
            Op::FReinterpretI(w) => {
                let a = pop(stack, base)?;
                stack.push(match w {
                    Width::W32 => a as u32 as u64,
                    Width::W64 => a,
                });
            }
            // --- Fused superinstructions: same effects as their parts,
            // one dispatch. `ibin` is infallible here (div/rem are never
            // fused) but routes through `?` to keep one code path. ---
            Op::GetConstOp(w, op, i, c) => {
                let a = stack[locals + *i as usize];
                let v = ibin(*w, *op, a, *c)?;
                stack.push(v);
            }
            Op::GetConstOpSet(w, op, i, j, c) => {
                let a = stack[locals + *i as usize];
                stack[locals + *j as usize] = ibin(*w, *op, a, *c)?;
            }
            Op::GlobalIncr(w, op, ty, g, c) => {
                let addr = linker.instances[module].global_addrs[*g as usize];
                let a = slot_of(linker.globals[addr]);
                linker.globals[addr] = val_of(*ty, ibin(*w, *op, a, *c)?);
            }
            Op::ConstOp(w, op, c) => {
                let a = pop(stack, base)?;
                let v = ibin(*w, *op, a, *c)?;
                stack.push(v);
            }
            Op::ConstRelIfFalse(w, op, t, c) => {
                let a = pop(stack, base)?;
                if !irel(*w, *op, a, *c) {
                    pc = *t as usize;
                }
            }
            Op::GetLoad(ty, offset, i) => {
                let a = stack[locals + *i as usize] as u32 as usize;
                let addr = a + *offset as usize;
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                let m = &linker.memories[ma];
                let v = if t_size(*ty) == 4 {
                    let Some(b) = m.get(addr..addr + 4) else {
                        return trap("out of bounds memory access");
                    };
                    u32::from_le_bytes(b.try_into().expect("4-byte slice")) as u64
                } else {
                    let Some(b) = m.get(addr..addr + 8) else {
                        return trap("out of bounds memory access");
                    };
                    u64::from_le_bytes(b.try_into().expect("8-byte slice"))
                };
                stack.push(v);
            }
            Op::TestBr(w, t) => {
                let a = pop(stack, base)?;
                let z = match w {
                    Width::W32 => a as u32 == 0,
                    Width::W64 => a == 0,
                };
                if z {
                    pc = take_branch(stack, base, t)?;
                }
            }
            Op::GetTest(w, i) => {
                let a = stack[locals + *i as usize];
                let z = match w {
                    Width::W32 => a as u32 == 0,
                    Width::W64 => a == 0,
                };
                stack.push(z as u64);
            }
            Op::Copy(i, j) => {
                stack[locals + *j as usize] = stack[locals + *i as usize];
            }
            Op::Get2(i, j) => {
                let a = stack[locals + *i as usize];
                let b = stack[locals + *j as usize];
                stack.push(a);
                stack.push(b);
            }
            Op::ConstSet(j, c) => {
                stack[locals + *j as usize] = *c;
            }
            Op::GetConstRelBr(d) => {
                let a = stack[locals + d.i as usize];
                if irel(d.w, d.op, a, d.c) {
                    pc = take_branch(stack, base, &d.t)?;
                }
            }
            Op::GetConstRelIfFalse(d) => {
                let a = stack[locals + d.i as usize];
                if !irel(d.w, d.op, a, d.c) {
                    pc = d.t.pc as usize;
                }
            }
            Op::RelBr(w, op, t) => {
                let b = pop(stack, base)?;
                let a = pop(stack, base)?;
                if irel(*w, *op, a, b) {
                    pc = take_branch(stack, base, t)?;
                }
            }
            Op::GetRelIfFalse(w, op, i, t) => {
                let b = stack[locals + *i as usize];
                let a = pop(stack, base)?;
                if !irel(*w, *op, a, b) {
                    pc = *t as usize;
                }
            }
            Op::GetLoadSet(ty, offset, i, j) => {
                let a = stack[locals + *i as usize] as u32 as usize;
                let addr = a + *offset as usize;
                // The load is the middle sub-op: its traps happen with
                // only two of the three steps charged on the
                // tree-walker, so give one back before trapping.
                let give_back = |l: &mut WasmLinker| l.steps -= 1;
                let Some(ma) = mem else {
                    give_back(linker);
                    return trap("no memory");
                };
                let m = &linker.memories[ma];
                let v = if t_size(*ty) == 4 {
                    match m.get(addr..addr + 4) {
                        Some(b) => u32::from_le_bytes(b.try_into().expect("4-byte slice")) as u64,
                        None => {
                            give_back(linker);
                            return trap("out of bounds memory access");
                        }
                    }
                } else {
                    match m.get(addr..addr + 8) {
                        Some(b) => u64::from_le_bytes(b.try_into().expect("8-byte slice")),
                        None => {
                            give_back(linker);
                            return trap("out of bounds memory access");
                        }
                    }
                };
                stack[locals + *j as usize] = v;
            }
            Op::Get2Store(ty, offset, i, j) => {
                let a = stack[locals + *i as usize] as u32 as usize;
                let raw = stack[locals + *j as usize];
                let addr = a + *offset as usize;
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                let m = &mut linker.memories[ma];
                if t_size(*ty) == 4 {
                    let Some(b) = m.get_mut(addr..addr + 4) else {
                        return trap("out of bounds memory access");
                    };
                    b.copy_from_slice(&(raw as u32).to_le_bytes());
                } else {
                    let Some(b) = m.get_mut(addr..addr + 8) else {
                        return trap("out of bounds memory access");
                    };
                    b.copy_from_slice(&raw.to_le_bytes());
                }
            }
            Op::ConstOpSet(w, op, j, c) => {
                let a = pop(stack, base)?;
                stack[locals + *j as usize] = ibin(*w, *op, a, *c)?;
            }
            Op::GlobalGetSet(g, j) => {
                let addr = linker.instances[module].global_addrs[*g as usize];
                stack[locals + *j as usize] = slot_of(linker.globals[addr]);
            }
            Op::Meter2 => {}
            Op::GetTestBr(w, i, t) => {
                let a = stack[locals + *i as usize];
                let z = match w {
                    Width::W32 => a as u32 == 0,
                    Width::W64 => a == 0,
                };
                if z {
                    pc = take_branch(stack, base, t)?;
                }
            }
            Op::GetTestIfFalse(w, i, t) => {
                let a = stack[locals + *i as usize];
                let nz = match w {
                    Width::W32 => a as u32 != 0,
                    Width::W64 => a != 0,
                };
                if nz {
                    pc = *t as usize;
                }
            }
            Op::GetGlobalStore(ty, offset, i, g) => {
                let a = stack[locals + *i as usize] as u32 as usize;
                let gaddr = linker.instances[module].global_addrs[*g as usize];
                let raw = slot_of(linker.globals[gaddr]);
                let addr = a + *offset as usize;
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                let m = &mut linker.memories[ma];
                if t_size(*ty) == 4 {
                    let Some(b) = m.get_mut(addr..addr + 4) else {
                        return trap("out of bounds memory access");
                    };
                    b.copy_from_slice(&(raw as u32).to_le_bytes());
                } else {
                    let Some(b) = m.get_mut(addr..addr + 8) else {
                        return trap("out of bounds memory access");
                    };
                    b.copy_from_slice(&raw.to_le_bytes());
                }
            }
            Op::GetLoadGlobalSet(ty, gty, offset, i, g) => {
                let a = stack[locals + *i as usize] as u32 as usize;
                let addr = a + *offset as usize;
                // Like `GetLoadSet`: the load is the middle sub-op, so
                // its traps give one step back.
                let give_back = |l: &mut WasmLinker| l.steps -= 1;
                let Some(ma) = mem else {
                    give_back(linker);
                    return trap("no memory");
                };
                let m = &linker.memories[ma];
                let v = if t_size(*ty) == 4 {
                    match m.get(addr..addr + 4) {
                        Some(b) => u32::from_le_bytes(b.try_into().expect("4-byte slice")) as u64,
                        None => {
                            give_back(linker);
                            return trap("out of bounds memory access");
                        }
                    }
                } else {
                    match m.get(addr..addr + 8) {
                        Some(b) => u64::from_le_bytes(b.try_into().expect("8-byte slice")),
                        None => {
                            give_back(linker);
                            return trap("out of bounds memory access");
                        }
                    }
                };
                let gaddr = linker.instances[module].global_addrs[*g as usize];
                linker.globals[gaddr] = val_of(*gty, v);
            }
            Op::TeeGetLoad(ty, offset, i) => {
                if stack.len() <= base {
                    return trap("value stack underflow");
                }
                let v = stack[stack.len() - 1];
                stack[locals + *i as usize] = v;
                let addr = v as u32 as usize + *offset as usize;
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                let m = &linker.memories[ma];
                let loaded = if t_size(*ty) == 4 {
                    let Some(b) = m.get(addr..addr + 4) else {
                        return trap("out of bounds memory access");
                    };
                    u32::from_le_bytes(b.try_into().expect("4-byte slice")) as u64
                } else {
                    let Some(b) = m.get(addr..addr + 8) else {
                        return trap("out of bounds memory access");
                    };
                    u64::from_le_bytes(b.try_into().expect("8-byte slice"))
                };
                stack.push(loaded);
            }
            Op::GetConstOpGetOp(d) => {
                let a = stack[locals + d.i as usize];
                let b = stack[locals + d.j as usize];
                let v = ibin(d.w, d.op1, a, d.c)?;
                let v = ibin(d.w, d.op2, v, b)?;
                stack.push(v);
            }
            Op::ConstCall(f, c) => {
                stack.push(*c);
                let addr = linker.instances[module].func_addrs[*f as usize];
                call_addr(linker, stack, base, addr, depth)?;
            }
            Op::MeterGetTestBr(w, i, t) => {
                let a = stack[locals + *i as usize];
                let z = match w {
                    Width::W32 => a as u32 == 0,
                    Width::W64 => a == 0,
                };
                if z {
                    pc = take_branch(stack, base, t)?;
                }
            }
            Op::GetMeter(i) => stack.push(stack[locals + *i as usize]),
            Op::GetConstOpGlobalSet(w, op, gty, i, g, c) => {
                let v = ibin(*w, *op, stack[locals + *i as usize], *c)?;
                let addr = linker.instances[module].global_addrs[*g as usize];
                linker.globals[addr] = val_of(*gty, v);
            }
            Op::ConstSetGlobalGetSet(j1, g, j2, c) => {
                stack[locals + *j1 as usize] = *c;
                let addr = linker.instances[module].global_addrs[*g as usize];
                stack[locals + *j2 as usize] = slot_of(linker.globals[addr]);
            }
            Op::GetConstOpConstOpSet(d) => {
                let v = ibin(d.w, d.op1, stack[locals + d.i as usize], d.c1)?;
                stack[locals + d.j as usize] = ibin(d.w, d.op2, v, d.c2)?;
            }
            Op::GetConstOpRet(w, op, i, c) => {
                // The fused push supplies the single result itself, so
                // the tree-walker's too-few-results check can't fire.
                stack[locals] = ibin(*w, *op, stack[locals + *i as usize], *c)?;
                stack.truncate(locals + 1);
                return Ok(());
            }
            Op::GetLoadRelIfFalse(d) => {
                let a = stack[locals + d.i as usize] as u32 as usize;
                let addr = a + d.offset as usize;
                // The load is sub-op 2 of 5: its traps happen with only
                // two steps charged on the tree-walker, so give three
                // back before trapping.
                let give_back = |l: &mut WasmLinker| l.steps -= 3;
                let Some(ma) = mem else {
                    give_back(linker);
                    return trap("no memory");
                };
                let m = &linker.memories[ma];
                let v = if t_size(d.ty) == 4 {
                    match m.get(addr..addr + 4) {
                        Some(b) => u32::from_le_bytes(b.try_into().expect("4-byte slice")) as u64,
                        None => {
                            give_back(linker);
                            return trap("out of bounds memory access");
                        }
                    }
                } else {
                    match m.get(addr..addr + 8) {
                        Some(b) => u64::from_le_bytes(b.try_into().expect("8-byte slice")),
                        None => {
                            give_back(linker);
                            return trap("out of bounds memory access");
                        }
                    }
                };
                let b = stack[locals + d.j as usize];
                if !irel(d.w, d.op, v, b) {
                    pc = d.pc as usize;
                }
            }
            Op::CopyGetConstOpSet(d) => {
                stack[locals + d.b as usize] = stack[locals + d.a as usize];
                stack[locals + d.j as usize] = ibin(d.w, d.op, stack[locals + d.i as usize], d.c)?;
            }
            Op::SetGet2Store(ty, offset, b, j) => {
                let a = pop(stack, base)?;
                stack[locals + *b as usize] = a;
                let addr = a as u32 as usize + *offset as usize;
                let raw = stack[locals + *j as usize];
                let ma = mem.ok_or_else(|| WasmTrap("no memory".into()))?;
                let m = &mut linker.memories[ma];
                if t_size(*ty) == 4 {
                    let Some(bs) = m.get_mut(addr..addr + 4) else {
                        return trap("out of bounds memory access");
                    };
                    bs.copy_from_slice(&(raw as u32).to_le_bytes());
                } else {
                    let Some(bs) = m.get_mut(addr..addr + 8) else {
                        return trap("out of bounds memory access");
                    };
                    bs.copy_from_slice(&raw.to_le_bytes());
                }
            }
        }
    }
}
