//! Encoder to the standard WebAssembly binary format (spec §5).
//!
//! Lowered RichWasm modules can be serialised to real `.wasm` bytes and
//! fed to any engine. (We only need the encoder; execution in this repo
//! goes through [`crate::exec`].)

use crate::ast::*;

/// Encodes an unsigned LEB128 integer.
pub fn uleb(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let mut b = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            b |= 0x80;
        }
        out.push(b);
        if v == 0 {
            break;
        }
    }
}

/// Encodes a signed LEB128 integer.
pub fn sleb(mut v: i64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        let done = (v == 0 && b & 0x40 == 0) || (v == -1 && b & 0x40 != 0);
        out.push(if done { b } else { b | 0x80 });
        if done {
            break;
        }
    }
}

fn valtype(t: ValType) -> u8 {
    match t {
        ValType::I32 => 0x7f,
        ValType::I64 => 0x7e,
        ValType::F32 => 0x7d,
        ValType::F64 => 0x7c,
    }
}

fn blocktype(bt: &BlockType, out: &mut Vec<u8>) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(valtype(*t)),
        BlockType::Func(i) => sleb(*i as i64, out),
    }
}

fn name(s: &str, out: &mut Vec<u8>) {
    uleb(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn section(id: u8, payload: Vec<u8>, out: &mut Vec<u8>) {
    if payload.is_empty() {
        return;
    }
    out.push(id);
    uleb(payload.len() as u64, out);
    out.extend(payload);
}

#[allow(clippy::too_many_lines)]
fn instr(e: &WInstr, out: &mut Vec<u8>) {
    use WInstr::*;
    match e {
        Unreachable => out.push(0x00),
        Nop => out.push(0x01),
        Block(bt, body) => {
            out.push(0x02);
            blocktype(bt, out);
            for i in body {
                instr(i, out);
            }
            out.push(0x0b);
        }
        Loop(bt, body) => {
            out.push(0x03);
            blocktype(bt, out);
            for i in body {
                instr(i, out);
            }
            out.push(0x0b);
        }
        If(bt, t, f) => {
            out.push(0x04);
            blocktype(bt, out);
            for i in t {
                instr(i, out);
            }
            if !f.is_empty() {
                out.push(0x05);
                for i in f {
                    instr(i, out);
                }
            }
            out.push(0x0b);
        }
        Br(l) => {
            out.push(0x0c);
            uleb(*l as u64, out);
        }
        BrIf(l) => {
            out.push(0x0d);
            uleb(*l as u64, out);
        }
        BrTable(ls, d) => {
            out.push(0x0e);
            uleb(ls.len() as u64, out);
            for l in ls {
                uleb(*l as u64, out);
            }
            uleb(*d as u64, out);
        }
        Return => out.push(0x0f),
        Call(f) => {
            out.push(0x10);
            uleb(*f as u64, out);
        }
        CallIndirect(t) => {
            out.push(0x11);
            uleb(*t as u64, out);
            out.push(0x00); // table index
        }
        Drop => out.push(0x1a),
        Select => out.push(0x1b),
        LocalGet(i) => {
            out.push(0x20);
            uleb(*i as u64, out);
        }
        LocalSet(i) => {
            out.push(0x21);
            uleb(*i as u64, out);
        }
        LocalTee(i) => {
            out.push(0x22);
            uleb(*i as u64, out);
        }
        GlobalGet(i) => {
            out.push(0x23);
            uleb(*i as u64, out);
        }
        GlobalSet(i) => {
            out.push(0x24);
            uleb(*i as u64, out);
        }
        Load(t, off) => {
            let (op, align) = match t {
                ValType::I32 => (0x28, 2),
                ValType::I64 => (0x29, 3),
                ValType::F32 => (0x2a, 2),
                ValType::F64 => (0x2b, 3),
            };
            out.push(op);
            uleb(align, out);
            uleb(*off as u64, out);
        }
        Store(t, off) => {
            let (op, align) = match t {
                ValType::I32 => (0x36, 2),
                ValType::I64 => (0x37, 3),
                ValType::F32 => (0x38, 2),
                ValType::F64 => (0x39, 3),
            };
            out.push(op);
            uleb(align, out);
            uleb(*off as u64, out);
        }
        Load8U(off) => {
            out.push(0x2d);
            uleb(0, out);
            uleb(*off as u64, out);
        }
        Store8(off) => {
            out.push(0x3a);
            uleb(0, out);
            uleb(*off as u64, out);
        }
        MemorySize => {
            out.push(0x3f);
            out.push(0x00);
        }
        MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        I32Const(c) => {
            out.push(0x41);
            sleb(*c as i64, out);
        }
        I64Const(c) => {
            out.push(0x42);
            sleb(*c, out);
        }
        F32Const(c) => {
            out.push(0x43);
            out.extend_from_slice(&c.to_le_bytes());
        }
        F64Const(c) => {
            out.push(0x44);
            out.extend_from_slice(&c.to_le_bytes());
        }
        ITest(w) => out.push(match w {
            Width::W32 => 0x45,
            Width::W64 => 0x50,
        }),
        IRel(w, op) => {
            let base: u8 = match w {
                Width::W32 => 0x46,
                Width::W64 => 0x51,
            };
            let o: u8 = match op {
                IRelOp::Eq => 0,
                IRelOp::Ne => 1,
                IRelOp::Lt(Sx::S) => 2,
                IRelOp::Lt(Sx::U) => 3,
                IRelOp::Gt(Sx::S) => 4,
                IRelOp::Gt(Sx::U) => 5,
                IRelOp::Le(Sx::S) => 6,
                IRelOp::Le(Sx::U) => 7,
                IRelOp::Ge(Sx::S) => 8,
                IRelOp::Ge(Sx::U) => 9,
            };
            out.push(base + o);
        }
        FRel(w, op) => {
            let base: u8 = match w {
                Width::W32 => 0x5b,
                Width::W64 => 0x61,
            };
            let o: u8 = match op {
                FRelOp::Eq => 0,
                FRelOp::Ne => 1,
                FRelOp::Lt => 2,
                FRelOp::Gt => 3,
                FRelOp::Le => 4,
                FRelOp::Ge => 5,
            };
            out.push(base + o);
        }
        IUn(w, op) => {
            let base: u8 = match w {
                Width::W32 => 0x67,
                Width::W64 => 0x79,
            };
            let o: u8 = match op {
                IUnOp::Clz => 0,
                IUnOp::Ctz => 1,
                IUnOp::Popcnt => 2,
            };
            out.push(base + o);
        }
        IBin(w, op) => {
            let base: u8 = match w {
                Width::W32 => 0x6a,
                Width::W64 => 0x7c,
            };
            let o: u8 = match op {
                IBinOp::Add => 0,
                IBinOp::Sub => 1,
                IBinOp::Mul => 2,
                IBinOp::Div(Sx::S) => 3,
                IBinOp::Div(Sx::U) => 4,
                IBinOp::Rem(Sx::S) => 5,
                IBinOp::Rem(Sx::U) => 6,
                IBinOp::And => 7,
                IBinOp::Or => 8,
                IBinOp::Xor => 9,
                IBinOp::Shl => 10,
                IBinOp::Shr(Sx::S) => 11,
                IBinOp::Shr(Sx::U) => 12,
                IBinOp::Rotl => 13,
                IBinOp::Rotr => 14,
            };
            out.push(base + o);
        }
        FUn(w, op) => {
            let base: u8 = match w {
                Width::W32 => 0x8b,
                Width::W64 => 0x99,
            };
            let o: u8 = match op {
                FUnOp::Abs => 0,
                FUnOp::Neg => 1,
                FUnOp::Ceil => 2,
                FUnOp::Floor => 3,
                FUnOp::Trunc => 4,
                FUnOp::Nearest => 5,
                FUnOp::Sqrt => 6,
            };
            out.push(base + o);
        }
        FBin(w, op) => {
            let base: u8 = match w {
                Width::W32 => 0x92,
                Width::W64 => 0xa0,
            };
            let o: u8 = match op {
                FBinOp::Add => 0,
                FBinOp::Sub => 1,
                FBinOp::Mul => 2,
                FBinOp::Div => 3,
                FBinOp::Min => 4,
                FBinOp::Max => 5,
                FBinOp::Copysign => 6,
            };
            out.push(base + o);
        }
        I32WrapI64 => out.push(0xa7),
        ITruncF(iw, fw, sx) => {
            let op: u8 = match (iw, fw, sx) {
                (Width::W32, Width::W32, Sx::S) => 0xa8,
                (Width::W32, Width::W32, Sx::U) => 0xa9,
                (Width::W32, Width::W64, Sx::S) => 0xaa,
                (Width::W32, Width::W64, Sx::U) => 0xab,
                (Width::W64, Width::W32, Sx::S) => 0xae,
                (Width::W64, Width::W32, Sx::U) => 0xaf,
                (Width::W64, Width::W64, Sx::S) => 0xb0,
                (Width::W64, Width::W64, Sx::U) => 0xb1,
            };
            out.push(op);
        }
        I64ExtendI32(sx) => out.push(match sx {
            Sx::S => 0xac,
            Sx::U => 0xad,
        }),
        FConvertI(fw, iw, sx) => {
            let op: u8 = match (fw, iw, sx) {
                (Width::W32, Width::W32, Sx::S) => 0xb2,
                (Width::W32, Width::W32, Sx::U) => 0xb3,
                (Width::W32, Width::W64, Sx::S) => 0xb4,
                (Width::W32, Width::W64, Sx::U) => 0xb5,
                (Width::W64, Width::W32, Sx::S) => 0xb7,
                (Width::W64, Width::W32, Sx::U) => 0xb8,
                (Width::W64, Width::W64, Sx::S) => 0xb9,
                (Width::W64, Width::W64, Sx::U) => 0xba,
            };
            out.push(op);
        }
        F32DemoteF64 => out.push(0xb6),
        F64PromoteF32 => out.push(0xbb),
        IReinterpretF(w) => out.push(match w {
            Width::W32 => 0xbc,
            Width::W64 => 0xbd,
        }),
        FReinterpretI(w) => out.push(match w {
            Width::W32 => 0xbe,
            Width::W64 => 0xbf,
        }),
    }
}

/// Encodes a module to the standard binary format.
pub fn encode_module(m: &Module) -> Vec<u8> {
    let mut out = vec![0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00];

    // Type section (1).
    let mut sec = Vec::new();
    if !m.types.is_empty() {
        uleb(m.types.len() as u64, &mut sec);
    }
    for t in &m.types {
        sec.push(0x60);
        uleb(t.params.len() as u64, &mut sec);
        for p in &t.params {
            sec.push(valtype(*p));
        }
        uleb(t.results.len() as u64, &mut sec);
        for r in &t.results {
            sec.push(valtype(*r));
        }
    }
    section(1, sec, &mut out);

    // Import section (2).
    if !m.imports.is_empty() {
        let mut sec = Vec::new();
        uleb(m.imports.len() as u64, &mut sec);
        for im in &m.imports {
            name(&im.module, &mut sec);
            name(&im.name, &mut sec);
            match im.kind {
                ImportKind::Func(t) => {
                    sec.push(0x00);
                    uleb(t as u64, &mut sec);
                }
                ImportKind::Table(min) => {
                    sec.push(0x01);
                    sec.push(0x70);
                    sec.push(0x00);
                    uleb(min as u64, &mut sec);
                }
                ImportKind::Memory(min) => {
                    sec.push(0x02);
                    sec.push(0x00);
                    uleb(min as u64, &mut sec);
                }
                ImportKind::Global(t, mu) => {
                    sec.push(0x03);
                    sec.push(valtype(t));
                    sec.push(mu as u8);
                }
            }
        }
        section(2, sec, &mut out);
    }

    // Function section (3).
    if !m.funcs.is_empty() {
        let mut sec = Vec::new();
        uleb(m.funcs.len() as u64, &mut sec);
        for f in &m.funcs {
            uleb(f.type_idx as u64, &mut sec);
        }
        section(3, sec, &mut out);
    }

    // Table section (4).
    if let Some(min) = m.table {
        let mut sec = Vec::new();
        uleb(1, &mut sec);
        sec.push(0x70);
        sec.push(0x00);
        uleb(min as u64, &mut sec);
        section(4, sec, &mut out);
    }

    // Memory section (5).
    if let Some(pages) = m.memory {
        let mut sec = Vec::new();
        uleb(1, &mut sec);
        sec.push(0x00);
        uleb(pages as u64, &mut sec);
        section(5, sec, &mut out);
    }

    // Global section (6).
    if !m.globals.is_empty() {
        let mut sec = Vec::new();
        uleb(m.globals.len() as u64, &mut sec);
        for g in &m.globals {
            sec.push(valtype(g.ty));
            sec.push(g.mutable as u8);
            instr(&g.init, &mut sec);
            sec.push(0x0b);
        }
        section(6, sec, &mut out);
    }

    // Export section (7).
    if !m.exports.is_empty() {
        let mut sec = Vec::new();
        uleb(m.exports.len() as u64, &mut sec);
        for ex in &m.exports {
            name(&ex.name, &mut sec);
            match ex.kind {
                ExportKind::Func(i) => {
                    sec.push(0x00);
                    uleb(i as u64, &mut sec);
                }
                ExportKind::Table(i) => {
                    sec.push(0x01);
                    uleb(i as u64, &mut sec);
                }
                ExportKind::Memory(i) => {
                    sec.push(0x02);
                    uleb(i as u64, &mut sec);
                }
                ExportKind::Global(i) => {
                    sec.push(0x03);
                    uleb(i as u64, &mut sec);
                }
            }
        }
        section(7, sec, &mut out);
    }

    // Start section (8).
    if let Some(s) = m.start {
        let mut sec = Vec::new();
        uleb(s as u64, &mut sec);
        section(8, sec, &mut out);
    }

    // Element section (9).
    if !m.elems.is_empty() {
        let mut sec = Vec::new();
        uleb(m.elems.len() as u64, &mut sec);
        for el in &m.elems {
            uleb(0, &mut sec); // table 0, active
            sec.push(0x41);
            sleb(el.offset as i64, &mut sec);
            sec.push(0x0b);
            uleb(el.funcs.len() as u64, &mut sec);
            for f in &el.funcs {
                uleb(*f as u64, &mut sec);
            }
        }
        section(9, sec, &mut out);
    }

    // Code section (10).
    if !m.funcs.is_empty() {
        let mut sec = Vec::new();
        uleb(m.funcs.len() as u64, &mut sec);
        for f in &m.funcs {
            let mut body = Vec::new();
            // Compress locals into (count, type) runs.
            let mut runs: Vec<(u32, ValType)> = Vec::new();
            for l in &f.locals {
                match runs.last_mut() {
                    Some((n, t)) if *t == *l => *n += 1,
                    _ => runs.push((1, *l)),
                }
            }
            uleb(runs.len() as u64, &mut body);
            for (n, t) in runs {
                uleb(n as u64, &mut body);
                body.push(valtype(t));
            }
            for e in &f.body {
                instr(e, &mut body);
            }
            body.push(0x0b);
            uleb(body.len() as u64, &mut sec);
            sec.extend(body);
        }
        section(10, sec, &mut out);
    }

    // Data section (11).
    if !m.data.is_empty() {
        let mut sec = Vec::new();
        uleb(m.data.len() as u64, &mut sec);
        for d in &m.data {
            uleb(0, &mut sec);
            sec.push(0x41);
            sleb(d.offset as i64, &mut sec);
            sec.push(0x0b);
            uleb(d.bytes.len() as u64, &mut sec);
            sec.extend_from_slice(&d.bytes);
        }
        section(11, sec, &mut out);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leb_encoding() {
        let mut out = Vec::new();
        uleb(624485, &mut out);
        assert_eq!(out, vec![0xe5, 0x8e, 0x26]);
        let mut out = Vec::new();
        sleb(-123456, &mut out);
        assert_eq!(out, vec![0xc0, 0xbb, 0x78]);
        let mut out = Vec::new();
        sleb(0, &mut out);
        assert_eq!(out, vec![0x00]);
    }

    #[test]
    fn magic_header() {
        let m = Module::default();
        let bytes = encode_module(&m);
        assert_eq!(
            &bytes[..8],
            &[0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00]
        );
        assert_eq!(bytes.len(), 8, "empty module is just the header");
    }

    #[test]
    fn golden_answer_module() {
        // (module (func (result i32) i32.const 42) (export "a" (func 0)))
        let mut m = Module::default();
        let t = m.intern_type(FuncType {
            params: vec![],
            results: vec![ValType::I32],
        });
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![],
            body: vec![WInstr::I32Const(42)],
        });
        m.exports.push(Export {
            name: "a".into(),
            kind: ExportKind::Func(0),
        });
        let bytes = encode_module(&m);
        let expect: Vec<u8> = vec![
            0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00, // header
            0x01, 0x05, 0x01, 0x60, 0x00, 0x01, 0x7f, // type section
            0x03, 0x02, 0x01, 0x00, // function section
            0x07, 0x05, 0x01, 0x01, b'a', 0x00, 0x00, // export section
            0x0a, 0x06, 0x01, 0x04, 0x00, 0x41, 0x2a, 0x0b, // code section
        ];
        assert_eq!(bytes, expect);
    }

    #[test]
    fn locals_are_run_length_encoded() {
        let mut m = Module::default();
        let t = m.intern_type(FuncType::default());
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![ValType::I32, ValType::I32, ValType::I64],
            body: vec![],
        });
        let bytes = encode_module(&m);
        // Code body: 2 runs: (2, i32) (1, i64).
        let needle = [0x02, 0x02, 0x7f, 0x01, 0x7e];
        assert!(
            bytes.windows(needle.len()).any(|w| w == needle),
            "{bytes:x?}"
        );
    }
}
