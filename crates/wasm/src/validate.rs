//! The WebAssembly validator (spec §3, algorithmic formulation from the
//! appendix of the Wasm paper), extended with multi-value block types.

use std::fmt;

use crate::ast::*;

/// A validation error with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError(pub String);

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wasm validation error: {}", self.0)
    }
}

impl std::error::Error for ValidationError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ValidationError> {
    Err(ValidationError(msg.into()))
}

/// An operand-stack entry: a known type or the polymorphic unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    T(ValType),
    Unknown,
}

struct Ctrl {
    /// Types a branch to this label expects.
    label_types: Vec<ValType>,
    /// Types the block leaves on the stack.
    end_types: Vec<ValType>,
    /// Stack height at entry.
    height: usize,
    unreachable: bool,
}

struct Validator<'a> {
    module: &'a Module,
    locals: Vec<ValType>,
    ops: Vec<Op>,
    ctrls: Vec<Ctrl>,
    /// Global types: (type, mutable), imports first.
    globals: Vec<(ValType, bool)>,
    has_memory: bool,
    has_table: bool,
}

impl<'a> Validator<'a> {
    fn push(&mut self, t: ValType) {
        self.ops.push(Op::T(t));
    }

    fn pop_any(&mut self) -> Result<Op, ValidationError> {
        let frame = self.ctrls.last().expect("frame");
        if self.ops.len() == frame.height {
            if frame.unreachable {
                return Ok(Op::Unknown);
            }
            return err("stack underflow");
        }
        Ok(self.ops.pop().expect("nonempty"))
    }

    fn pop(&mut self, expect: ValType) -> Result<(), ValidationError> {
        match self.pop_any()? {
            Op::T(t) if t == expect => Ok(()),
            Op::T(t) => err(format!("expected {expect}, found {t}")),
            Op::Unknown => Ok(()),
        }
    }

    fn pop_many(&mut self, ts: &[ValType]) -> Result<(), ValidationError> {
        for t in ts.iter().rev() {
            self.pop(*t)?;
        }
        Ok(())
    }

    fn push_many(&mut self, ts: &[ValType]) {
        for t in ts {
            self.push(*t);
        }
    }

    fn push_ctrl(&mut self, label: Vec<ValType>, end: Vec<ValType>) {
        self.ctrls.push(Ctrl {
            label_types: label,
            end_types: end,
            height: self.ops.len(),
            unreachable: false,
        });
    }

    fn pop_ctrl(&mut self) -> Result<Vec<ValType>, ValidationError> {
        let end = self.ctrls.last().expect("frame").end_types.clone();
        let height = self.ctrls.last().expect("frame").height;
        self.pop_many(&end)?;
        if self.ops.len() != height {
            return err("values remaining at end of block");
        }
        self.ctrls.pop();
        Ok(end)
    }

    fn set_unreachable(&mut self) {
        let frame = self.ctrls.last_mut().expect("frame");
        self.ops.truncate(frame.height);
        frame.unreachable = true;
    }

    fn label_types(&self, l: u32) -> Result<Vec<ValType>, ValidationError> {
        let n = self.ctrls.len();
        if (l as usize) >= n {
            return err(format!("unknown label {l}"));
        }
        Ok(self.ctrls[n - 1 - l as usize].label_types.clone())
    }

    fn block_type(&self, bt: &BlockType) -> Result<FuncType, ValidationError> {
        Ok(match bt {
            BlockType::Empty => FuncType::default(),
            BlockType::Value(t) => FuncType {
                params: vec![],
                results: vec![*t],
            },
            BlockType::Func(i) => self
                .module
                .types
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| ValidationError(format!("unknown type {i}")))?,
        })
    }

    fn instr(&mut self, e: &WInstr) -> Result<(), ValidationError> {
        use ValType::*;
        use WInstr::*;
        match e {
            Unreachable => self.set_unreachable(),
            Nop => {}
            Block(bt, body) => {
                let ft = self.block_type(bt)?;
                self.pop_many(&ft.params)?;
                self.push_ctrl(ft.results.clone(), ft.results.clone());
                self.push_many(&ft.params);
                for i in body {
                    self.instr(i)?;
                }
                let end = self.pop_ctrl()?;
                self.push_many(&end);
            }
            Loop(bt, body) => {
                let ft = self.block_type(bt)?;
                self.pop_many(&ft.params)?;
                self.push_ctrl(ft.params.clone(), ft.results.clone());
                self.push_many(&ft.params);
                for i in body {
                    self.instr(i)?;
                }
                let end = self.pop_ctrl()?;
                self.push_many(&end);
            }
            If(bt, then_b, else_b) => {
                self.pop(I32)?;
                let ft = self.block_type(bt)?;
                self.pop_many(&ft.params)?;
                self.push_ctrl(ft.results.clone(), ft.results.clone());
                self.push_many(&ft.params);
                for i in then_b {
                    self.instr(i)?;
                }
                self.pop_ctrl()?;
                self.push_ctrl(ft.results.clone(), ft.results.clone());
                self.push_many(&ft.params);
                for i in else_b {
                    self.instr(i)?;
                }
                let end = self.pop_ctrl()?;
                self.push_many(&end);
            }
            Br(l) => {
                let ts = self.label_types(*l)?;
                self.pop_many(&ts)?;
                self.set_unreachable();
            }
            BrIf(l) => {
                self.pop(I32)?;
                let ts = self.label_types(*l)?;
                self.pop_many(&ts)?;
                self.push_many(&ts);
            }
            BrTable(ls, d) => {
                self.pop(I32)?;
                let dts = self.label_types(*d)?;
                for l in ls {
                    let ts = self.label_types(*l)?;
                    if ts != dts {
                        return err("br_table target type mismatch");
                    }
                }
                self.pop_many(&dts)?;
                self.set_unreachable();
            }
            Return => {
                let rt = self.ctrls[0].end_types.clone();
                self.pop_many(&rt)?;
                self.set_unreachable();
            }
            Call(f) => {
                let ft = self
                    .module
                    .func_type(*f)
                    .cloned()
                    .ok_or_else(|| ValidationError(format!("unknown function {f}")))?;
                self.pop_many(&ft.params)?;
                self.push_many(&ft.results);
            }
            CallIndirect(ti) => {
                if !self.has_table {
                    return err("call_indirect without a table");
                }
                let ft = self
                    .module
                    .types
                    .get(*ti as usize)
                    .cloned()
                    .ok_or_else(|| ValidationError(format!("unknown type {ti}")))?;
                self.pop(I32)?;
                self.pop_many(&ft.params)?;
                self.push_many(&ft.results);
            }
            Drop => {
                self.pop_any()?;
            }
            Select => {
                self.pop(I32)?;
                let a = self.pop_any()?;
                let b = self.pop_any()?;
                match (a, b) {
                    (Op::T(x), Op::T(y)) if x != y => return err("select type mismatch"),
                    (Op::T(x), _) | (_, Op::T(x)) => self.push(x),
                    (Op::Unknown, Op::Unknown) => self.ops.push(Op::Unknown),
                }
            }
            LocalGet(i) => {
                let t = *self
                    .locals
                    .get(*i as usize)
                    .ok_or_else(|| ValidationError(format!("unknown local {i}")))?;
                self.push(t);
            }
            LocalSet(i) => {
                let t = *self
                    .locals
                    .get(*i as usize)
                    .ok_or_else(|| ValidationError(format!("unknown local {i}")))?;
                self.pop(t)?;
            }
            LocalTee(i) => {
                let t = *self
                    .locals
                    .get(*i as usize)
                    .ok_or_else(|| ValidationError(format!("unknown local {i}")))?;
                self.pop(t)?;
                self.push(t);
            }
            GlobalGet(i) => {
                let (t, _) = *self
                    .globals
                    .get(*i as usize)
                    .ok_or_else(|| ValidationError(format!("unknown global {i}")))?;
                self.push(t);
            }
            GlobalSet(i) => {
                let (t, m) = *self
                    .globals
                    .get(*i as usize)
                    .ok_or_else(|| ValidationError(format!("unknown global {i}")))?;
                if !m {
                    return err(format!("global {i} is immutable"));
                }
                self.pop(t)?;
            }
            Load(t, _) => {
                if !self.has_memory {
                    return err("load without a memory");
                }
                self.pop(I32)?;
                self.push(*t);
            }
            Store(t, _) => {
                if !self.has_memory {
                    return err("store without a memory");
                }
                self.pop(*t)?;
                self.pop(I32)?;
            }
            Load8U(_) => {
                if !self.has_memory {
                    return err("load without a memory");
                }
                self.pop(I32)?;
                self.push(I32);
            }
            Store8(_) => {
                if !self.has_memory {
                    return err("store without a memory");
                }
                self.pop(I32)?;
                self.pop(I32)?;
            }
            MemorySize => {
                if !self.has_memory {
                    return err("memory.size without a memory");
                }
                self.push(I32);
            }
            MemoryGrow => {
                if !self.has_memory {
                    return err("memory.grow without a memory");
                }
                self.pop(I32)?;
                self.push(I32);
            }
            I32Const(_) => self.push(I32),
            I64Const(_) => self.push(I64),
            F32Const(_) => self.push(F32),
            F64Const(_) => self.push(F64),
            IUn(w, _) | ITest(w) => {
                let t = int_ty(*w);
                self.pop(t)?;
                self.push(if matches!(e, ITest(_)) { I32 } else { t });
            }
            IBin(w, _) => {
                let t = int_ty(*w);
                self.pop(t)?;
                self.pop(t)?;
                self.push(t);
            }
            IRel(w, _) => {
                let t = int_ty(*w);
                self.pop(t)?;
                self.pop(t)?;
                self.push(I32);
            }
            FUn(w, _) => {
                let t = float_ty(*w);
                self.pop(t)?;
                self.push(t);
            }
            FBin(w, _) => {
                let t = float_ty(*w);
                self.pop(t)?;
                self.pop(t)?;
                self.push(t);
            }
            FRel(w, _) => {
                let t = float_ty(*w);
                self.pop(t)?;
                self.pop(t)?;
                self.push(I32);
            }
            I32WrapI64 => {
                self.pop(I64)?;
                self.push(I32);
            }
            I64ExtendI32(_) => {
                self.pop(I32)?;
                self.push(I64);
            }
            ITruncF(iw, fw, _) => {
                self.pop(float_ty(*fw))?;
                self.push(int_ty(*iw));
            }
            FConvertI(fw, iw, _) => {
                self.pop(int_ty(*iw))?;
                self.push(float_ty(*fw));
            }
            F32DemoteF64 => {
                self.pop(F64)?;
                self.push(F32);
            }
            F64PromoteF32 => {
                self.pop(F32)?;
                self.push(F64);
            }
            IReinterpretF(w) => {
                self.pop(float_ty(*w))?;
                self.push(int_ty(*w));
            }
            FReinterpretI(w) => {
                self.pop(int_ty(*w))?;
                self.push(float_ty(*w));
            }
        }
        Ok(())
    }
}

fn int_ty(w: Width) -> ValType {
    match w {
        Width::W32 => ValType::I32,
        Width::W64 => ValType::I64,
    }
}

fn float_ty(w: Width) -> ValType {
    match w {
        Width::W32 => ValType::F32,
        Width::W64 => ValType::F64,
    }
}

/// Validates a whole module.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found.
pub fn validate_module(m: &Module) -> Result<(), ValidationError> {
    // Global index space: imports first.
    let mut globals: Vec<(ValType, bool)> = Vec::new();
    let mut has_memory = m.memory.is_some();
    let mut has_table = m.table.is_some();
    for im in &m.imports {
        match im.kind {
            ImportKind::Global(t, mu) => globals.push((t, mu)),
            ImportKind::Memory(_) => has_memory = true,
            ImportKind::Table(_) => has_table = true,
            ImportKind::Func(ti) => {
                if m.types.get(ti as usize).is_none() {
                    return err(format!(
                        "import {}.{}: unknown type {ti}",
                        im.module, im.name
                    ));
                }
            }
        }
    }
    for g in &m.globals {
        let ok = matches!(
            (&g.init, g.ty),
            (WInstr::I32Const(_), ValType::I32)
                | (WInstr::I64Const(_), ValType::I64)
                | (WInstr::F32Const(_), ValType::F32)
                | (WInstr::F64Const(_), ValType::F64)
        );
        if !ok {
            return err("global initialiser must be a constant of the declared type");
        }
        globals.push((g.ty, g.mutable));
    }

    let n_imported = m.num_func_imports() as u32;
    for (fi, f) in m.funcs.iter().enumerate() {
        let ft = m
            .types
            .get(f.type_idx as usize)
            .ok_or_else(|| ValidationError(format!("function {fi}: unknown type")))?;
        let mut locals = ft.params.clone();
        locals.extend(&f.locals);
        let mut v = Validator {
            module: m,
            locals,
            ops: Vec::new(),
            ctrls: Vec::new(),
            globals: globals.clone(),
            has_memory,
            has_table,
        };
        v.push_ctrl(ft.results.clone(), ft.results.clone());
        for e in &f.body {
            v.instr(e)
                .map_err(|ValidationError(msg)| ValidationError(format!("function {fi}: {msg}")))?;
        }
        v.pop_ctrl()
            .map_err(|ValidationError(msg)| ValidationError(format!("function {fi}: {msg}")))?;
    }

    for ex in &m.exports {
        let ok = match ex.kind {
            ExportKind::Func(i) => m.func_type(i).is_some(),
            ExportKind::Global(i) => (i as usize) < globals.len(),
            ExportKind::Memory(_) => has_memory,
            ExportKind::Table(_) => has_table,
        };
        if !ok {
            return err(format!("export {}: bad index", ex.name));
        }
    }
    for el in &m.elems {
        if !has_table {
            return err("element segment without a table");
        }
        for &f in &el.funcs {
            if m.func_type(f).is_none() {
                return err(format!("element segment references unknown function {f}"));
            }
        }
    }
    if !m.data.is_empty() && !has_memory {
        return err("data segment without a memory");
    }
    if let Some(s) = m.start {
        let ft = m
            .func_type(s)
            .ok_or_else(|| ValidationError(format!("start function {s} unknown")))?;
        if !ft.params.is_empty() || !ft.results.is_empty() {
            return err("start function must have type [] → []");
        }
    }
    let _ = n_imported;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module_with(body: Vec<WInstr>, results: Vec<ValType>) -> Module {
        Module {
            types: vec![FuncType {
                params: vec![],
                results,
            }],
            funcs: vec![FuncDef {
                type_idx: 0,
                locals: vec![],
                body,
            }],
            ..Module::default()
        }
    }

    #[test]
    fn trivial_function_validates() {
        validate_module(&module_with(vec![WInstr::I32Const(1)], vec![ValType::I32])).unwrap();
    }

    #[test]
    fn type_mismatch_rejected() {
        let m = module_with(vec![WInstr::I64Const(1)], vec![ValType::I32]);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn stack_underflow_rejected() {
        let m = module_with(
            vec![WInstr::IBin(Width::W32, IBinOp::Add)],
            vec![ValType::I32],
        );
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn leftover_values_rejected() {
        let m = module_with(
            vec![WInstr::I32Const(1), WInstr::I32Const(2)],
            vec![ValType::I32],
        );
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn multi_value_block() {
        // block (result i32 i32) … end — the multi-value extension.
        let mut m = Module::default();
        let bt = m.intern_type(FuncType {
            params: vec![],
            results: vec![ValType::I32; 2],
        });
        let ft = m.intern_type(FuncType {
            params: vec![],
            results: vec![ValType::I32],
        });
        m.funcs.push(FuncDef {
            type_idx: ft,
            locals: vec![],
            body: vec![
                WInstr::Block(
                    BlockType::Func(bt),
                    vec![WInstr::I32Const(1), WInstr::I32Const(2)],
                ),
                WInstr::IBin(Width::W32, IBinOp::Add),
            ],
        });
        validate_module(&m).unwrap();
    }

    #[test]
    fn unreachable_polymorphism() {
        let m = module_with(
            vec![WInstr::Unreachable, WInstr::IBin(Width::W32, IBinOp::Add)],
            vec![ValType::I32],
        );
        validate_module(&m).unwrap();
    }

    #[test]
    fn br_validation() {
        let m = module_with(
            vec![WInstr::Block(
                BlockType::Value(ValType::I32),
                vec![WInstr::I32Const(5), WInstr::Br(0)],
            )],
            vec![ValType::I32],
        );
        validate_module(&m).unwrap();
        // br to an unknown label.
        let m = module_with(vec![WInstr::Br(3)], vec![]);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn memory_instrs_require_memory() {
        let m = module_with(
            vec![WInstr::I32Const(0), WInstr::Load(ValType::I32, 0)],
            vec![ValType::I32],
        );
        assert!(validate_module(&m).is_err());
        let mut m2 = module_with(
            vec![WInstr::I32Const(0), WInstr::Load(ValType::I32, 0)],
            vec![ValType::I32],
        );
        m2.memory = Some(1);
        validate_module(&m2).unwrap();
    }

    #[test]
    fn immutable_global_set_rejected() {
        let mut m = module_with(vec![WInstr::I32Const(1), WInstr::GlobalSet(0)], vec![]);
        m.globals.push(GlobalDef {
            ty: ValType::I32,
            mutable: false,
            init: WInstr::I32Const(0),
        });
        assert!(validate_module(&m).is_err());
        let mut m2 = module_with(vec![WInstr::I32Const(1), WInstr::GlobalSet(0)], vec![]);
        m2.globals.push(GlobalDef {
            ty: ValType::I32,
            mutable: true,
            init: WInstr::I32Const(0),
        });
        validate_module(&m2).unwrap();
    }

    #[test]
    fn loop_label_takes_params() {
        // A loop's label expects its params, not its results.
        let mut m = Module::default();
        let bt = m.intern_type(FuncType {
            params: vec![ValType::I32],
            results: vec![ValType::I32],
        });
        let ft = m.intern_type(FuncType {
            params: vec![],
            results: vec![ValType::I32],
        });
        m.funcs.push(FuncDef {
            type_idx: ft,
            locals: vec![],
            body: vec![
                WInstr::I32Const(0),
                WInstr::Loop(
                    BlockType::Func(bt),
                    vec![
                        WInstr::I32Const(1),
                        WInstr::IBin(Width::W32, IBinOp::Add),
                        // Feed the param back and conditionally continue.
                        WInstr::LocalGet(0),
                        WInstr::BrIf(0),
                    ],
                ),
            ],
        });
        m.funcs[0].locals = vec![];
        // local.get 0 has no local — expect failure, then fix it.
        assert!(validate_module(&m).is_err());
        m.funcs[0].locals = vec![ValType::I32];
        validate_module(&m).unwrap();
    }
}
