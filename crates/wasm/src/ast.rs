//! WebAssembly 1.0 (+ multi-value) abstract syntax.

use std::fmt;

/// A Wasm value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValType::I32 => write!(f, "i32"),
            ValType::I64 => write!(f, "i64"),
            ValType::F32 => write!(f, "f32"),
            ValType::F64 => write!(f, "f64"),
        }
    }
}

/// A function type (multi-value: any number of results).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types.
    pub params: Vec<ValType>,
    /// Result types.
    pub results: Vec<ValType>,
}

/// A block type: either inline (at most one result, Wasm 1.0 style) or a
/// reference to a declared function type (multi-value blocks).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BlockType {
    /// `[] → []`.
    Empty,
    /// `[] → [t]`.
    Value(ValType),
    /// A type-section index (multi-value extension).
    Func(u32),
}

/// Signedness annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sx {
    /// Signed.
    S,
    /// Unsigned.
    U,
}

/// Integer binary operators (width-generic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IBinOp {
    Add,
    Sub,
    Mul,
    Div(Sx),
    Rem(Sx),
    And,
    Or,
    Xor,
    Shl,
    Shr(Sx),
    Rotl,
    Rotr,
}

/// Integer relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IRelOp {
    Eq,
    Ne,
    Lt(Sx),
    Gt(Sx),
    Le(Sx),
    Ge(Sx),
}

/// Integer unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IUnOp {
    Clz,
    Ctz,
    Popcnt,
}

/// Float binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Copysign,
}

/// Float relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FRelOp {
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
}

/// Float unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FUnOp {
    Abs,
    Neg,
    Sqrt,
    Ceil,
    Floor,
    Trunc,
    Nearest,
}

/// Integer width selector for width-generic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 32-bit.
    W32,
    /// 64-bit.
    W64,
}

/// A WebAssembly instruction (the subset of Wasm 1.0 + multi-value needed
/// as a complete compilation target: all numeric, parametric, variable,
/// memory, and control instructions).
#[derive(Debug, Clone, PartialEq)]
pub enum WInstr {
    /// `unreachable`.
    Unreachable,
    /// `nop`.
    Nop,
    /// `block bt instr* end`.
    Block(BlockType, Vec<WInstr>),
    /// `loop bt instr* end`.
    Loop(BlockType, Vec<WInstr>),
    /// `if bt instr* else instr* end`.
    If(BlockType, Vec<WInstr>, Vec<WInstr>),
    /// `br l`.
    Br(u32),
    /// `br_if l`.
    BrIf(u32),
    /// `br_table l* l`.
    BrTable(Vec<u32>, u32),
    /// `return`.
    Return,
    /// `call f`.
    Call(u32),
    /// `call_indirect (type t)`.
    CallIndirect(u32),
    /// `drop`.
    Drop,
    /// `select`.
    Select,
    /// `local.get i`.
    LocalGet(u32),
    /// `local.set i`.
    LocalSet(u32),
    /// `local.tee i`.
    LocalTee(u32),
    /// `global.get i`.
    GlobalGet(u32),
    /// `global.set i`.
    GlobalSet(u32),
    /// `iNN.load` / `fNN.load` with static offset (align is immaterial to
    /// semantics and fixed at natural alignment when encoding).
    Load(ValType, u32),
    /// `iNN.store` / `fNN.store` with static offset.
    Store(ValType, u32),
    /// `i32.load8_u offset` — used for byte-granular runtime code.
    Load8U(u32),
    /// `i32.store8 offset`.
    Store8(u32),
    /// `memory.size`.
    MemorySize,
    /// `memory.grow`.
    MemoryGrow,
    /// `i32.const`.
    I32Const(i32),
    /// `i64.const`.
    I64Const(i64),
    /// `f32.const`.
    F32Const(f32),
    /// `f64.const`.
    F64Const(f64),
    /// Integer unary operator.
    IUn(Width, IUnOp),
    /// Integer binary operator.
    IBin(Width, IBinOp),
    /// `iNN.eqz`.
    ITest(Width),
    /// Integer comparison.
    IRel(Width, IRelOp),
    /// Float unary operator.
    FUn(Width, FUnOp),
    /// Float binary operator.
    FBin(Width, FBinOp),
    /// Float comparison.
    FRel(Width, FRelOp),
    /// `i32.wrap_i64`.
    I32WrapI64,
    /// `i64.extend_i32_s` / `_u`.
    I64ExtendI32(Sx),
    /// `iNN.trunc_fMM_sx`.
    ITruncF(Width, Width, Sx),
    /// `fNN.convert_iMM_sx`.
    FConvertI(Width, Width, Sx),
    /// `f32.demote_f64`.
    F32DemoteF64,
    /// `f64.promote_f32`.
    F64PromoteF32,
    /// `iNN.reinterpret_fNN`.
    IReinterpretF(Width),
    /// `fNN.reinterpret_iNN`.
    FReinterpretI(Width),
}

/// A function definition: its type-section index, extra locals, body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FuncDef {
    /// Index into [`Module::types`].
    pub type_idx: u32,
    /// Extra local declarations (beyond parameters).
    pub locals: Vec<ValType>,
    /// The body (implicitly wrapped in a function-level block).
    pub body: Vec<WInstr>,
}

/// An import descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportKind {
    /// Function import with its type-section index.
    Func(u32),
    /// Global import: type and mutability.
    Global(ValType, bool),
    /// Memory import with minimum page count.
    Memory(u32),
    /// Table import with minimum size.
    Table(u32),
}

/// One import.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Providing module name.
    pub module: String,
    /// Export name within that module.
    pub name: String,
    /// What is imported.
    pub kind: ImportKind,
}

/// An export descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum ExportKind {
    /// Function export (index into the combined function index space).
    Func(u32),
    /// Global export.
    Global(u32),
    /// Memory export.
    Memory(u32),
    /// Table export.
    Table(u32),
}

/// One export.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    /// The export name.
    pub name: String,
    /// What is exported.
    pub kind: ExportKind,
}

/// A global definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// The value type.
    pub ty: ValType,
    /// Mutability.
    pub mutable: bool,
    /// Constant initialiser (one const instruction).
    pub init: WInstr,
}

/// An element segment (populates the table at instantiation).
#[derive(Debug, Clone, PartialEq)]
pub struct ElemSegment {
    /// Offset into the table.
    pub offset: u32,
    /// Function indices.
    pub funcs: Vec<u32>,
}

/// A data segment (populates memory at instantiation).
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Byte offset into memory.
    pub offset: u32,
    /// The bytes.
    pub bytes: Vec<u8>,
}

/// A WebAssembly module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// The type section.
    pub types: Vec<FuncType>,
    /// Imports (functions first in the function index space).
    pub imports: Vec<Import>,
    /// Defined functions.
    pub funcs: Vec<FuncDef>,
    /// Table minimum size (one table, Wasm 1.0), `None` = no table.
    pub table: Option<u32>,
    /// Memory minimum size in 64 KiB pages, `None` = no memory.
    pub memory: Option<u32>,
    /// Defined globals.
    pub globals: Vec<GlobalDef>,
    /// Exports.
    pub exports: Vec<Export>,
    /// Element segments.
    pub elems: Vec<ElemSegment>,
    /// Data segments.
    pub data: Vec<DataSegment>,
    /// Optional start function.
    pub start: Option<u32>,
}

impl Module {
    /// Number of imported functions (they precede defined ones in the
    /// function index space).
    pub fn num_func_imports(&self) -> usize {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Func(_)))
            .count()
    }

    /// The type of function `idx` in the combined index space.
    pub fn func_type(&self, idx: u32) -> Option<&FuncType> {
        let n = self.num_func_imports();
        let ti = if (idx as usize) < n {
            let mut seen = 0;
            let mut ty = None;
            for im in &self.imports {
                if let ImportKind::Func(t) = im.kind {
                    if seen == idx as usize {
                        ty = Some(t);
                        break;
                    }
                    seen += 1;
                }
            }
            ty?
        } else {
            self.funcs.get(idx as usize - n)?.type_idx
        };
        self.types.get(ti as usize)
    }

    /// Resolves a block type to its function type; `None` when a
    /// `BlockType::Func` index is out of range. (Export hook for the
    /// CFG construction in `richwasm-analyze`.)
    pub fn block_func_type(&self, bt: &BlockType) -> Option<FuncType> {
        Some(match bt {
            BlockType::Empty => FuncType::default(),
            BlockType::Value(t) => FuncType {
                params: vec![],
                results: vec![*t],
            },
            BlockType::Func(i) => self.types.get(*i as usize).cloned()?,
        })
    }

    /// Looks up an exported function's global index by name.
    pub fn export_func_index(&self, name: &str) -> Option<u32> {
        self.exports.iter().find_map(|e| match e.kind {
            ExportKind::Func(i) if e.name == name => Some(i),
            _ => None,
        })
    }

    /// Interns a function type, returning its index.
    pub fn intern_type(&mut self, ft: FuncType) -> u32 {
        if let Some(i) = self.types.iter().position(|t| *t == ft) {
            i as u32
        } else {
            self.types.push(ft);
            (self.types.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_type_lookup_spans_imports_and_defs() {
        let mut m = Module::default();
        let t0 = m.intern_type(FuncType {
            params: vec![ValType::I32],
            results: vec![],
        });
        let t1 = m.intern_type(FuncType {
            params: vec![],
            results: vec![ValType::I64],
        });
        assert_ne!(t0, t1);
        // Interning the same type is idempotent.
        assert_eq!(
            m.intern_type(FuncType {
                params: vec![ValType::I32],
                results: vec![]
            }),
            t0
        );
        m.imports.push(Import {
            module: "env".into(),
            name: "f".into(),
            kind: ImportKind::Func(t1),
        });
        m.funcs.push(FuncDef {
            type_idx: t0,
            locals: vec![],
            body: vec![],
        });
        assert_eq!(m.func_type(0).unwrap().results, vec![ValType::I64]);
        assert_eq!(m.func_type(1).unwrap().params, vec![ValType::I32]);
        assert!(m.func_type(2).is_none());
        assert_eq!(m.num_func_imports(), 1);
    }
}
