//! # richwasm-wasm
//!
//! A from-scratch **WebAssembly 1.0 + multi-value** substrate: abstract
//! syntax, validator, interpreter, and binary encoder.
//!
//! RichWasm (PLDI 2024, §6) compiles to "WebAssembly 1.0 with the
//! multi-value extension". This crate is the host for that output: the
//! lowered modules are validated by [`validate`], executed by [`exec`],
//! and can be serialised to the standard binary format by [`binary`].
//!
//! ## Quickstart
//!
//! ```
//! use richwasm_wasm::ast::*;
//! use richwasm_wasm::exec::WasmLinker;
//!
//! let m = Module {
//!     types: vec![FuncType { params: vec![], results: vec![ValType::I32] }],
//!     funcs: vec![FuncDef { type_idx: 0, locals: vec![], body: vec![WInstr::I32Const(42)] }],
//!     exports: vec![Export { name: "answer".into(), kind: ExportKind::Func(0) }],
//!     ..Module::default()
//! };
//! let mut linker = WasmLinker::new();
//! let idx = linker.instantiate("m", m).unwrap();
//! let out = linker.invoke(idx, "answer", &[]).unwrap();
//! assert_eq!(out, vec![richwasm_wasm::exec::Val::I32(42)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod binary;
pub mod compile;
pub mod decode;
pub mod exec;
pub mod text;
pub mod validate;
pub mod vm;

pub use ast::{Export, ExportKind, FuncDef, FuncType, Module, ValType, WInstr};
pub use compile::{compile_module, decode_compiled, encode_compiled, CompiledModule};
pub use decode::{decode_module, DecodeError, DecodeErrorKind};
pub use exec::{Val, WasmLinker};
pub use validate::validate_module;
