//! Decoder from the standard WebAssembly binary format (spec §5) back to
//! the [`crate::ast`] module representation.
//!
//! This is the inverse of [`crate::binary::encode_module`] and the trust
//! frontier of the substrate: bytes may come from disk caches or from
//! external producers, so the decoder assumes **nothing** about its
//! input. Every read is bounds-checked, every LEB128 integer must be
//! minimally encoded, section payloads must be consumed exactly,
//! module-structure indices must be in range, and control nesting is
//! depth-capped — any violation returns a structured [`DecodeError`]
//! carrying the byte offset, the section being parsed, and the specific
//! [`DecodeErrorKind`]. The decoder never panics, never overflows the
//! call stack, and never allocates proportionally to a length claim it
//! has not verified against the remaining input.
//!
//! Strictness (see `DESIGN.md` §9): the decoder accepts exactly the
//! canonical form the encoder emits, plus the spec-permitted variations
//! an external producer may use (a `max` bound in limits, which the AST
//! does not model and re-encoding drops; memory alignment hints below
//! natural alignment, which re-encoding normalises; custom sections —
//! including the `name` section — which are bounds-checked and skipped).
//! For bytes produced by [`crate::binary::encode_module`] the round trip
//! is exact: `encode(decode(bytes)) == bytes`.

use std::fmt;

use crate::ast::*;
use crate::binary::sleb;

/// Maximum `block`/`loop`/`if` nesting depth the decoder accepts. Deeper
/// input returns [`DecodeErrorKind::NestingTooDeep`] instead of
/// overflowing the recursive-descent call stack.
pub const MAX_NESTING: usize = 1_024;

/// Maximum number of declared locals per **module** (run-length counts
/// are summed *before* expansion and accumulated across every code body,
/// so neither one hostile count nor many small ones can force the
/// allocation they claim).
pub const MAX_LOCALS: usize = 1_000_000;

/// The section a decode failure arose in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Section {
    Header,
    Custom,
    Type,
    Import,
    Function,
    Table,
    Memory,
    Global,
    Export,
    Start,
    Element,
    Code,
    Data,
}

impl Section {
    fn from_id(id: u8) -> Option<Section> {
        Some(match id {
            0 => Section::Custom,
            1 => Section::Type,
            2 => Section::Import,
            3 => Section::Function,
            4 => Section::Table,
            5 => Section::Memory,
            6 => Section::Global,
            7 => Section::Export,
            8 => Section::Start,
            9 => Section::Element,
            10 => Section::Code,
            11 => Section::Data,
            _ => return None,
        })
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Section::Header => "header",
            Section::Custom => "custom",
            Section::Type => "type",
            Section::Import => "import",
            Section::Function => "function",
            Section::Table => "table",
            Section::Memory => "memory",
            Section::Global => "global",
            Section::Export => "export",
            Section::Start => "start",
            Section::Element => "element",
            Section::Code => "code",
            Section::Data => "data",
        })
    }
}

/// What specifically went wrong while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// The input ended before the current item was complete.
    UnexpectedEof,
    /// The first four bytes are not `\0asm`.
    BadMagic,
    /// The version field is not 1.
    BadVersion(u32),
    /// A LEB128 integer does not fit the declared bit width.
    LebOverflow,
    /// A LEB128 integer is not minimally encoded (the canonical form the
    /// encoder emits; overlong encodings are rejected outright).
    LebOverlong,
    /// A section's declared byte length disagrees with its content.
    SectionSize {
        /// Bytes the section header claimed.
        declared: u64,
        /// Bytes the section content actually consumed.
        consumed: u64,
    },
    /// A non-custom section appeared out of order or twice.
    SectionOrder(u8),
    /// An unknown section id.
    BadSectionId(u8),
    /// A count or length claims more items than the remaining bytes could
    /// possibly hold.
    CountTooLarge(u64),
    /// The function and code sections declare different counts.
    FuncCodeMismatch {
        /// Entries in the function section.
        funcs: u32,
        /// Entries in the code section.
        bodies: u32,
    },
    /// An unknown or unsupported opcode.
    BadOpcode(u8),
    /// An invalid value-type byte.
    BadValType(u8),
    /// An invalid block-type encoding.
    BadBlockType,
    /// An invalid import/export descriptor tag.
    BadKind(u8),
    /// An invalid limits flag, element type, or mutability byte.
    BadFlag(u8),
    /// A memory alignment hint above the access's natural alignment.
    BadAlignment(u32),
    /// A name is not valid UTF-8.
    BadUtf8,
    /// A constant expression was expected (global initialiser or segment
    /// offset) but something else was found.
    BadConstExpr,
    /// A module-structure index is out of range.
    IndexOutOfRange {
        /// What index space ("type", "function", "global", …).
        space: &'static str,
        /// The index found.
        index: u32,
        /// The size of the index space.
        limit: u32,
    },
    /// More than one table/memory declared (Wasm 1.0 allows at most one).
    MultipleTablesOrMemories,
    /// `block`/`loop`/`if` nesting exceeded [`MAX_NESTING`].
    NestingTooDeep,
    /// More locals declared than [`MAX_LOCALS`].
    TooManyLocals(u64),
}

impl fmt::Display for DecodeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeErrorKind::BadMagic => write!(f, "bad magic (expected \\0asm)"),
            DecodeErrorKind::BadVersion(v) => write!(f, "unsupported version {v} (expected 1)"),
            DecodeErrorKind::LebOverflow => write!(f, "LEB128 integer out of range"),
            DecodeErrorKind::LebOverlong => write!(f, "overlong (non-minimal) LEB128 encoding"),
            DecodeErrorKind::SectionSize { declared, consumed } => write!(
                f,
                "section size mismatch: header declared {declared} bytes, content used {consumed}"
            ),
            DecodeErrorKind::SectionOrder(id) => {
                write!(f, "section id {id} out of order or duplicated")
            }
            DecodeErrorKind::BadSectionId(id) => write!(f, "unknown section id {id}"),
            DecodeErrorKind::CountTooLarge(n) => {
                write!(f, "count {n} exceeds the remaining input")
            }
            DecodeErrorKind::FuncCodeMismatch { funcs, bodies } => write!(
                f,
                "function section declares {funcs} functions but code section has {bodies} bodies"
            ),
            DecodeErrorKind::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            DecodeErrorKind::BadValType(b) => write!(f, "invalid value type 0x{b:02x}"),
            DecodeErrorKind::BadBlockType => write!(f, "invalid block type"),
            DecodeErrorKind::BadKind(b) => write!(f, "invalid import/export kind 0x{b:02x}"),
            DecodeErrorKind::BadFlag(b) => write!(f, "invalid flag byte 0x{b:02x}"),
            DecodeErrorKind::BadAlignment(a) => {
                write!(f, "alignment 2^{a} above natural alignment")
            }
            DecodeErrorKind::BadUtf8 => write!(f, "name is not valid UTF-8"),
            DecodeErrorKind::BadConstExpr => write!(f, "expected a constant expression"),
            DecodeErrorKind::IndexOutOfRange {
                space,
                index,
                limit,
            } => {
                write!(f, "{space} index {index} out of range (limit {limit})")
            }
            DecodeErrorKind::MultipleTablesOrMemories => {
                write!(f, "at most one table and one memory are allowed")
            }
            DecodeErrorKind::NestingTooDeep => {
                write!(f, "control nesting deeper than {MAX_NESTING}")
            }
            DecodeErrorKind::TooManyLocals(n) => {
                write!(f, "{n} locals exceed the limit of {MAX_LOCALS}")
            }
        }
    }
}

/// A structured decode failure: where ([`DecodeError::offset`], byte
/// position in the input), in which [`DecodeError::section`], and what
/// ([`DecodeError::kind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
    /// The section being decoded, when one was entered.
    pub section: Option<Section>,
    /// The specific failure.
    pub kind: DecodeErrorKind,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at offset {}", self.offset)?;
        if let Some(s) = self.section {
            write!(f, " ({s} section)")?;
        }
        write!(f, ": {}", self.kind)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// The bounds-checked reader.

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: Option<Section>,
    /// Reusable buffer for the canonical-sLEB re-encode check.
    scratch: Vec<u8>,
}

type R<T> = Result<T, DecodeError>;

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader {
            bytes,
            pos: 0,
            section: None,
            scratch: Vec::with_capacity(10),
        }
    }

    fn fail<T>(&self, kind: DecodeErrorKind) -> R<T> {
        Err(DecodeError {
            offset: self.pos,
            section: self.section,
            kind,
        })
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn byte(&mut self) -> R<u8> {
        match self.bytes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.fail(DecodeErrorKind::UnexpectedEof),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn take(&mut self, n: usize) -> R<&'a [u8]> {
        if n > self.remaining() {
            return self.fail(DecodeErrorKind::UnexpectedEof);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Unsigned LEB128, at most `bits` wide, **minimally encoded** (the
    /// canonical form [`uleb`] emits; anything longer is rejected).
    fn uleb(&mut self, bits: u32) -> R<u64> {
        let max_bytes = (bits as usize).div_ceil(7);
        let mut value: u64 = 0;
        let mut shift = 0u32;
        let mut read = 0usize;
        loop {
            let b = self.byte()?;
            read += 1;
            if read > max_bytes {
                return self.fail(DecodeErrorKind::LebOverflow);
            }
            let payload = (b & 0x7f) as u64;
            // Bits that would fall outside the declared width.
            if shift + 7 > bits && (payload >> (bits - shift)) != 0 {
                return self.fail(DecodeErrorKind::LebOverflow);
            }
            value |= payload << shift;
            if b & 0x80 == 0 {
                // Minimality: a multi-byte encoding whose final byte is
                // zero carries no information in that byte.
                if read > 1 && b == 0 {
                    return self.fail(DecodeErrorKind::LebOverlong);
                }
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn u32_leb(&mut self) -> R<u32> {
        Ok(self.uleb(32)? as u32)
    }

    /// Signed LEB128, at most `bits` wide, canonically encoded: the
    /// decoded value must re-encode (via [`sleb`]) to exactly the bytes
    /// read, which rejects overlong forms *and* junk in the final byte's
    /// unused sign-extension bits in one check.
    fn sleb(&mut self, bits: u32) -> R<i64> {
        let max_bytes = (bits as usize).div_ceil(7);
        let start = self.pos;
        let mut value: i64 = 0;
        let mut shift = 0u32;
        let mut read = 0usize;
        loop {
            let b = self.byte()?;
            read += 1;
            if read > max_bytes {
                return self.fail(DecodeErrorKind::LebOverflow);
            }
            if shift < 64 {
                value |= ((b & 0x7f) as i64) << shift;
            }
            shift += 7;
            if b & 0x80 == 0 {
                // Sign-extend from the final payload bit.
                if shift < 64 && b & 0x40 != 0 {
                    value |= -1i64 << shift;
                }
                // Width check: the value must fit in `bits` as signed.
                if bits < 64 {
                    let min = -(1i64 << (bits - 1));
                    let max = (1i64 << (bits - 1)) - 1;
                    if value < min || value > max {
                        return self.fail(DecodeErrorKind::LebOverflow);
                    }
                }
                // Reuse one scratch buffer: this runs for every signed
                // constant on the admission hot path.
                self.scratch.clear();
                sleb(value, &mut self.scratch);
                if self.scratch.as_slice() != &self.bytes[start..self.pos] {
                    return self.fail(DecodeErrorKind::LebOverlong);
                }
                return Ok(value);
            }
        }
    }

    /// A count of items each of which takes ≥ 1 byte: bounded by the
    /// remaining input, so a hostile count can never drive allocation.
    fn count(&mut self) -> R<usize> {
        let n = self.u32_leb()? as u64;
        if n > self.remaining() as u64 {
            return self.fail(DecodeErrorKind::CountTooLarge(n));
        }
        Ok(n as usize)
    }

    fn name(&mut self) -> R<String> {
        let len = self.u32_leb()? as usize;
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => self.fail(DecodeErrorKind::BadUtf8),
        }
    }

    fn valtype(&mut self) -> R<ValType> {
        let b = self.byte()?;
        valtype_of(b).map_or_else(|| self.fail(DecodeErrorKind::BadValType(b)), Ok)
    }
}

fn valtype_of(b: u8) -> Option<ValType> {
    Some(match b {
        0x7f => ValType::I32,
        0x7e => ValType::I64,
        0x7d => ValType::F32,
        0x7c => ValType::F64,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Per-section decoding.

/// Decoder state shared across sections (index-space sizes for the
/// structural checks).
#[derive(Default)]
struct Decoder {
    module: Module,
    /// Types referenced by the function section, paired with bodies later.
    func_types: Vec<u32>,
    n_func_imports: u32,
    n_global_imports: u32,
    /// Tables/memories in the **combined** index space (imports first,
    /// then local definitions) — Wasm 1.0 allows at most one of each
    /// overall, and exports index into the combined space.
    n_tables: u32,
    n_memories: u32,
    /// Locals declared so far across *all* code bodies: the module-wide
    /// budget [`MAX_LOCALS`] bounds cumulative allocation, not just one
    /// function's.
    total_locals: u64,
}

impl Decoder {
    fn n_funcs(&self) -> u32 {
        self.n_func_imports + self.func_types.len() as u32
    }

    fn n_globals(&self) -> u32 {
        self.n_global_imports + self.module.globals.len() as u32
    }

    fn check_index(r: &Reader<'_>, space: &'static str, index: u32, limit: u32) -> R<()> {
        if index >= limit {
            return r.fail(DecodeErrorKind::IndexOutOfRange {
                space,
                index,
                limit,
            });
        }
        Ok(())
    }

    fn type_section(&mut self, r: &mut Reader<'_>) -> R<()> {
        let n = r.count()?;
        for _ in 0..n {
            let tag = r.byte()?;
            if tag != 0x60 {
                return r.fail(DecodeErrorKind::BadFlag(tag));
            }
            let np = r.count()?;
            let mut params = Vec::with_capacity(np);
            for _ in 0..np {
                params.push(r.valtype()?);
            }
            let nr = r.count()?;
            let mut results = Vec::with_capacity(nr);
            for _ in 0..nr {
                results.push(r.valtype()?);
            }
            self.module.types.push(FuncType { params, results });
        }
        Ok(())
    }

    fn limits_min(&mut self, r: &mut Reader<'_>) -> R<u32> {
        // The encoder emits flag 0x00 (min only); external producers may
        // declare a max (flag 0x01), which the AST does not model — the
        // bound is checked for sanity and dropped.
        let flag = r.byte()?;
        match flag {
            0x00 => r.u32_leb(),
            0x01 => {
                let min = r.u32_leb()?;
                let max = r.u32_leb()?;
                if max < min {
                    return r.fail(DecodeErrorKind::BadFlag(flag));
                }
                Ok(min)
            }
            other => r.fail(DecodeErrorKind::BadFlag(other)),
        }
    }

    fn tabletype(&mut self, r: &mut Reader<'_>) -> R<u32> {
        let et = r.byte()?;
        if et != 0x70 {
            return r.fail(DecodeErrorKind::BadFlag(et));
        }
        self.limits_min(r)
    }

    fn import_section(&mut self, r: &mut Reader<'_>) -> R<()> {
        let n = r.count()?;
        for _ in 0..n {
            let module = r.name()?;
            let name = r.name()?;
            let tag = r.byte()?;
            let kind = match tag {
                0x00 => {
                    let t = r.u32_leb()?;
                    Self::check_index(r, "type", t, self.module.types.len() as u32)?;
                    self.n_func_imports += 1;
                    ImportKind::Func(t)
                }
                0x01 => {
                    let min = self.tabletype(r)?;
                    if self.n_tables >= 1 {
                        return r.fail(DecodeErrorKind::MultipleTablesOrMemories);
                    }
                    self.n_tables += 1;
                    ImportKind::Table(min)
                }
                0x02 => {
                    let min = self.limits_min(r)?;
                    if self.n_memories >= 1 {
                        return r.fail(DecodeErrorKind::MultipleTablesOrMemories);
                    }
                    self.n_memories += 1;
                    ImportKind::Memory(min)
                }
                0x03 => {
                    let t = r.valtype()?;
                    let mu = r.byte()?;
                    if mu > 1 {
                        return r.fail(DecodeErrorKind::BadFlag(mu));
                    }
                    self.n_global_imports += 1;
                    ImportKind::Global(t, mu == 1)
                }
                other => return r.fail(DecodeErrorKind::BadKind(other)),
            };
            self.module.imports.push(Import { module, name, kind });
        }
        Ok(())
    }

    fn function_section(&mut self, r: &mut Reader<'_>) -> R<()> {
        let n = r.count()?;
        for _ in 0..n {
            let t = r.u32_leb()?;
            Self::check_index(r, "type", t, self.module.types.len() as u32)?;
            self.func_types.push(t);
        }
        Ok(())
    }

    fn table_section(&mut self, r: &mut Reader<'_>) -> R<()> {
        let n = r.count()?;
        // The combined (imports + locals) space holds at most one.
        if n as u32 + self.n_tables > 1 {
            return r.fail(DecodeErrorKind::MultipleTablesOrMemories);
        }
        if n == 1 {
            let min = self.tabletype(r)?;
            self.module.table = Some(min);
            self.n_tables += 1;
        }
        Ok(())
    }

    fn memory_section(&mut self, r: &mut Reader<'_>) -> R<()> {
        let n = r.count()?;
        if n as u32 + self.n_memories > 1 {
            return r.fail(DecodeErrorKind::MultipleTablesOrMemories);
        }
        if n == 1 {
            let min = self.limits_min(r)?;
            self.module.memory = Some(min);
            self.n_memories += 1;
        }
        Ok(())
    }

    /// One constant instruction (the only expression form the encoder
    /// emits for global initialisers), terminated by `end`.
    fn const_expr(&mut self, r: &mut Reader<'_>) -> R<WInstr> {
        let op = r.byte()?;
        let init = match op {
            0x41 => WInstr::I32Const(r.sleb(32)? as i32),
            0x42 => WInstr::I64Const(r.sleb(64)?),
            0x43 => WInstr::F32Const(f32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"))),
            0x44 => WInstr::F64Const(f64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"))),
            _ => return r.fail(DecodeErrorKind::BadConstExpr),
        };
        if r.byte()? != 0x0b {
            return r.fail(DecodeErrorKind::BadConstExpr);
        }
        Ok(init)
    }

    /// An `i32.const` offset expression for element/data segments. The
    /// encoder zero-extends `u32` offsets into the signed payload, so the
    /// accepted range is the full `0..=u32::MAX` rather than `s32`.
    fn offset_expr(&mut self, r: &mut Reader<'_>) -> R<u32> {
        if r.byte()? != 0x41 {
            return r.fail(DecodeErrorKind::BadConstExpr);
        }
        let v = r.sleb(33)?;
        if !(0..=u32::MAX as i64).contains(&v) {
            return r.fail(DecodeErrorKind::LebOverflow);
        }
        if r.byte()? != 0x0b {
            return r.fail(DecodeErrorKind::BadConstExpr);
        }
        Ok(v as u32)
    }

    fn global_section(&mut self, r: &mut Reader<'_>) -> R<()> {
        let n = r.count()?;
        for _ in 0..n {
            let ty = r.valtype()?;
            let mu = r.byte()?;
            if mu > 1 {
                return r.fail(DecodeErrorKind::BadFlag(mu));
            }
            let init = self.const_expr(r)?;
            self.module.globals.push(GlobalDef {
                ty,
                mutable: mu == 1,
                init,
            });
        }
        Ok(())
    }

    fn export_section(&mut self, r: &mut Reader<'_>) -> R<()> {
        let n = r.count()?;
        for _ in 0..n {
            let name = r.name()?;
            let tag = r.byte()?;
            let idx = r.u32_leb()?;
            let kind = match tag {
                0x00 => {
                    Self::check_index(r, "function", idx, self.n_funcs())?;
                    ExportKind::Func(idx)
                }
                0x01 => {
                    // The combined index space: an imported table counts.
                    Self::check_index(r, "table", idx, self.n_tables)?;
                    ExportKind::Table(idx)
                }
                0x02 => {
                    Self::check_index(r, "memory", idx, self.n_memories)?;
                    ExportKind::Memory(idx)
                }
                0x03 => {
                    Self::check_index(r, "global", idx, self.n_globals())?;
                    ExportKind::Global(idx)
                }
                other => return r.fail(DecodeErrorKind::BadKind(other)),
            };
            self.module.exports.push(Export { name, kind });
        }
        Ok(())
    }

    fn element_section(&mut self, r: &mut Reader<'_>) -> R<()> {
        let n = r.count()?;
        for _ in 0..n {
            let table = r.u32_leb()?;
            if table != 0 {
                return r.fail(DecodeErrorKind::IndexOutOfRange {
                    space: "table",
                    index: table,
                    limit: 1,
                });
            }
            let offset = self.offset_expr(r)?;
            let nf = r.count()?;
            let mut funcs = Vec::with_capacity(nf);
            for _ in 0..nf {
                let f = r.u32_leb()?;
                Self::check_index(r, "function", f, self.n_funcs())?;
                funcs.push(f);
            }
            self.module.elems.push(ElemSegment { offset, funcs });
        }
        Ok(())
    }

    fn code_section(&mut self, r: &mut Reader<'_>) -> R<()> {
        let n = r.count()?;
        if n != self.func_types.len() {
            return r.fail(DecodeErrorKind::FuncCodeMismatch {
                funcs: self.func_types.len() as u32,
                bodies: n as u32,
            });
        }
        for fi in 0..n {
            let size = r.u32_leb()? as usize;
            if size > r.remaining() {
                return r.fail(DecodeErrorKind::UnexpectedEof);
            }
            let body_end = r.pos + size;

            // Locals: run-length pairs, summed before expansion so a
            // hostile count cannot force a huge allocation. The budget is
            // module-wide: many small bodies must not multiply past what
            // one body is forbidden to claim.
            let nruns = r.count()?;
            let mut runs = Vec::with_capacity(nruns);
            let mut total: u64 = 0;
            for _ in 0..nruns {
                let count = r.u32_leb()?;
                let ty = r.valtype()?;
                total += count as u64;
                self.total_locals += count as u64;
                if self.total_locals > MAX_LOCALS as u64 {
                    return r.fail(DecodeErrorKind::TooManyLocals(self.total_locals));
                }
                runs.push((count, ty));
            }
            let mut locals = Vec::with_capacity(total as usize);
            for (count, ty) in runs {
                locals.extend(std::iter::repeat(ty).take(count as usize));
            }

            let body = self.expr(r)?;
            if r.pos != body_end {
                return r.fail(DecodeErrorKind::SectionSize {
                    declared: size as u64,
                    consumed: (size as i64 + r.pos as i64 - body_end as i64) as u64,
                });
            }
            self.module.funcs.push(FuncDef {
                type_idx: self.func_types[fi],
                locals,
                body,
            });
        }
        Ok(())
    }

    fn data_section(&mut self, r: &mut Reader<'_>) -> R<()> {
        let n = r.count()?;
        for _ in 0..n {
            let mem = r.u32_leb()?;
            if mem != 0 {
                return r.fail(DecodeErrorKind::IndexOutOfRange {
                    space: "memory",
                    index: mem,
                    limit: 1,
                });
            }
            let offset = self.offset_expr(r)?;
            let len = r.u32_leb()? as usize;
            let bytes = r.take(len)?.to_vec();
            self.module.data.push(DataSegment { offset, bytes });
        }
        Ok(())
    }

    // -- instructions -------------------------------------------------------

    fn blocktype(&mut self, r: &mut Reader<'_>) -> R<BlockType> {
        match r.peek() {
            Some(0x40) => {
                r.byte()?;
                Ok(BlockType::Empty)
            }
            Some(b) if valtype_of(b).is_some() => {
                r.byte()?;
                Ok(BlockType::Value(valtype_of(b).expect("checked")))
            }
            Some(_) => {
                // Multi-value extension: a type-section index as s33.
                let v = r.sleb(33)?;
                if v < 0 {
                    return r.fail(DecodeErrorKind::BadBlockType);
                }
                Self::check_index(r, "type", v as u32, self.module.types.len() as u32)?;
                Ok(BlockType::Func(v as u32))
            }
            None => r.fail(DecodeErrorKind::UnexpectedEof),
        }
    }

    /// An instruction sequence up to (and consuming) the function-level
    /// `end`. Decoding is **iterative** — nesting lives in an explicit
    /// frame stack, capped at [`MAX_NESTING`], so hostile nesting depth
    /// can never overflow the call stack.
    fn expr(&mut self, r: &mut Reader<'_>) -> R<Vec<WInstr>> {
        enum FrameKind {
            /// The function-level sequence.
            Func,
            Block(BlockType),
            Loop(BlockType),
            /// The then-branch of an `if`.
            IfThen(BlockType),
            /// The else-branch; carries the finished then-branch.
            IfElse(BlockType, Vec<WInstr>),
        }
        struct Frame {
            kind: FrameKind,
            instrs: Vec<WInstr>,
        }
        let mut stack = vec![Frame {
            kind: FrameKind::Func,
            instrs: Vec::new(),
        }];
        loop {
            let op = r.byte()?;
            match op {
                0x0b => {
                    let f = stack.pop().expect("frame stack never empties");
                    let built = match f.kind {
                        FrameKind::Func => return Ok(f.instrs),
                        FrameKind::Block(bt) => WInstr::Block(bt, f.instrs),
                        FrameKind::Loop(bt) => WInstr::Loop(bt, f.instrs),
                        FrameKind::IfThen(bt) => WInstr::If(bt, f.instrs, Vec::new()),
                        FrameKind::IfElse(bt, then_b) => WInstr::If(bt, then_b, f.instrs),
                    };
                    stack
                        .last_mut()
                        .expect("parent frame present")
                        .instrs
                        .push(built);
                }
                0x05 => {
                    let f = stack.pop().expect("frame stack never empties");
                    match f.kind {
                        FrameKind::IfThen(bt) => stack.push(Frame {
                            kind: FrameKind::IfElse(bt, f.instrs),
                            instrs: Vec::new(),
                        }),
                        // An `else` outside an `if`.
                        _ => return r.fail(DecodeErrorKind::BadOpcode(0x05)),
                    }
                }
                0x02..=0x04 => {
                    if stack.len() > MAX_NESTING {
                        return r.fail(DecodeErrorKind::NestingTooDeep);
                    }
                    let bt = self.blocktype(r)?;
                    let kind = match op {
                        0x02 => FrameKind::Block(bt),
                        0x03 => FrameKind::Loop(bt),
                        _ => FrameKind::IfThen(bt),
                    };
                    stack.push(Frame {
                        kind,
                        instrs: Vec::new(),
                    });
                }
                other => {
                    let instr = self.simple_instr(r, other)?;
                    stack
                        .last_mut()
                        .expect("frame stack never empties")
                        .instrs
                        .push(instr);
                }
            }
        }
    }

    fn memarg(&mut self, r: &mut Reader<'_>, natural: u32) -> R<u32> {
        let align = r.u32_leb()?;
        if align > natural {
            return r.fail(DecodeErrorKind::BadAlignment(align));
        }
        r.u32_leb()
    }

    /// Everything except the structured-control opcodes (those live in
    /// [`Decoder::expr`]'s frame stack).
    #[allow(clippy::too_many_lines)]
    fn simple_instr(&mut self, r: &mut Reader<'_>, op: u8) -> R<WInstr> {
        use WInstr::*;
        Ok(match op {
            0x00 => Unreachable,
            0x01 => Nop,
            0x0c => Br(r.u32_leb()?),
            0x0d => BrIf(r.u32_leb()?),
            0x0e => {
                let n = r.count()?;
                let mut ls = Vec::with_capacity(n);
                for _ in 0..n {
                    ls.push(r.u32_leb()?);
                }
                BrTable(ls, r.u32_leb()?)
            }
            0x0f => Return,
            0x10 => {
                let f = r.u32_leb()?;
                Self::check_index(r, "function", f, self.n_funcs())?;
                Call(f)
            }
            0x11 => {
                let t = r.u32_leb()?;
                Self::check_index(r, "type", t, self.module.types.len() as u32)?;
                let table = r.byte()?;
                if table != 0 {
                    return r.fail(DecodeErrorKind::BadFlag(table));
                }
                CallIndirect(t)
            }
            0x1a => Drop,
            0x1b => Select,
            0x20 => LocalGet(r.u32_leb()?),
            0x21 => LocalSet(r.u32_leb()?),
            0x22 => LocalTee(r.u32_leb()?),
            0x23 => GlobalGet(r.u32_leb()?),
            0x24 => GlobalSet(r.u32_leb()?),
            0x28 => Load(ValType::I32, self.memarg(r, 2)?),
            0x29 => Load(ValType::I64, self.memarg(r, 3)?),
            0x2a => Load(ValType::F32, self.memarg(r, 2)?),
            0x2b => Load(ValType::F64, self.memarg(r, 3)?),
            0x2d => Load8U(self.memarg(r, 0)?),
            0x36 => Store(ValType::I32, self.memarg(r, 2)?),
            0x37 => Store(ValType::I64, self.memarg(r, 3)?),
            0x38 => Store(ValType::F32, self.memarg(r, 2)?),
            0x39 => Store(ValType::F64, self.memarg(r, 3)?),
            0x3a => Store8(self.memarg(r, 0)?),
            0x3f => {
                if r.byte()? != 0 {
                    return r.fail(DecodeErrorKind::BadFlag(0x3f));
                }
                MemorySize
            }
            0x40 => {
                if r.byte()? != 0 {
                    return r.fail(DecodeErrorKind::BadFlag(0x40));
                }
                MemoryGrow
            }
            0x41 => I32Const(r.sleb(32)? as i32),
            0x42 => I64Const(r.sleb(64)?),
            0x43 => F32Const(f32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"))),
            0x44 => F64Const(f64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"))),
            0x45 => ITest(Width::W32),
            0x50 => ITest(Width::W64),
            0x46..=0x4f => IRel(Width::W32, irelop(op - 0x46)),
            0x51..=0x5a => IRel(Width::W64, irelop(op - 0x51)),
            0x5b..=0x60 => FRel(Width::W32, frelop(op - 0x5b)),
            0x61..=0x66 => FRel(Width::W64, frelop(op - 0x61)),
            0x67..=0x69 => IUn(Width::W32, iunop(op - 0x67)),
            0x79..=0x7b => IUn(Width::W64, iunop(op - 0x79)),
            0x6a..=0x78 => IBin(Width::W32, ibinop(op - 0x6a)),
            0x7c..=0x8a => IBin(Width::W64, ibinop(op - 0x7c)),
            0x8b..=0x91 => FUn(Width::W32, funop(op - 0x8b)),
            0x99..=0x9f => FUn(Width::W64, funop(op - 0x99)),
            0x92..=0x98 => FBin(Width::W32, fbinop(op - 0x92)),
            0xa0..=0xa6 => FBin(Width::W64, fbinop(op - 0xa0)),
            0xa7 => I32WrapI64,
            0xa8 => ITruncF(Width::W32, Width::W32, Sx::S),
            0xa9 => ITruncF(Width::W32, Width::W32, Sx::U),
            0xaa => ITruncF(Width::W32, Width::W64, Sx::S),
            0xab => ITruncF(Width::W32, Width::W64, Sx::U),
            0xac => I64ExtendI32(Sx::S),
            0xad => I64ExtendI32(Sx::U),
            0xae => ITruncF(Width::W64, Width::W32, Sx::S),
            0xaf => ITruncF(Width::W64, Width::W32, Sx::U),
            0xb0 => ITruncF(Width::W64, Width::W64, Sx::S),
            0xb1 => ITruncF(Width::W64, Width::W64, Sx::U),
            0xb2 => FConvertI(Width::W32, Width::W32, Sx::S),
            0xb3 => FConvertI(Width::W32, Width::W32, Sx::U),
            0xb4 => FConvertI(Width::W32, Width::W64, Sx::S),
            0xb5 => FConvertI(Width::W32, Width::W64, Sx::U),
            0xb6 => F32DemoteF64,
            0xb7 => FConvertI(Width::W64, Width::W32, Sx::S),
            0xb8 => FConvertI(Width::W64, Width::W32, Sx::U),
            0xb9 => FConvertI(Width::W64, Width::W64, Sx::S),
            0xba => FConvertI(Width::W64, Width::W64, Sx::U),
            0xbb => F64PromoteF32,
            0xbc => IReinterpretF(Width::W32),
            0xbd => IReinterpretF(Width::W64),
            0xbe => FReinterpretI(Width::W32),
            0xbf => FReinterpretI(Width::W64),
            other => return r.fail(DecodeErrorKind::BadOpcode(other)),
        })
    }
}

fn irelop(o: u8) -> IRelOp {
    match o {
        0 => IRelOp::Eq,
        1 => IRelOp::Ne,
        2 => IRelOp::Lt(Sx::S),
        3 => IRelOp::Lt(Sx::U),
        4 => IRelOp::Gt(Sx::S),
        5 => IRelOp::Gt(Sx::U),
        6 => IRelOp::Le(Sx::S),
        7 => IRelOp::Le(Sx::U),
        _ => IRelOp::Ge(if o == 8 { Sx::S } else { Sx::U }),
    }
}

fn frelop(o: u8) -> FRelOp {
    match o {
        0 => FRelOp::Eq,
        1 => FRelOp::Ne,
        2 => FRelOp::Lt,
        3 => FRelOp::Gt,
        4 => FRelOp::Le,
        _ => FRelOp::Ge,
    }
}

fn iunop(o: u8) -> IUnOp {
    match o {
        0 => IUnOp::Clz,
        1 => IUnOp::Ctz,
        _ => IUnOp::Popcnt,
    }
}

fn ibinop(o: u8) -> IBinOp {
    match o {
        0 => IBinOp::Add,
        1 => IBinOp::Sub,
        2 => IBinOp::Mul,
        3 => IBinOp::Div(Sx::S),
        4 => IBinOp::Div(Sx::U),
        5 => IBinOp::Rem(Sx::S),
        6 => IBinOp::Rem(Sx::U),
        7 => IBinOp::And,
        8 => IBinOp::Or,
        9 => IBinOp::Xor,
        10 => IBinOp::Shl,
        11 => IBinOp::Shr(Sx::S),
        12 => IBinOp::Shr(Sx::U),
        13 => IBinOp::Rotl,
        _ => IBinOp::Rotr,
    }
}

fn funop(o: u8) -> FUnOp {
    match o {
        0 => FUnOp::Abs,
        1 => FUnOp::Neg,
        2 => FUnOp::Ceil,
        3 => FUnOp::Floor,
        4 => FUnOp::Trunc,
        5 => FUnOp::Nearest,
        _ => FUnOp::Sqrt,
    }
}

fn fbinop(o: u8) -> FBinOp {
    match o {
        0 => FBinOp::Add,
        1 => FBinOp::Sub,
        2 => FBinOp::Mul,
        3 => FBinOp::Div,
        4 => FBinOp::Min,
        5 => FBinOp::Max,
        _ => FBinOp::Copysign,
    }
}

// ---------------------------------------------------------------------------
// The module driver.

/// Decodes a standard `.wasm` binary into a [`Module`].
///
/// The decoder is **total**: any byte sequence either decodes or returns
/// a [`DecodeError`]; it never panics, never recurses unboundedly, and
/// never trusts a length or count it has not checked against the input.
/// Sections must appear in spec order, at most once each (custom
/// sections — including `name` — may appear anywhere and are skipped),
/// the function and code sections must agree on the function count, and
/// every module-structure index (types, functions, tables, memories,
/// globals) must be in range. Instruction-level indices (locals, labels)
/// are the validator's concern — run
/// [`crate::validate::validate_module`] on the result before executing
/// it, exactly as for a freshly lowered module.
///
/// # Errors
///
/// The first [`DecodeError`] encountered, with byte offset and section.
pub fn decode_module(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    r.section = Some(Section::Header);
    if r.take(4).map_err(|mut e| {
        e.kind = DecodeErrorKind::BadMagic;
        e
    })? != b"\0asm"
    {
        r.pos = 0;
        return r.fail(DecodeErrorKind::BadMagic);
    }
    let version_bytes = r.take(4).map_err(|mut e| {
        e.kind = DecodeErrorKind::BadVersion(0);
        e
    })?;
    let version = u32::from_le_bytes(version_bytes.try_into().expect("4 bytes"));
    if version != 1 {
        r.pos = 4;
        return r.fail(DecodeErrorKind::BadVersion(version));
    }

    let mut d = Decoder::default();
    let mut last_id: u8 = 0;
    let mut saw_funcs = false;
    let mut saw_code = false;
    while r.remaining() > 0 {
        r.section = None;
        let id = r.byte()?;
        let section = match Section::from_id(id) {
            Some(s) => s,
            None => {
                r.pos -= 1;
                return r.fail(DecodeErrorKind::BadSectionId(id));
            }
        };
        r.section = Some(section);
        // Non-custom sections must be strictly increasing: this also
        // rejects duplicates.
        if id != 0 {
            if id <= last_id {
                return r.fail(DecodeErrorKind::SectionOrder(id));
            }
            last_id = id;
        }
        let size = r.u32_leb()? as usize;
        if size > r.remaining() {
            return r.fail(DecodeErrorKind::UnexpectedEof);
        }
        let end = r.pos + size;
        match section {
            Section::Custom => {
                // Bounds-check the name, skip the payload (this is where
                // the `name` section lands).
                let before = r.pos;
                r.name()?;
                if r.pos > end {
                    return r.fail(DecodeErrorKind::SectionSize {
                        declared: size as u64,
                        consumed: (r.pos - before) as u64,
                    });
                }
                r.pos = end;
            }
            Section::Header => unreachable!("from_id never yields Header"),
            Section::Type => d.type_section(&mut r)?,
            Section::Import => d.import_section(&mut r)?,
            Section::Function => {
                saw_funcs = true;
                d.function_section(&mut r)?;
            }
            Section::Table => d.table_section(&mut r)?,
            Section::Memory => d.memory_section(&mut r)?,
            Section::Global => d.global_section(&mut r)?,
            Section::Export => d.export_section(&mut r)?,
            Section::Start => {
                let s = r.u32_leb()?;
                Decoder::check_index(&r, "function", s, d.n_funcs())?;
                d.module.start = Some(s);
            }
            Section::Element => d.element_section(&mut r)?,
            Section::Code => {
                saw_code = true;
                d.code_section(&mut r)?;
            }
            Section::Data => d.data_section(&mut r)?,
        }
        if r.pos != end {
            let consumed = size as u64 + r.pos as u64 - end as u64;
            return r.fail(DecodeErrorKind::SectionSize {
                declared: size as u64,
                consumed,
            });
        }
    }
    r.section = None;
    // A function section without code (or vice versa) is a count
    // mismatch the per-section checks cannot see.
    if saw_funcs != saw_code && !d.func_types.is_empty() {
        return r.fail(DecodeErrorKind::FuncCodeMismatch {
            funcs: d.func_types.len() as u32,
            bodies: d.module.funcs.len() as u32,
        });
    }
    Ok(d.module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::encode_module;

    fn golden() -> Module {
        // (module (func (result i32) i32.const 42) (export "a" (func 0)))
        let mut m = Module::default();
        let t = m.intern_type(FuncType {
            params: vec![],
            results: vec![ValType::I32],
        });
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![],
            body: vec![WInstr::I32Const(42)],
        });
        m.exports.push(Export {
            name: "a".into(),
            kind: ExportKind::Func(0),
        });
        m
    }

    #[test]
    fn golden_module_round_trips() {
        let m = golden();
        let bytes = encode_module(&m);
        let decoded = decode_module(&bytes).unwrap();
        assert_eq!(decoded, m, "structural round trip");
        assert_eq!(encode_module(&decoded), bytes, "byte round trip");
    }

    #[test]
    fn empty_module_is_just_the_header() {
        let decoded = decode_module(&[0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00]).unwrap();
        assert_eq!(decoded, Module::default());
    }

    #[test]
    fn bad_magic_and_version() {
        let err = decode_module(b"\0bad\x01\0\0\0").unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadMagic);
        assert_eq!(err.offset, 0);
        let err = decode_module(b"\0asm\x02\0\0\0").unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadVersion(2));
        let err = decode_module(b"\0as").unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadMagic);
    }

    #[test]
    fn overlong_leb_rejected() {
        // Type section with count encoded as [0x80, 0x00] (= 0, overlong).
        let bytes = [
            0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00, 0x01, 0x02, 0x80, 0x00,
        ];
        let err = decode_module(&bytes).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::LebOverlong);
        assert_eq!(err.section, Some(Section::Type));
    }

    #[test]
    fn oversized_leb_rejected() {
        // A u32 count spread over 6 continuation bytes.
        let bytes = [
            0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00, 0x01, 0x07, 0x80, 0x80, 0x80, 0x80,
            0x80, 0x80, 0x01,
        ];
        let err = decode_module(&bytes).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::LebOverflow);
    }

    #[test]
    fn extreme_sleb_constants_round_trip() {
        let mut m = Module::default();
        let t = m.intern_type(FuncType {
            params: vec![],
            results: vec![ValType::I64],
        });
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![],
            body: vec![
                WInstr::I64Const(i64::MIN),
                WInstr::Drop,
                WInstr::I64Const(i64::MAX),
                WInstr::Drop,
                WInstr::I32Const(i32::MIN),
                WInstr::Drop,
                WInstr::I32Const(-1),
                WInstr::Drop,
                WInstr::I64Const(42),
            ],
        });
        let bytes = encode_module(&m);
        let decoded = decode_module(&bytes).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(encode_module(&decoded), bytes);
    }

    #[test]
    fn section_length_lie_rejected() {
        // Valid type section content but the header claims one byte more.
        let mut bytes = encode_module(&golden());
        bytes[9] += 1; // type section size field
        let err = decode_module(&bytes).unwrap_err();
        assert!(
            matches!(
                err.kind,
                DecodeErrorKind::SectionSize { .. }
                    | DecodeErrorKind::SectionOrder(_)
                    | DecodeErrorKind::UnexpectedEof
                    | DecodeErrorKind::BadSectionId(_)
            ),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_indices_rejected() {
        // Export of function 9 in a module with one function.
        let mut m = golden();
        m.exports[0].kind = ExportKind::Func(9);
        let err = decode_module(&encode_module(&m)).unwrap_err();
        assert_eq!(
            err.kind,
            DecodeErrorKind::IndexOutOfRange {
                space: "function",
                index: 9,
                limit: 1
            }
        );
        assert_eq!(err.section, Some(Section::Export));

        // Function section referencing type 7 of 1.
        let mut m = golden();
        m.funcs[0].type_idx = 7;
        let err = decode_module(&encode_module(&m)).unwrap_err();
        assert!(matches!(
            err.kind,
            DecodeErrorKind::IndexOutOfRange { space: "type", .. }
        ));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let mut bytes = vec![0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00];
        // One type, one func whose body is 100k nested blocks (truncated —
        // the nesting cap must trip long before the EOF would).
        bytes.extend([0x01, 0x04, 0x01, 0x60, 0x00, 0x00]); // type []->[]
        bytes.extend([0x03, 0x02, 0x01, 0x00]); // function section
        let blocks = 100_000usize;
        let mut body = vec![0x00]; // zero locals
        body.extend(std::iter::repeat([0x02, 0x40]).take(blocks).flatten());
        let mut code = Vec::new();
        code.push(0x01); // one body
        crate::binary::uleb(body.len() as u64, &mut code);
        code.extend(&body);
        bytes.push(0x0a);
        crate::binary::uleb(code.len() as u64, &mut bytes);
        bytes.extend(&code);
        let err = decode_module(&bytes).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::NestingTooDeep);
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A type section claiming 2^28 entries in a 3-byte payload.
        let bytes = [
            0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00, 0x01, 0x05, 0x80, 0x80, 0x80, 0x80,
            0x01,
        ];
        let err = decode_module(&bytes).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::CountTooLarge(_)));
    }

    #[test]
    fn custom_sections_are_skipped() {
        // name-style custom section between header and type section.
        let mut bytes = vec![0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00];
        bytes.extend([0x00, 0x06, 0x04, b'n', b'a', b'm', b'e', 0xff]);
        let golden_bytes = encode_module(&golden());
        bytes.extend(&golden_bytes[8..]);
        let decoded = decode_module(&bytes).unwrap();
        assert_eq!(decoded, golden());
    }

    #[test]
    fn duplicate_and_out_of_order_sections_rejected() {
        let golden_bytes = encode_module(&golden());
        // Duplicate the type section.
        let mut bytes = golden_bytes.clone();
        let type_sec = golden_bytes[8..15].to_vec(); // id 1, len 5, payload
        bytes.splice(15..15, type_sec);
        let err = decode_module(&bytes).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::SectionOrder(1));
    }

    #[test]
    fn every_truncation_of_the_golden_module_is_total() {
        let bytes = encode_module(&golden());
        for n in 0..bytes.len() {
            // Must return (Ok at section boundaries, Err otherwise) —
            // never panic. n == 8 is the valid empty module.
            let _ = decode_module(&bytes[..n]);
        }
        assert!(decode_module(&bytes[..8]).is_ok());
        assert!(decode_module(&bytes[..bytes.len() - 1]).is_err());
    }
}
