//! Flat-bytecode compilation of validated function bodies.
//!
//! The tree-walking interpreter in [`crate::exec`] re-traverses nested
//! [`WInstr`] trees and re-threads a `Flow` signal through every block on
//! every invoke. This module lowers each **validated** body once, at
//! artifact build time, into a linear [`Vec<Op>`] that the VM in
//! [`crate::vm`] executes with a program counter:
//!
//! * structured `block` / `loop` / `if` are flattened to jumps whose
//!   targets are pre-resolved by a single validator-visit-order walk (the
//!   same linearisation the CFG construction in `richwasm-analyze`
//!   performs — stack heights in validated code are static at every
//!   program point, so each branch's unwind is a compile-time constant);
//! * every branch op carries a [`BranchTarget`]: the target `pc`, how
//!   many values to `keep`, and the absolute stack `height` to truncate
//!   to — exactly the keep/truncate/extend unwind the tree-walker
//!   performs dynamically;
//! * call sites are reduced to plain indices resolved through the
//!   instance's function-address table (the same `Arc`-shared bodies /
//!   `invoke_addr` seam the tree-walker uses), with `call_indirect`'s
//!   expected type embedded in the op so no per-call type-table clone
//!   remains.
//!
//! **Fuel equivalence.** The tree-walker charges one step per dispatched
//! instruction (including `block`/`loop`/`if` entry, charged once — a
//! loop's header is charged when the `loop` instruction is dispatched,
//! not per iteration). The compiler preserves that accounting exactly:
//! each op corresponding to a dispatched instruction costs 1
//! ([`Op::cost`]), and the two synthetic ops the flattening introduces
//! (the jump over an `else` arm, the fall-off-the-end return) cost 0.
//! `loop` entry compiles to a [`Op::Meter`] *before* the back-edge
//! target, so iterating never re-charges it.
//!
//! **Superinstruction fusion.** A peephole pass (`fuse`) collapses the
//! hottest adjacent sequences (`local.get; const; ibin; local.set`,
//! `const; irel; if-false`, a same-global read-modify-write, …) into
//! single fused ops that cost the *sum* of their parts, halving or
//! quartering dispatch count on lowered loop bodies. Fusion never
//! crosses a branch-target boundary (no jump can land mid-fusion), and
//! only fuses sub-sequences that are pure or frame-local up to an
//! optional final side effect — so batch-charging their fuel is exact:
//! if the budget crosses anywhere inside a fused op the VM traps with
//! the same step count, the same memory, and the same globals as the
//! tree-walker trapping mid-sequence (skipped sub-ops could only have
//! touched the operand stack or locals of the frame being abandoned).
//! Trapping operators (`div`/`rem`) are never fused, so a fused op's
//! only possible traps are fuel (checked before any effect) and a fused
//! load's bounds check. A load in final position traps with every
//! sub-op charged on both engines; a mid-sequence load (e.g. in
//! [`Op::GetLoadSet`]) gives back the steps the tree-walker would not
//! yet have charged before trapping, so `last_steps()` agrees there
//! too.
//!
//! **Fidelity over spec.** The compiler mirrors the tree-walker — the
//! differential oracle — rather than idealised Wasm: a branch that
//! targets a `block`/`if` truncates to the stack height *at entry*,
//! and a branch to the implicit function label compiles to the
//! tree-walker's `br escaped function body` trap. Parameterised
//! `block`/`if` bodies compile (RichWasm lowering emits them as scoping
//! devices), but a branch **targeting** one is declined — the
//! tree-walker's entry-height unwind would diverge from the
//! normal-completion height there, making post-block heights
//! path-dependent; such functions stay tree-walked.

use std::sync::Arc;

use crate::ast::*;

/// Version tag of the serialised bytecode format (see
/// [`encode_compiled`]). Bump on any change to [`Op`] or its encoding;
/// a mismatch makes [`decode_compiled`] fail, and embedders fall back to
/// recompiling from the decoded module.
pub const BYTECODE_VERSION: u16 = 2;

/// Sentinel `pc` for a branch that targets the implicit function label:
/// the tree-walker traps (`br escaped function body`), so the VM does
/// too.
pub const ESCAPE_PC: u32 = u32::MAX;

/// A pre-resolved branch: jump to `pc` after keeping the top `keep`
/// values and truncating the operand stack to absolute `height`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchTarget {
    /// Target program counter ([`ESCAPE_PC`] = function-label trap).
    pub pc: u32,
    /// Values carried across the unwind (block results / loop params).
    pub keep: u32,
    /// Absolute stack height to truncate to before re-pushing `keep`.
    pub height: u32,
}

/// `br_table` payload: boxed so [`Op`] stays small.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrTableData {
    /// Indexed targets.
    pub targets: Vec<BranchTarget>,
    /// Default target for out-of-range indices.
    pub default: BranchTarget,
}

/// One flat-bytecode operation. Operand-stack slots are raw `u64` bit
/// patterns (32-bit values zero-extended — the same representation as
/// `HostVal::bits()` in the embedder, so the typed call path converts
/// nothing but trivial bit moves).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Trap: `unreachable executed`.
    Unreachable,
    /// No effect (still costs one step, like the tree-walker's `nop`).
    Nop,
    /// `block` / `loop` entry: charges the step the tree-walker charges
    /// when dispatching the structured instruction; no other effect.
    Meter,
    /// Unconditional jump, cost 0 — synthetic (end of a `then` arm).
    Jump(u32),
    /// `if`: pops the condition, falls through on non-zero, jumps to the
    /// else arm (or the end) on zero.
    IfFalse(u32),
    /// `br`.
    Br(BranchTarget),
    /// `br_if`: pops the condition, branches on non-zero.
    BrIf(BranchTarget),
    /// `br_table`: pops the index, selects a target.
    BrTable(Box<BrTableData>),
    /// `return`: keep the top `keep` values as the function's results.
    Return {
        /// Number of results the function returns.
        keep: u32,
    },
    /// Fall off the end of the body, cost 0 — synthetic epilogue.
    FallRet {
        /// Number of results the function returns.
        keep: u32,
    },
    /// `call` of a module-local function index (resolved through the
    /// instance's function-address table at run time).
    Call(u32),
    /// `call_indirect` with the expected function type pre-resolved from
    /// the module's type section.
    CallIndirect(Box<FuncType>),
    /// `drop`.
    Drop,
    /// `select`.
    Select,
    /// `local.get`.
    LocalGet(u32),
    /// `local.set`.
    LocalSet(u32),
    /// `local.tee`.
    LocalTee(u32),
    /// `global.get` (module-local index; the store keeps typed values, so
    /// the VM converts at the access).
    GlobalGet(u32),
    /// `global.set` with the global's declared type (needed to rebuild
    /// the typed store value from the raw slot).
    GlobalSet {
        /// Module-local global index.
        idx: u32,
        /// The global's declared value type.
        ty: ValType,
    },
    /// Typed load with static offset.
    Load {
        /// Loaded value type (determines the access width).
        ty: ValType,
        /// Static address offset.
        offset: u32,
    },
    /// Typed store with static offset.
    Store {
        /// Stored value type (determines the access width).
        ty: ValType,
        /// Static address offset.
        offset: u32,
    },
    /// `i32.load8_u`.
    Load8U(u32),
    /// `i32.store8`.
    Store8(u32),
    /// `memory.size`.
    MemorySize,
    /// `memory.grow`.
    MemoryGrow,
    /// Any constant, as its slot bit pattern.
    Const(u64),
    /// Integer unary operator.
    IUn(Width, IUnOp),
    /// Integer binary operator.
    IBin(Width, IBinOp),
    /// `iNN.eqz`.
    ITest(Width),
    /// Integer comparison.
    IRel(Width, IRelOp),
    /// Float unary operator.
    FUn(Width, FUnOp),
    /// Float binary operator.
    FBin(Width, FBinOp),
    /// Float comparison.
    FRel(Width, FRelOp),
    /// `i32.wrap_i64`.
    I32WrapI64,
    /// `i64.extend_i32_s` / `_u`.
    I64ExtendI32(Sx),
    /// `iNN.trunc_fMM_sx`.
    ITruncF(Width, Width, Sx),
    /// `fNN.convert_iMM_sx`.
    FConvertI(Width, Width, Sx),
    /// `f32.demote_f64`.
    F32DemoteF64,
    /// `f64.promote_f32`.
    F64PromoteF32,
    /// `iNN.reinterpret_fNN`.
    IReinterpretF(Width),
    /// `fNN.reinterpret_iNN`.
    FReinterpretI(Width),
    // --- Fused superinstructions (see the module docs). Field order is
    // chosen so every variant stays within 16 bytes. ---
    /// Fused `local.get i; const c; ibin` — fields `(w, op, i, c)`,
    /// cost 3. Pushes `local[i] op c`.
    GetConstOp(Width, IBinOp, u32, u64),
    /// Fused `local.get i; const c; ibin; local.set j` — fields
    /// `(w, op, i, j, c)`, cost 4. Sets `local[j] = local[i] op c`
    /// without touching the operand stack.
    GetConstOpSet(Width, IBinOp, u16, u16, u64),
    /// Fused same-global read-modify-write `global.get g; const c; ibin;
    /// global.set g` — fields `(w, op, ty, g, c)`, cost 4.
    GlobalIncr(Width, IBinOp, ValType, u16, u64),
    /// Fused `const c; ibin` — fields `(w, op, c)`, cost 2. Replaces the
    /// top of stack `a` with `a op c`.
    ConstOp(Width, IBinOp, u64),
    /// Fused `const c; irel; if-false` — fields `(w, op, pc, c)`,
    /// cost 3. Pops `a`, jumps to `pc` unless `a op c` holds.
    ConstRelIfFalse(Width, IRelOp, u32, u64),
    /// Fused `local.get i; load` — fields `(ty, offset, i)`, cost 2.
    GetLoad(ValType, u32, u32),
    /// Fused `iNN.eqz; br_if` — cost 2. Pops `a`, branches if `a == 0`.
    TestBr(Width, BranchTarget),
    /// Fused `local.get i; iNN.eqz` — cost 2.
    GetTest(Width, u32),
    /// Fused `local.get i; local.set j` — cost 2.
    Copy(u16, u16),
    /// Fused `local.get i; local.get j` — cost 2.
    Get2(u16, u16),
    /// Fused `const c; local.set j` — fields `(j, c)`, cost 2.
    ConstSet(u16, u64),
    /// Fused `local.get i; const c; irel; br_if` — cost 4. Branches if
    /// `local[i] op c` holds. Boxed: the payload outgrows the inline
    /// budget.
    GetConstRelBr(Box<CmpBrData>),
    /// Fused `local.get i; const c; irel; if-false` — cost 4. Falls
    /// through if `local[i] op c` holds, else jumps to `t.pc` (a plain
    /// jump — `if` arms don't unwind, so `t.keep`/`t.height` are
    /// unused).
    GetConstRelIfFalse(Box<CmpBrData>),
    /// Fused `irel; br_if` — cost 2. Pops `b` then `a`, branches if
    /// `a op b` holds.
    RelBr(Width, IRelOp, BranchTarget),
    /// Fused `local.get i; irel; if-false` — fields `(w, op, i, pc)`,
    /// cost 3. Pops `a`, jumps to `pc` unless `a op local[i]` holds.
    GetRelIfFalse(Width, IRelOp, u16, u32),
    /// Fused `local.get i; load; local.set j` — fields
    /// `(ty, offset, i, j)`, cost 3.
    GetLoadSet(ValType, u32, u16, u16),
    /// Fused `local.get i; local.get j; store` — fields
    /// `(ty, offset, i, j)`, cost 3. Stores `local[j]` at
    /// `local[i] + offset`.
    Get2Store(ValType, u32, u16, u16),
    /// Fused `const c; ibin; local.set j` — fields `(w, op, j, c)`,
    /// cost 3. Pops `a`, sets `local[j] = a op c`.
    ConstOpSet(Width, IBinOp, u16, u64),
    /// Fused `global.get g; local.set j` — cost 2.
    GlobalGetSet(u16, u16),
    /// Fused pair of adjacent `block`/`loop` entry meters — cost 2.
    Meter2,
    /// Fused `local.get i; iNN.eqz; br_if` — cost 3. Branches if
    /// `local[i] == 0`.
    GetTestBr(Width, u16, BranchTarget),
    /// Fused `local.get i; iNN.eqz; if-false` — fields `(w, i, pc)`,
    /// cost 3. Jumps to `pc` if `local[i] != 0`.
    GetTestIfFalse(Width, u16, u32),
    /// Fused `local.get i; global.get g; store` — fields
    /// `(ty, offset, i, g)`, cost 3. Stores `global[g]` at
    /// `local[i] + offset`.
    GetGlobalStore(ValType, u32, u16, u16),
    /// Fused `local.get i; load; global.set g` — fields
    /// `(ty, gty, offset, i, g)`, cost 3. Sets `global[g]` (of type
    /// `gty`) to `mem[local[i] + offset]` (loaded at `ty`'s width).
    GetLoadGlobalSet(ValType, ValType, u32, u16, u16),
    /// Fused `local.tee i; local.get i; load` (same local) — fields
    /// `(ty, offset, i)`, cost 3. With `v` on top of the stack: sets
    /// `local[i] = v`, keeps `v`, pushes `mem[v + offset]`.
    TeeGetLoad(ValType, u32, u16),
    /// Fused `local.get i; const c; ibin; local.get j; ibin` — cost 5.
    /// Pushes `(local[i] op1 c) op2 local[j]`. Boxed: the payload
    /// outgrows the inline budget.
    GetConstOpGetOp(Box<ArithChainData>),
    /// Fused `const c; call f` — fields `(f, c)`, cost 2. Pushes the
    /// constant (typically the last argument) and calls function `f`.
    ConstCall(u32, u64),
    /// [`Op::GetTestBr`] with the preceding `block`/`loop` entry meter
    /// folded in — cost 4.
    MeterGetTestBr(Width, u16, BranchTarget),
    /// Fused `local.get i` + `block`/`loop` entry meter — cost 2.
    GetMeter(u32),
    /// Fused `local.get i; const c; ibin; global.set g` — fields
    /// `(w, op, gty, i, g, c)`, cost 4. Sets `global[g]` (of type `gty`)
    /// to `local[i] op c`.
    GetConstOpGlobalSet(Width, IBinOp, ValType, u16, u16, u64),
    /// Fused `const c; local.set j1; global.get g; local.set j2` —
    /// fields `(j1, g, j2, c)`, cost 4.
    ConstSetGlobalGetSet(u16, u16, u16, u64),
    /// Fused `local.get i; const c1; ibin; const c2; ibin; local.set j`
    /// — cost 6. Sets `local[j] = (local[i] op1 c1) op2 c2` without
    /// touching the operand stack. Boxed: the payload outgrows the
    /// inline budget.
    GetConstOpConstOpSet(Box<ArithFoldData>),
    /// Fused `local.get i; const c; ibin; return` (single-result
    /// functions only) — fields `(w, op, i, c)`, cost 4. Returns
    /// `local[i] op c`.
    GetConstOpRet(Width, IBinOp, u16, u64),
    /// Fused `local.get i; load; local.get j; irel; if-false` — cost 5.
    /// Falls through if `mem[local[i] + offset] op local[j]` holds, else
    /// jumps to `pc`. Boxed: the payload outgrows the inline budget.
    GetLoadRelIfFalse(Box<LoadCmpData>),
    /// Fused `local.get a; local.set b; local.get i; const c; ibin;
    /// local.set j` — cost 6. Sets `local[b] = local[a]` then
    /// `local[j] = local[i] op c` (in that order — `b` may alias `i`).
    /// Boxed: the payload outgrows the inline budget.
    CopyGetConstOpSet(Box<CopyArithData>),
    /// Fused `local.set b; local.get b; local.get j; store` — fields
    /// `(ty, offset, b, j)`, cost 4. Pops the address `a`, sets
    /// `local[b] = a`, stores `local[j]` at `a + offset`.
    SetGet2Store(ValType, u32, u16, u16),
}

/// Payload of [`Op::GetLoadRelIfFalse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadCmpData {
    /// Loaded value type (determines the access width).
    pub ty: ValType,
    /// Comparison width.
    pub w: Width,
    /// Comparison operator.
    pub op: IRelOp,
    /// Local holding the load address.
    pub i: u16,
    /// Local holding the comparison's right operand.
    pub j: u16,
    /// Static address offset.
    pub offset: u32,
    /// Fall-through-failed jump target.
    pub pc: u32,
}

/// Payload of [`Op::CopyGetConstOpSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyArithData {
    /// Operator width.
    pub w: Width,
    /// The fused operator.
    pub op: IBinOp,
    /// Copy source local.
    pub a: u16,
    /// Copy destination local.
    pub b: u16,
    /// Local holding the arithmetic left operand.
    pub i: u16,
    /// Local receiving the arithmetic result.
    pub j: u16,
    /// The fused constant.
    pub c: u64,
}

/// Payload of [`Op::GetConstOpConstOpSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArithFoldData {
    /// Operator width (shared by both operations).
    pub w: Width,
    /// First operator (applied as `local[i] op1 c1`).
    pub op1: IBinOp,
    /// Second operator (applied as `_ op2 c2`).
    pub op2: IBinOp,
    /// Local holding the initial operand.
    pub i: u16,
    /// Local receiving the result.
    pub j: u16,
    /// First fused constant.
    pub c1: u64,
    /// Second fused constant.
    pub c2: u64,
}

/// Payload of [`Op::GetConstOpGetOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArithChainData {
    /// Operator width (shared by both operations).
    pub w: Width,
    /// First operator (applied as `local[i] op1 c`).
    pub op1: IBinOp,
    /// Second operator (applied as `_ op2 local[j]`).
    pub op2: IBinOp,
    /// Local holding the first left operand.
    pub i: u32,
    /// Local holding the second right operand.
    pub j: u32,
    /// The fused constant.
    pub c: u64,
}

/// Payload of the boxed fused compare-branch quads
/// ([`Op::GetConstRelBr`] / [`Op::GetConstRelIfFalse`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmpBrData {
    /// Comparison width.
    pub w: Width,
    /// Comparison operator.
    pub op: IRelOp,
    /// Local holding the left operand.
    pub i: u32,
    /// Right operand (the fused constant).
    pub c: u64,
    /// Branch target (for the `if-false` form only `t.pc` applies).
    pub t: BranchTarget,
}

impl Op {
    /// How many steps of the instruction budget executing this op
    /// charges. The two synthetic control ops the flattening introduces
    /// are free, fused superinstructions charge the sum of their parts,
    /// and everything else corresponds 1:1 to a dispatched instruction
    /// in the tree-walker.
    pub fn cost(&self) -> u64 {
        match self {
            Op::Jump(_) | Op::FallRet { .. } => 0,
            Op::ConstOp(..)
            | Op::GetLoad(..)
            | Op::TestBr(..)
            | Op::GetTest(..)
            | Op::Copy(..)
            | Op::Get2(..)
            | Op::ConstSet(..)
            | Op::RelBr(..)
            | Op::GlobalGetSet(..)
            | Op::Meter2
            | Op::ConstCall(..)
            | Op::GetMeter(..) => 2,
            Op::GetConstOp(..)
            | Op::ConstRelIfFalse(..)
            | Op::GetRelIfFalse(..)
            | Op::GetLoadSet(..)
            | Op::Get2Store(..)
            | Op::ConstOpSet(..)
            | Op::GetTestBr(..)
            | Op::GetTestIfFalse(..)
            | Op::GetGlobalStore(..)
            | Op::GetLoadGlobalSet(..)
            | Op::TeeGetLoad(..) => 3,
            Op::GetConstOpSet(..)
            | Op::GlobalIncr(..)
            | Op::GetConstRelBr(..)
            | Op::GetConstRelIfFalse(..)
            | Op::MeterGetTestBr(..)
            | Op::GetConstOpGlobalSet(..)
            | Op::ConstSetGlobalGetSet(..)
            | Op::GetConstOpRet(..)
            | Op::SetGet2Store(..) => 4,
            Op::GetConstOpGetOp(..) | Op::GetLoadRelIfFalse(..) => 5,
            Op::GetConstOpConstOpSet(..) | Op::CopyGetConstOpSet(..) => 6,
            _ => 1,
        }
    }
}

/// One compiled function body.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFunc {
    /// Number of parameters (the first locals).
    pub nparams: u32,
    /// Extra declared locals beyond the parameters (zero-initialised —
    /// every type's zero is the all-zero bit pattern, so the VM needs no
    /// types here).
    pub nlocals: u32,
    /// Declared result types, used to rebuild typed values at the exit
    /// boundary.
    pub result_types: Vec<ValType>,
    /// Static maximum operand-stack height, for exact preallocation.
    pub max_stack: u32,
    /// The flat body.
    pub code: Vec<Op>,
}

/// The compiled form of a module: one entry per *defined* function, in
/// definition order. `None` marks a function the compiler declined
/// (it stays on the tree-walking tier).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledModule {
    /// Per-function compilations.
    pub funcs: Vec<Option<Arc<CompiledFunc>>>,
}

impl CompiledModule {
    /// How many functions have a compiled form.
    pub fn compiled_count(&self) -> usize {
        self.funcs.iter().filter(|f| f.is_some()).count()
    }
}

/// Compiles every defined function of a **validated** module. Functions
/// whose tree-walker semantics cannot be expressed with static branch
/// targets (a branch into a parameterised block) are declined (`None`)
/// and keep the tree-walking tier; all RichWasm-lowered code compiles
/// fully.
pub fn compile_module(m: &Module) -> CompiledModule {
    let globals = global_types(m);
    CompiledModule {
        funcs: m
            .funcs
            .iter()
            .map(|f| compile_func(m, f, &globals).map(Arc::new))
            .collect(),
    }
}

/// The global index space: imported globals first, then defined ones —
/// mirroring the instance's `global_addrs` layout.
fn global_types(m: &Module) -> Vec<ValType> {
    let mut out = Vec::new();
    for im in &m.imports {
        if let ImportKind::Global(t, _) = im.kind {
            out.push(t);
        }
    }
    for g in &m.globals {
        out.push(g.ty);
    }
    out
}

/// Marker: this body cannot be compiled faithfully; leave it on the
/// tree-walking tier.
struct Unsupported;

enum FrameKind {
    BlockLike,
    Loop,
    If,
}

struct Frame {
    kind: FrameKind,
    /// The tree-walker's truncate base: stack height at entry (after the
    /// condition pop, for `if`).
    entry_height: u32,
    params: u32,
    results: u32,
    /// Back-edge target (`loop` only): the pc after the entry meter.
    header_pc: u32,
    /// Ops whose branch target is this frame's end, patched on pop.
    patches: Vec<Patch>,
}

/// A forward-branch fixup: which op (and, for `br_table`, which slot)
/// needs its `pc` set to the frame's end.
enum Patch {
    Br(usize),
    Jump(usize),
    Table(usize, usize),
    TableDefault(usize),
}

struct Compiler<'m> {
    m: &'m Module,
    globals: &'m [ValType],
    code: Vec<Op>,
    height: u32,
    max_height: u32,
    frames: Vec<Frame>,
    unreachable: bool,
    nresults: u32,
}

fn compile_func(m: &Module, f: &FuncDef, globals: &[ValType]) -> Option<CompiledFunc> {
    let ty = m.types.get(f.type_idx as usize)?;
    let mut c = Compiler {
        m,
        globals,
        code: Vec::new(),
        height: 0,
        max_height: 0,
        frames: Vec::new(),
        unreachable: false,
        nresults: ty.results.len() as u32,
    };
    c.seq(&f.body).ok()?;
    let keep = c.nresults;
    c.code.push(Op::FallRet { keep });
    Some(CompiledFunc {
        nparams: ty.params.len() as u32,
        nlocals: f.locals.len() as u32,
        result_types: ty.results.clone(),
        max_stack: c.max_height,
        code: fuse(&c.code),
    })
}

/// `true` for integer operators that can never trap (everything but
/// `div`/`rem`) — the precondition for folding an [`Op::IBin`] into a
/// fused superinstruction.
fn fusable_ibin(op: IBinOp) -> bool {
    !matches!(op, IBinOp::Div(_) | IBinOp::Rem(_))
}

/// The superinstruction peephole (see the module docs): collapses hot
/// adjacent sequences into single fused ops, never across a pc some
/// branch targets, then remaps every embedded branch pc into the fused
/// index space.
fn fuse(code: &[Op]) -> Vec<Op> {
    let mut is_target = vec![false; code.len() + 1];
    {
        let mut mark = |pc: u32| {
            if pc != ESCAPE_PC {
                is_target[pc as usize] = true;
            }
        };
        for op in code {
            match op {
                Op::Jump(pc) | Op::IfFalse(pc) => mark(*pc),
                Op::Br(t) | Op::BrIf(t) => mark(t.pc),
                Op::BrTable(d) => {
                    for t in &d.targets {
                        mark(t.pc);
                    }
                    mark(d.default.pc);
                }
                _ => {}
            }
        }
    }
    let u16s = |i: u32, j: u32| u16::try_from(i).ok().zip(u16::try_from(j).ok());
    let mut out: Vec<Op> = Vec::with_capacity(code.len());
    let mut newpos = vec![0u32; code.len() + 1];
    let mut i = 0;
    while i < code.len() {
        // A fusion of `k` ops starting at `i` is legal only if no branch
        // lands strictly inside it ( `i` itself may be a target).
        let free = |k: usize| (i + 1..i + k).all(|j| !is_target[j]);
        let fused: Option<(Op, usize)> = match &code[i..] {
            [Op::LocalGet(a), Op::Const(c1), Op::IBin(w1, op1), Op::Const(c2), Op::IBin(w2, op2), Op::LocalSet(b), ..]
                if w1 == w2 && fusable_ibin(*op1) && fusable_ibin(*op2) && free(6) =>
            {
                u16s(*a, *b).map(|(a, b)| {
                    let d = ArithFoldData {
                        w: *w1,
                        op1: *op1,
                        op2: *op2,
                        i: a,
                        j: b,
                        c1: *c1,
                        c2: *c2,
                    };
                    (Op::GetConstOpConstOpSet(Box::new(d)), 6)
                })
            }
            [Op::LocalGet(a), Op::LocalSet(b), Op::LocalGet(x), Op::Const(c), Op::IBin(w, op), Op::LocalSet(y), ..]
                if fusable_ibin(*op) && free(6) =>
            {
                u16s(*a, *b).zip(u16s(*x, *y)).map(|((a, b), (i, j))| {
                    let d = CopyArithData {
                        w: *w,
                        op: *op,
                        a,
                        b,
                        i,
                        j,
                        c: *c,
                    };
                    (Op::CopyGetConstOpSet(Box::new(d)), 6)
                })
            }
            [Op::LocalGet(a), Op::Load { ty, offset }, Op::LocalGet(b), Op::IRel(w, op), Op::IfFalse(pc), ..]
                if free(5) =>
            {
                u16s(*a, *b).map(|(i, j)| {
                    let d = LoadCmpData {
                        ty: *ty,
                        w: *w,
                        op: *op,
                        i,
                        j,
                        offset: *offset,
                        pc: *pc,
                    };
                    (Op::GetLoadRelIfFalse(Box::new(d)), 5)
                })
            }
            [Op::LocalGet(a), Op::Const(c), Op::IBin(w1, op1), Op::LocalGet(b), Op::IBin(w2, op2), ..]
                if w1 == w2 && fusable_ibin(*op1) && fusable_ibin(*op2) && free(5) =>
            {
                let d = ArithChainData {
                    w: *w1,
                    op1: *op1,
                    op2: *op2,
                    i: *a,
                    j: *b,
                    c: *c,
                };
                Some((Op::GetConstOpGetOp(Box::new(d)), 5))
            }
            [Op::GlobalGet(g), Op::Const(c), Op::IBin(w, op), Op::GlobalSet { idx, ty }, ..]
                if g == idx && fusable_ibin(*op) && free(4) =>
            {
                u16::try_from(*g)
                    .ok()
                    .map(|g| (Op::GlobalIncr(*w, *op, *ty, g, *c), 4))
            }
            [Op::LocalGet(a), Op::Const(c), Op::IBin(w, op), Op::LocalSet(b), ..]
                if fusable_ibin(*op) && free(4) =>
            {
                u16s(*a, *b).map(|(a, b)| (Op::GetConstOpSet(*w, *op, a, b, *c), 4))
            }
            [Op::LocalGet(a), Op::Const(c), Op::IBin(w, op), Op::GlobalSet { idx, ty }, ..]
                if fusable_ibin(*op) && free(4) =>
            {
                u16s(*a, *idx).map(|(a, g)| (Op::GetConstOpGlobalSet(*w, *op, *ty, a, g, *c), 4))
            }
            [Op::LocalGet(a), Op::Const(c), Op::IBin(w, op), Op::Return { keep: 1 }, ..]
                if fusable_ibin(*op) && free(4) =>
            {
                u16::try_from(*a)
                    .ok()
                    .map(|a| (Op::GetConstOpRet(*w, *op, a, *c), 4))
            }
            [Op::LocalSet(a), Op::LocalGet(b), Op::LocalGet(j), Op::Store { ty, offset }, ..]
                if a == b && free(4) =>
            {
                u16s(*a, *j).map(|(b, j)| (Op::SetGet2Store(*ty, *offset, b, j), 4))
            }
            [Op::Meter, Op::LocalGet(a), Op::ITest(w), Op::BrIf(t), ..] if free(4) => {
                u16::try_from(*a)
                    .ok()
                    .map(|a| (Op::MeterGetTestBr(*w, a, *t), 4))
            }
            [Op::Const(c), Op::LocalSet(j1), Op::GlobalGet(g), Op::LocalSet(j2), ..] if free(4) => {
                u16s(*j1, *g)
                    .zip(u16::try_from(*j2).ok())
                    .map(|((j1, g), j2)| (Op::ConstSetGlobalGetSet(j1, g, j2, *c), 4))
            }
            [Op::LocalGet(a), Op::Const(c), Op::IRel(w, op), Op::BrIf(t), ..] if free(4) => {
                let d = CmpBrData {
                    w: *w,
                    op: *op,
                    i: *a,
                    c: *c,
                    t: *t,
                };
                Some((Op::GetConstRelBr(Box::new(d)), 4))
            }
            [Op::LocalGet(a), Op::Const(c), Op::IRel(w, op), Op::IfFalse(pc), ..] if free(4) => {
                let d = CmpBrData {
                    w: *w,
                    op: *op,
                    i: *a,
                    c: *c,
                    t: BranchTarget {
                        pc: *pc,
                        keep: 0,
                        height: 0,
                    },
                };
                Some((Op::GetConstRelIfFalse(Box::new(d)), 4))
            }
            [Op::Const(c), Op::IRel(w, op), Op::IfFalse(pc), ..] if free(3) => {
                Some((Op::ConstRelIfFalse(*w, *op, *pc, *c), 3))
            }
            [Op::LocalGet(a), Op::Const(c), Op::IBin(w, op), ..]
                if fusable_ibin(*op) && free(3) =>
            {
                Some((Op::GetConstOp(*w, *op, *a, *c), 3))
            }
            [Op::LocalGet(a), Op::Load { ty, offset }, Op::LocalSet(b), ..] if free(3) => {
                u16s(*a, *b).map(|(a, b)| (Op::GetLoadSet(*ty, *offset, a, b), 3))
            }
            [Op::LocalGet(a), Op::LocalGet(b), Op::Store { ty, offset }, ..] if free(3) => {
                u16s(*a, *b).map(|(a, b)| (Op::Get2Store(*ty, *offset, a, b), 3))
            }
            [Op::LocalGet(a), Op::IRel(w, op), Op::IfFalse(pc), ..] if free(3) => u16::try_from(*a)
                .ok()
                .map(|a| (Op::GetRelIfFalse(*w, *op, a, *pc), 3)),
            [Op::LocalGet(a), Op::ITest(w), Op::BrIf(t), ..] if free(3) => u16::try_from(*a)
                .ok()
                .map(|a| (Op::GetTestBr(*w, a, *t), 3)),
            [Op::LocalGet(a), Op::ITest(w), Op::IfFalse(pc), ..] if free(3) => u16::try_from(*a)
                .ok()
                .map(|a| (Op::GetTestIfFalse(*w, a, *pc), 3)),
            [Op::LocalGet(a), Op::GlobalGet(g), Op::Store { ty, offset }, ..] if free(3) => {
                u16s(*a, *g).map(|(a, g)| (Op::GetGlobalStore(*ty, *offset, a, g), 3))
            }
            [Op::LocalGet(a), Op::Load { ty, offset }, Op::GlobalSet { idx, ty: gty }, ..]
                if free(3) =>
            {
                u16s(*a, *idx).map(|(a, g)| (Op::GetLoadGlobalSet(*ty, *gty, *offset, a, g), 3))
            }
            [Op::LocalTee(a), Op::LocalGet(b), Op::Load { ty, offset }, ..]
                if a == b && free(3) =>
            {
                u16::try_from(*a)
                    .ok()
                    .map(|a| (Op::TeeGetLoad(*ty, *offset, a), 3))
            }
            [Op::Const(c), Op::IBin(w, op), Op::LocalSet(b), ..]
                if fusable_ibin(*op) && free(3) =>
            {
                u16::try_from(*b)
                    .ok()
                    .map(|b| (Op::ConstOpSet(*w, *op, b, *c), 3))
            }
            [Op::Const(c), Op::IBin(w, op), ..] if fusable_ibin(*op) && free(2) => {
                Some((Op::ConstOp(*w, *op, *c), 2))
            }
            [Op::LocalGet(a), Op::Load { ty, offset }, ..] if free(2) => {
                Some((Op::GetLoad(*ty, *offset, *a), 2))
            }
            [Op::IRel(w, op), Op::BrIf(t), ..] if free(2) => Some((Op::RelBr(*w, *op, *t), 2)),
            [Op::LocalGet(a), Op::ITest(w), ..] if free(2) => Some((Op::GetTest(*w, *a), 2)),
            [Op::ITest(w), Op::BrIf(t), ..] if free(2) => Some((Op::TestBr(*w, *t), 2)),
            [Op::GlobalGet(g), Op::LocalSet(b), ..] if free(2) => {
                u16s(*g, *b).map(|(g, b)| (Op::GlobalGetSet(g, b), 2))
            }
            [Op::LocalGet(a), Op::LocalSet(b), ..] if free(2) => {
                u16s(*a, *b).map(|(a, b)| (Op::Copy(a, b), 2))
            }
            [Op::LocalGet(a), Op::LocalGet(b), ..] if free(2) => {
                u16s(*a, *b).map(|(a, b)| (Op::Get2(a, b), 2))
            }
            [Op::Const(c), Op::LocalSet(b), ..] if free(2) => {
                u16::try_from(*b).ok().map(|b| (Op::ConstSet(b, *c), 2))
            }
            [Op::Const(c), Op::Call(f), ..] if free(2) => Some((Op::ConstCall(*f, *c), 2)),
            [Op::LocalGet(a), Op::Meter, ..] if free(2) => Some((Op::GetMeter(*a), 2)),
            [Op::Meter, Op::Meter, ..] if free(2) => Some((Op::Meter2, 2)),
            _ => None,
        };
        let (op, k) = fused.unwrap_or_else(|| (code[i].clone(), 1));
        // Interior positions can't be branch targets, but map them to
        // the fused op anyway so the remap below is total.
        for j in 0..k {
            newpos[i + j] = out.len() as u32;
        }
        out.push(op);
        i += k;
    }
    newpos[code.len()] = out.len() as u32;
    let remap = |pc: u32| {
        if pc == ESCAPE_PC {
            ESCAPE_PC
        } else {
            newpos[pc as usize]
        }
    };
    for op in &mut out {
        match op {
            Op::Jump(pc)
            | Op::IfFalse(pc)
            | Op::ConstRelIfFalse(_, _, pc, _)
            | Op::GetRelIfFalse(_, _, _, pc)
            | Op::GetTestIfFalse(_, _, pc) => *pc = remap(*pc),
            Op::GetLoadRelIfFalse(d) => d.pc = remap(d.pc),
            Op::Br(t)
            | Op::BrIf(t)
            | Op::TestBr(_, t)
            | Op::RelBr(_, _, t)
            | Op::GetTestBr(_, _, t)
            | Op::MeterGetTestBr(_, _, t) => t.pc = remap(t.pc),
            Op::GetConstRelBr(d) | Op::GetConstRelIfFalse(d) => d.t.pc = remap(d.t.pc),
            Op::BrTable(d) => {
                for t in &mut d.targets {
                    t.pc = remap(t.pc);
                }
                d.default.pc = remap(d.default.pc);
            }
            _ => {}
        }
    }
    out
}

impl Compiler<'_> {
    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    fn push_n(&mut self, n: u32) {
        self.height += n;
        self.max_height = self.max_height.max(self.height);
    }

    fn pop_n(&mut self, n: u32) -> Result<(), Unsupported> {
        // Validated code never underflows; a shortfall means this body's
        // static heights diverged from the tree-walker — decline it.
        self.height = self.height.checked_sub(n).ok_or(Unsupported)?;
        Ok(())
    }

    /// Resolves relative label `l` to a pre-computed unwind. Forward
    /// targets (block/if ends) are recorded for patching; the caller
    /// supplies the patch constructor for its op shape.
    ///
    /// A branch that targets a **parameterised** `block`/`if` is
    /// declined: the tree-walker truncates such a branch to the height
    /// at entry *including* the params, which differs from the
    /// normal-completion height — post-block heights would be
    /// path-dependent, not expressible with static targets. (RichWasm
    /// lowering uses parameterised blocks only as branch-free scoping
    /// devices, so this never fires on lowered code.)
    fn target(
        &mut self,
        l: u32,
        patch: impl FnOnce(usize) -> Patch,
    ) -> Result<BranchTarget, Unsupported> {
        let Some(idx) = self.frames.len().checked_sub(1 + l as usize) else {
            // Targets the implicit function label: the tree-walker traps.
            return Ok(BranchTarget {
                pc: ESCAPE_PC,
                keep: 0,
                height: 0,
            });
        };
        let op_idx = self.code.len();
        let f = &mut self.frames[idx];
        match f.kind {
            FrameKind::Loop => Ok(BranchTarget {
                pc: f.header_pc,
                keep: f.params,
                height: f.entry_height - f.params,
            }),
            FrameKind::BlockLike | FrameKind::If => {
                if f.params != 0 {
                    return Err(Unsupported);
                }
                f.patches.push(patch(op_idx));
                Ok(BranchTarget {
                    pc: 0, // patched when the frame ends
                    keep: f.results,
                    height: f.entry_height,
                })
            }
        }
    }

    /// Patches every recorded forward branch of `frame` to `end_pc`.
    fn patch_frame(&mut self, frame: Frame, end_pc: u32) {
        for p in frame.patches {
            match p {
                Patch::Br(i) => match &mut self.code[i] {
                    Op::Br(t) | Op::BrIf(t) => t.pc = end_pc,
                    _ => unreachable!("patch points at a non-branch op"),
                },
                Patch::Jump(i) => match &mut self.code[i] {
                    Op::Jump(pc) => *pc = end_pc,
                    _ => unreachable!("patch points at a non-jump op"),
                },
                Patch::Table(i, slot) => match &mut self.code[i] {
                    Op::BrTable(d) => d.targets[slot].pc = end_pc,
                    _ => unreachable!("patch points at a non-table op"),
                },
                Patch::TableDefault(i) => match &mut self.code[i] {
                    Op::BrTable(d) => d.default.pc = end_pc,
                    _ => unreachable!("patch points at a non-table op"),
                },
            }
        }
    }

    fn block_arity(&self, bt: &BlockType) -> Result<(u32, u32), Unsupported> {
        let ft = self.m.block_func_type(bt).ok_or(Unsupported)?;
        Ok((ft.params.len() as u32, ft.results.len() as u32))
    }

    fn seq(&mut self, body: &[WInstr]) -> Result<(), Unsupported> {
        for e in body {
            if self.unreachable {
                // Dead code: the tree-walker never executes it, so the
                // flat body simply omits it (branches out of it cannot
                // fire either). Reachability resumes at the enclosing
                // construct's end.
                continue;
            }
            self.instr(e)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn instr(&mut self, e: &WInstr) -> Result<(), Unsupported> {
        use WInstr::*;
        match e {
            Unreachable => {
                self.code.push(Op::Unreachable);
                self.unreachable = true;
            }
            Nop => self.code.push(Op::Nop),
            Block(bt, body) => {
                let (p, r) = self.block_arity(bt)?;
                // Parameterised blocks compile: the params stay on the
                // stack (the body consumes them), and `entry_height`
                // records the height *including* them — the tree-walker's
                // branch-unwind base. Branches targeting a parameterised
                // block are declined in `target()` (the unwound height
                // would diverge from the normal-completion height below).
                self.code.push(Op::Meter);
                self.frames.push(Frame {
                    kind: FrameKind::BlockLike,
                    entry_height: self.height,
                    params: p,
                    results: r,
                    header_pc: 0,
                    patches: Vec::new(),
                });
                self.seq(body)?;
                let frame = self.frames.pop().expect("frame pushed above");
                let entry = frame.entry_height;
                let end = self.pc();
                self.patch_frame(frame, end);
                // Normal completion: the body consumed the params and
                // pushed the results.
                self.height = entry.checked_sub(p).ok_or(Unsupported)? + r;
                self.max_height = self.max_height.max(self.height);
                self.unreachable = false;
            }
            Loop(bt, body) => {
                let (p, r) = self.block_arity(bt)?;
                if p > self.height {
                    return Err(Unsupported);
                }
                self.code.push(Op::Meter);
                let header_pc = self.pc();
                self.frames.push(Frame {
                    kind: FrameKind::Loop,
                    entry_height: self.height,
                    params: p,
                    results: r,
                    header_pc,
                    patches: Vec::new(),
                });
                self.seq(body)?;
                let frame = self.frames.pop().expect("frame pushed above");
                debug_assert!(frame.patches.is_empty(), "loop ends take no branches");
                self.height = frame.entry_height - p + r;
                self.max_height = self.max_height.max(self.height);
                self.unreachable = false;
            }
            If(bt, t, f) => {
                let (p, r) = self.block_arity(bt)?;
                self.pop_n(1)?; // condition
                let entry = self.height;
                let if_idx = self.code.len();
                self.code.push(Op::IfFalse(0)); // patched to the else arm
                self.frames.push(Frame {
                    kind: FrameKind::If,
                    entry_height: entry,
                    params: p,
                    results: r,
                    header_pc: 0,
                    patches: Vec::new(),
                });
                self.seq(t)?;
                // Synthetic, cost-0: the tree-walker charges nothing when
                // a then-arm completes normally.
                let jump_idx = self.code.len();
                self.code.push(Op::Jump(0));
                self.frames
                    .last_mut()
                    .expect("if frame pushed above")
                    .patches
                    .push(Patch::Jump(jump_idx));
                let else_start = self.pc();
                match &mut self.code[if_idx] {
                    Op::IfFalse(pc) => *pc = else_start,
                    _ => unreachable!("if_idx points at IfFalse"),
                }
                self.height = entry;
                self.unreachable = false;
                self.seq(f)?;
                let frame = self.frames.pop().expect("frame pushed above");
                let end = self.pc();
                self.patch_frame(frame, end);
                self.height = entry.checked_sub(p).ok_or(Unsupported)? + r;
                self.max_height = self.max_height.max(self.height);
                self.unreachable = false;
            }
            Br(l) => {
                let t = self.target(*l, Patch::Br)?;
                self.code.push(Op::Br(t));
                self.unreachable = true;
            }
            BrIf(l) => {
                self.pop_n(1)?;
                let t = self.target(*l, Patch::Br)?;
                self.code.push(Op::BrIf(t));
            }
            BrTable(ls, d) => {
                self.pop_n(1)?;
                let op_idx = self.code.len();
                let targets: Vec<BranchTarget> = ls
                    .iter()
                    .enumerate()
                    .map(|(slot, l)| self.target(*l, move |i| Patch::Table(i, slot)))
                    .collect::<Result<_, _>>()?;
                let default = self.target(*d, Patch::TableDefault)?;
                debug_assert_eq!(op_idx, self.code.len());
                self.code
                    .push(Op::BrTable(Box::new(BrTableData { targets, default })));
                self.unreachable = true;
            }
            Return => {
                let keep = self.nresults;
                self.code.push(Op::Return { keep });
                self.unreachable = true;
            }
            Call(fi) => {
                let ty = self.m.func_type(*fi).ok_or(Unsupported)?;
                let (p, r) = (ty.params.len() as u32, ty.results.len() as u32);
                self.pop_n(p)?;
                self.push_n(r);
                self.code.push(Op::Call(*fi));
            }
            CallIndirect(ti) => {
                let ty = self.m.types.get(*ti as usize).ok_or(Unsupported)?.clone();
                self.pop_n(1)?; // table index
                self.pop_n(ty.params.len() as u32)?;
                self.push_n(ty.results.len() as u32);
                self.code.push(Op::CallIndirect(Box::new(ty)));
            }
            Drop => {
                self.pop_n(1)?;
                self.code.push(Op::Drop);
            }
            Select => {
                self.pop_n(2)?;
                self.code.push(Op::Select);
            }
            LocalGet(i) => {
                self.push_n(1);
                self.code.push(Op::LocalGet(*i));
            }
            LocalSet(i) => {
                self.pop_n(1)?;
                self.code.push(Op::LocalSet(*i));
            }
            LocalTee(i) => self.code.push(Op::LocalTee(*i)),
            GlobalGet(i) => {
                self.push_n(1);
                self.code.push(Op::GlobalGet(*i));
            }
            GlobalSet(i) => {
                self.pop_n(1)?;
                let ty = *self.globals.get(*i as usize).ok_or(Unsupported)?;
                self.code.push(Op::GlobalSet { idx: *i, ty });
            }
            Load(t, off) => {
                // Pops the address, pushes the value: net 0.
                self.code.push(Op::Load {
                    ty: *t,
                    offset: *off,
                });
            }
            Store(t, off) => {
                self.pop_n(2)?;
                self.code.push(Op::Store {
                    ty: *t,
                    offset: *off,
                });
            }
            Load8U(off) => self.code.push(Op::Load8U(*off)),
            Store8(off) => {
                self.pop_n(2)?;
                self.code.push(Op::Store8(*off));
            }
            MemorySize => {
                self.push_n(1);
                self.code.push(Op::MemorySize);
            }
            MemoryGrow => self.code.push(Op::MemoryGrow),
            I32Const(c) => {
                self.push_n(1);
                self.code.push(Op::Const(*c as u32 as u64));
            }
            I64Const(c) => {
                self.push_n(1);
                self.code.push(Op::Const(*c as u64));
            }
            F32Const(c) => {
                self.push_n(1);
                self.code.push(Op::Const(c.to_bits() as u64));
            }
            F64Const(c) => {
                self.push_n(1);
                self.code.push(Op::Const(c.to_bits()));
            }
            IUn(w, op) => self.code.push(Op::IUn(*w, *op)),
            IBin(w, op) => {
                self.pop_n(1)?;
                self.code.push(Op::IBin(*w, *op));
            }
            ITest(w) => self.code.push(Op::ITest(*w)),
            IRel(w, op) => {
                self.pop_n(1)?;
                self.code.push(Op::IRel(*w, *op));
            }
            FUn(w, op) => self.code.push(Op::FUn(*w, *op)),
            FBin(w, op) => {
                self.pop_n(1)?;
                self.code.push(Op::FBin(*w, *op));
            }
            FRel(w, op) => {
                self.pop_n(1)?;
                self.code.push(Op::FRel(*w, *op));
            }
            I32WrapI64 => self.code.push(Op::I32WrapI64),
            I64ExtendI32(sx) => self.code.push(Op::I64ExtendI32(*sx)),
            ITruncF(iw, fw, sx) => self.code.push(Op::ITruncF(*iw, *fw, *sx)),
            FConvertI(fw, iw, sx) => self.code.push(Op::FConvertI(*fw, *iw, *sx)),
            F32DemoteF64 => self.code.push(Op::F32DemoteF64),
            F64PromoteF32 => self.code.push(Op::F64PromoteF32),
            IReinterpretF(w) => self.code.push(Op::IReinterpretF(*w)),
            FReinterpretI(w) => self.code.push(Op::FReinterpretI(*w)),
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Serialisation: the payload of a `.rwart` v3 bytecode section.
// ---------------------------------------------------------------------

/// A failure decoding a serialised [`CompiledModule`] — a stale format
/// version or corrupt bytes. Embedders treat it as "recompile from the
/// decoded module", never as fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bytecode decode error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn codec_err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

/// Serialises a compiled module (deterministic, little-endian, prefixed
/// with [`BYTECODE_VERSION`]). The inverse of [`decode_compiled`].
pub fn encode_compiled(cm: &CompiledModule, out: &mut Vec<u8>) {
    out.extend_from_slice(&BYTECODE_VERSION.to_le_bytes());
    out.extend_from_slice(&(cm.funcs.len() as u32).to_le_bytes());
    for f in &cm.funcs {
        match f {
            None => out.push(0),
            Some(cf) => {
                out.push(1);
                out.extend_from_slice(&cf.nparams.to_le_bytes());
                out.extend_from_slice(&cf.nlocals.to_le_bytes());
                out.extend_from_slice(&cf.max_stack.to_le_bytes());
                out.extend_from_slice(&(cf.result_types.len() as u32).to_le_bytes());
                for t in &cf.result_types {
                    out.push(valtype_tag(*t));
                }
                out.extend_from_slice(&(cf.code.len() as u32).to_le_bytes());
                for op in &cf.code {
                    encode_op(op, out);
                }
            }
        }
    }
}

/// Deserialises the output of [`encode_compiled`].
///
/// # Errors
///
/// [`CodecError`] on a version mismatch or malformed bytes; the caller
/// falls back to recompiling from the decoded module.
pub fn decode_compiled(bytes: &[u8]) -> Result<CompiledModule, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let version = r.u16()?;
    if version != BYTECODE_VERSION {
        return codec_err(format!(
            "bytecode format version {version}, expected {BYTECODE_VERSION}"
        ));
    }
    let nfuncs = r.u32()? as usize;
    if nfuncs > bytes.len() {
        return codec_err("function count exceeds payload size");
    }
    let mut funcs = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        if r.u8()? == 0 {
            funcs.push(None);
            continue;
        }
        let nparams = r.u32()?;
        let nlocals = r.u32()?;
        let max_stack = r.u32()?;
        let nresults = r.u32()? as usize;
        if nresults > bytes.len() {
            return codec_err("result count exceeds payload size");
        }
        let mut result_types = Vec::with_capacity(nresults);
        for _ in 0..nresults {
            result_types.push(valtype_of(r.u8()?)?);
        }
        let ncode = r.u32()? as usize;
        if ncode > bytes.len() {
            return codec_err("op count exceeds payload size");
        }
        let mut code = Vec::with_capacity(ncode);
        for _ in 0..ncode {
            code.push(decode_op(&mut r)?);
        }
        funcs.push(Some(Arc::new(CompiledFunc {
            nparams,
            nlocals,
            result_types,
            max_stack,
            code,
        })));
    }
    if r.pos != bytes.len() {
        return codec_err("trailing bytes after the last function");
    }
    Ok(CompiledModule { funcs })
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| CodecError("unexpected end of payload".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let mut b = [0u8; 4];
        for s in &mut b {
            *s = self.u8()?;
        }
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let mut b = [0u8; 8];
        for s in &mut b {
            *s = self.u8()?;
        }
        Ok(u64::from_le_bytes(b))
    }
}

fn valtype_tag(t: ValType) -> u8 {
    match t {
        ValType::I32 => 0,
        ValType::I64 => 1,
        ValType::F32 => 2,
        ValType::F64 => 3,
    }
}

fn valtype_of(b: u8) -> Result<ValType, CodecError> {
    Ok(match b {
        0 => ValType::I32,
        1 => ValType::I64,
        2 => ValType::F32,
        3 => ValType::F64,
        other => return codec_err(format!("bad value type tag {other}")),
    })
}

fn width_tag(w: Width) -> u8 {
    match w {
        Width::W32 => 0,
        Width::W64 => 1,
    }
}

fn width_of(b: u8) -> Result<Width, CodecError> {
    Ok(match b {
        0 => Width::W32,
        1 => Width::W64,
        other => return codec_err(format!("bad width tag {other}")),
    })
}

fn sx_tag(s: Sx) -> u8 {
    match s {
        Sx::S => 0,
        Sx::U => 1,
    }
}

fn sx_of(b: u8) -> Result<Sx, CodecError> {
    Ok(match b {
        0 => Sx::S,
        1 => Sx::U,
        other => return codec_err(format!("bad signedness tag {other}")),
    })
}

fn ibin_tag(op: IBinOp) -> u8 {
    match op {
        IBinOp::Add => 0,
        IBinOp::Sub => 1,
        IBinOp::Mul => 2,
        IBinOp::Div(Sx::S) => 3,
        IBinOp::Div(Sx::U) => 4,
        IBinOp::Rem(Sx::S) => 5,
        IBinOp::Rem(Sx::U) => 6,
        IBinOp::And => 7,
        IBinOp::Or => 8,
        IBinOp::Xor => 9,
        IBinOp::Shl => 10,
        IBinOp::Shr(Sx::S) => 11,
        IBinOp::Shr(Sx::U) => 12,
        IBinOp::Rotl => 13,
        IBinOp::Rotr => 14,
    }
}

fn ibin_of(b: u8) -> Result<IBinOp, CodecError> {
    Ok(match b {
        0 => IBinOp::Add,
        1 => IBinOp::Sub,
        2 => IBinOp::Mul,
        3 => IBinOp::Div(Sx::S),
        4 => IBinOp::Div(Sx::U),
        5 => IBinOp::Rem(Sx::S),
        6 => IBinOp::Rem(Sx::U),
        7 => IBinOp::And,
        8 => IBinOp::Or,
        9 => IBinOp::Xor,
        10 => IBinOp::Shl,
        11 => IBinOp::Shr(Sx::S),
        12 => IBinOp::Shr(Sx::U),
        13 => IBinOp::Rotl,
        14 => IBinOp::Rotr,
        other => return codec_err(format!("bad ibin tag {other}")),
    })
}

fn irel_tag(op: IRelOp) -> u8 {
    match op {
        IRelOp::Eq => 0,
        IRelOp::Ne => 1,
        IRelOp::Lt(Sx::S) => 2,
        IRelOp::Lt(Sx::U) => 3,
        IRelOp::Gt(Sx::S) => 4,
        IRelOp::Gt(Sx::U) => 5,
        IRelOp::Le(Sx::S) => 6,
        IRelOp::Le(Sx::U) => 7,
        IRelOp::Ge(Sx::S) => 8,
        IRelOp::Ge(Sx::U) => 9,
    }
}

fn irel_of(b: u8) -> Result<IRelOp, CodecError> {
    Ok(match b {
        0 => IRelOp::Eq,
        1 => IRelOp::Ne,
        2 => IRelOp::Lt(Sx::S),
        3 => IRelOp::Lt(Sx::U),
        4 => IRelOp::Gt(Sx::S),
        5 => IRelOp::Gt(Sx::U),
        6 => IRelOp::Le(Sx::S),
        7 => IRelOp::Le(Sx::U),
        8 => IRelOp::Ge(Sx::S),
        9 => IRelOp::Ge(Sx::U),
        other => return codec_err(format!("bad irel tag {other}")),
    })
}

fn iun_tag(op: IUnOp) -> u8 {
    match op {
        IUnOp::Clz => 0,
        IUnOp::Ctz => 1,
        IUnOp::Popcnt => 2,
    }
}

fn iun_of(b: u8) -> Result<IUnOp, CodecError> {
    Ok(match b {
        0 => IUnOp::Clz,
        1 => IUnOp::Ctz,
        2 => IUnOp::Popcnt,
        other => return codec_err(format!("bad iun tag {other}")),
    })
}

fn fbin_tag(op: FBinOp) -> u8 {
    match op {
        FBinOp::Add => 0,
        FBinOp::Sub => 1,
        FBinOp::Mul => 2,
        FBinOp::Div => 3,
        FBinOp::Min => 4,
        FBinOp::Max => 5,
        FBinOp::Copysign => 6,
    }
}

fn fbin_of(b: u8) -> Result<FBinOp, CodecError> {
    Ok(match b {
        0 => FBinOp::Add,
        1 => FBinOp::Sub,
        2 => FBinOp::Mul,
        3 => FBinOp::Div,
        4 => FBinOp::Min,
        5 => FBinOp::Max,
        6 => FBinOp::Copysign,
        other => return codec_err(format!("bad fbin tag {other}")),
    })
}

fn frel_tag(op: FRelOp) -> u8 {
    match op {
        FRelOp::Eq => 0,
        FRelOp::Ne => 1,
        FRelOp::Lt => 2,
        FRelOp::Gt => 3,
        FRelOp::Le => 4,
        FRelOp::Ge => 5,
    }
}

fn frel_of(b: u8) -> Result<FRelOp, CodecError> {
    Ok(match b {
        0 => FRelOp::Eq,
        1 => FRelOp::Ne,
        2 => FRelOp::Lt,
        3 => FRelOp::Gt,
        4 => FRelOp::Le,
        5 => FRelOp::Ge,
        other => return codec_err(format!("bad frel tag {other}")),
    })
}

fn fun_tag(op: FUnOp) -> u8 {
    match op {
        FUnOp::Abs => 0,
        FUnOp::Neg => 1,
        FUnOp::Sqrt => 2,
        FUnOp::Ceil => 3,
        FUnOp::Floor => 4,
        FUnOp::Trunc => 5,
        FUnOp::Nearest => 6,
    }
}

fn fun_of(b: u8) -> Result<FUnOp, CodecError> {
    Ok(match b {
        0 => FUnOp::Abs,
        1 => FUnOp::Neg,
        2 => FUnOp::Sqrt,
        3 => FUnOp::Ceil,
        4 => FUnOp::Floor,
        5 => FUnOp::Trunc,
        6 => FUnOp::Nearest,
        other => return codec_err(format!("bad fun tag {other}")),
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_target(out: &mut Vec<u8>, t: &BranchTarget) {
    put_u32(out, t.pc);
    put_u32(out, t.keep);
    put_u32(out, t.height);
}

fn read_target(r: &mut Reader<'_>) -> Result<BranchTarget, CodecError> {
    Ok(BranchTarget {
        pc: r.u32()?,
        keep: r.u32()?,
        height: r.u32()?,
    })
}

#[allow(clippy::too_many_lines)]
fn encode_op(op: &Op, out: &mut Vec<u8>) {
    match op {
        Op::Unreachable => out.push(0),
        Op::Nop => out.push(1),
        Op::Meter => out.push(2),
        Op::Jump(pc) => {
            out.push(3);
            put_u32(out, *pc);
        }
        Op::IfFalse(pc) => {
            out.push(4);
            put_u32(out, *pc);
        }
        Op::Br(t) => {
            out.push(5);
            put_target(out, t);
        }
        Op::BrIf(t) => {
            out.push(6);
            put_target(out, t);
        }
        Op::BrTable(d) => {
            out.push(7);
            put_u32(out, d.targets.len() as u32);
            for t in &d.targets {
                put_target(out, t);
            }
            put_target(out, &d.default);
        }
        Op::Return { keep } => {
            out.push(8);
            put_u32(out, *keep);
        }
        Op::FallRet { keep } => {
            out.push(9);
            put_u32(out, *keep);
        }
        Op::Call(f) => {
            out.push(10);
            put_u32(out, *f);
        }
        Op::CallIndirect(ft) => {
            out.push(11);
            put_u32(out, ft.params.len() as u32);
            for t in &ft.params {
                out.push(valtype_tag(*t));
            }
            put_u32(out, ft.results.len() as u32);
            for t in &ft.results {
                out.push(valtype_tag(*t));
            }
        }
        Op::Drop => out.push(12),
        Op::Select => out.push(13),
        Op::LocalGet(i) => {
            out.push(14);
            put_u32(out, *i);
        }
        Op::LocalSet(i) => {
            out.push(15);
            put_u32(out, *i);
        }
        Op::LocalTee(i) => {
            out.push(16);
            put_u32(out, *i);
        }
        Op::GlobalGet(i) => {
            out.push(17);
            put_u32(out, *i);
        }
        Op::GlobalSet { idx, ty } => {
            out.push(18);
            put_u32(out, *idx);
            out.push(valtype_tag(*ty));
        }
        Op::Load { ty, offset } => {
            out.push(19);
            out.push(valtype_tag(*ty));
            put_u32(out, *offset);
        }
        Op::Store { ty, offset } => {
            out.push(20);
            out.push(valtype_tag(*ty));
            put_u32(out, *offset);
        }
        Op::Load8U(off) => {
            out.push(21);
            put_u32(out, *off);
        }
        Op::Store8(off) => {
            out.push(22);
            put_u32(out, *off);
        }
        Op::MemorySize => out.push(23),
        Op::MemoryGrow => out.push(24),
        Op::Const(v) => {
            out.push(25);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Op::IUn(w, op) => {
            out.push(26);
            out.push(width_tag(*w));
            out.push(iun_tag(*op));
        }
        Op::IBin(w, op) => {
            out.push(27);
            out.push(width_tag(*w));
            out.push(ibin_tag(*op));
        }
        Op::ITest(w) => {
            out.push(28);
            out.push(width_tag(*w));
        }
        Op::IRel(w, op) => {
            out.push(29);
            out.push(width_tag(*w));
            out.push(irel_tag(*op));
        }
        Op::FUn(w, op) => {
            out.push(30);
            out.push(width_tag(*w));
            out.push(fun_tag(*op));
        }
        Op::FBin(w, op) => {
            out.push(31);
            out.push(width_tag(*w));
            out.push(fbin_tag(*op));
        }
        Op::FRel(w, op) => {
            out.push(32);
            out.push(width_tag(*w));
            out.push(frel_tag(*op));
        }
        Op::I32WrapI64 => out.push(33),
        Op::I64ExtendI32(sx) => {
            out.push(34);
            out.push(sx_tag(*sx));
        }
        Op::ITruncF(iw, fw, sx) => {
            out.push(35);
            out.push(width_tag(*iw));
            out.push(width_tag(*fw));
            out.push(sx_tag(*sx));
        }
        Op::FConvertI(fw, iw, sx) => {
            out.push(36);
            out.push(width_tag(*fw));
            out.push(width_tag(*iw));
            out.push(sx_tag(*sx));
        }
        Op::F32DemoteF64 => out.push(37),
        Op::F64PromoteF32 => out.push(38),
        Op::IReinterpretF(w) => {
            out.push(39);
            out.push(width_tag(*w));
        }
        Op::FReinterpretI(w) => {
            out.push(40);
            out.push(width_tag(*w));
        }
        Op::GetConstOp(w, op, i, c) => {
            out.push(41);
            out.push(width_tag(*w));
            out.push(ibin_tag(*op));
            put_u32(out, *i);
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::GetConstOpSet(w, op, i, j, c) => {
            out.push(42);
            out.push(width_tag(*w));
            out.push(ibin_tag(*op));
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&j.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::GlobalIncr(w, op, ty, g, c) => {
            out.push(43);
            out.push(width_tag(*w));
            out.push(ibin_tag(*op));
            out.push(valtype_tag(*ty));
            out.extend_from_slice(&g.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::ConstOp(w, op, c) => {
            out.push(44);
            out.push(width_tag(*w));
            out.push(ibin_tag(*op));
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::ConstRelIfFalse(w, op, pc, c) => {
            out.push(45);
            out.push(width_tag(*w));
            out.push(irel_tag(*op));
            put_u32(out, *pc);
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::GetLoad(ty, offset, i) => {
            out.push(46);
            out.push(valtype_tag(*ty));
            put_u32(out, *offset);
            put_u32(out, *i);
        }
        Op::TestBr(w, t) => {
            out.push(47);
            out.push(width_tag(*w));
            put_target(out, t);
        }
        Op::GetTest(w, i) => {
            out.push(48);
            out.push(width_tag(*w));
            put_u32(out, *i);
        }
        Op::Copy(i, j) => {
            out.push(49);
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&j.to_le_bytes());
        }
        Op::Get2(i, j) => {
            out.push(50);
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&j.to_le_bytes());
        }
        Op::ConstSet(j, c) => {
            out.push(51);
            out.extend_from_slice(&j.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::GetConstRelBr(d) | Op::GetConstRelIfFalse(d) => {
            out.push(if matches!(op, Op::GetConstRelBr(_)) {
                52
            } else {
                53
            });
            out.push(width_tag(d.w));
            out.push(irel_tag(d.op));
            put_u32(out, d.i);
            out.extend_from_slice(&d.c.to_le_bytes());
            put_target(out, &d.t);
        }
        Op::RelBr(w, op, t) => {
            out.push(54);
            out.push(width_tag(*w));
            out.push(irel_tag(*op));
            put_target(out, t);
        }
        Op::GetRelIfFalse(w, op, i, pc) => {
            out.push(55);
            out.push(width_tag(*w));
            out.push(irel_tag(*op));
            out.extend_from_slice(&i.to_le_bytes());
            put_u32(out, *pc);
        }
        Op::GetLoadSet(ty, offset, i, j) => {
            out.push(56);
            out.push(valtype_tag(*ty));
            put_u32(out, *offset);
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&j.to_le_bytes());
        }
        Op::Get2Store(ty, offset, i, j) => {
            out.push(57);
            out.push(valtype_tag(*ty));
            put_u32(out, *offset);
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&j.to_le_bytes());
        }
        Op::ConstOpSet(w, op, j, c) => {
            out.push(58);
            out.push(width_tag(*w));
            out.push(ibin_tag(*op));
            out.extend_from_slice(&j.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::GlobalGetSet(g, j) => {
            out.push(59);
            out.extend_from_slice(&g.to_le_bytes());
            out.extend_from_slice(&j.to_le_bytes());
        }
        Op::Meter2 => out.push(60),
        Op::GetTestBr(w, i, t) => {
            out.push(61);
            out.push(width_tag(*w));
            out.extend_from_slice(&i.to_le_bytes());
            put_target(out, t);
        }
        Op::GetTestIfFalse(w, i, pc) => {
            out.push(62);
            out.push(width_tag(*w));
            out.extend_from_slice(&i.to_le_bytes());
            put_u32(out, *pc);
        }
        Op::GetGlobalStore(ty, offset, i, g) => {
            out.push(63);
            out.push(valtype_tag(*ty));
            put_u32(out, *offset);
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&g.to_le_bytes());
        }
        Op::GetLoadGlobalSet(ty, gty, offset, i, g) => {
            out.push(64);
            out.push(valtype_tag(*ty));
            out.push(valtype_tag(*gty));
            put_u32(out, *offset);
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&g.to_le_bytes());
        }
        Op::TeeGetLoad(ty, offset, i) => {
            out.push(65);
            out.push(valtype_tag(*ty));
            put_u32(out, *offset);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Op::GetConstOpGetOp(d) => {
            out.push(66);
            out.push(width_tag(d.w));
            out.push(ibin_tag(d.op1));
            out.push(ibin_tag(d.op2));
            put_u32(out, d.i);
            put_u32(out, d.j);
            out.extend_from_slice(&d.c.to_le_bytes());
        }
        Op::ConstCall(f, c) => {
            out.push(67);
            put_u32(out, *f);
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::MeterGetTestBr(w, i, t) => {
            out.push(68);
            out.push(width_tag(*w));
            out.extend_from_slice(&i.to_le_bytes());
            put_target(out, t);
        }
        Op::GetMeter(i) => {
            out.push(69);
            put_u32(out, *i);
        }
        Op::GetConstOpGlobalSet(w, op, gty, i, g, c) => {
            out.push(70);
            out.push(width_tag(*w));
            out.push(ibin_tag(*op));
            out.push(valtype_tag(*gty));
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&g.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::ConstSetGlobalGetSet(j1, g, j2, c) => {
            out.push(71);
            out.extend_from_slice(&j1.to_le_bytes());
            out.extend_from_slice(&g.to_le_bytes());
            out.extend_from_slice(&j2.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::GetConstOpConstOpSet(d) => {
            out.push(72);
            out.push(width_tag(d.w));
            out.push(ibin_tag(d.op1));
            out.push(ibin_tag(d.op2));
            out.extend_from_slice(&d.i.to_le_bytes());
            out.extend_from_slice(&d.j.to_le_bytes());
            out.extend_from_slice(&d.c1.to_le_bytes());
            out.extend_from_slice(&d.c2.to_le_bytes());
        }
        Op::GetConstOpRet(w, op, i, c) => {
            out.push(73);
            out.push(width_tag(*w));
            out.push(ibin_tag(*op));
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        Op::GetLoadRelIfFalse(d) => {
            out.push(74);
            out.push(valtype_tag(d.ty));
            out.push(width_tag(d.w));
            out.push(irel_tag(d.op));
            out.extend_from_slice(&d.i.to_le_bytes());
            out.extend_from_slice(&d.j.to_le_bytes());
            put_u32(out, d.offset);
            put_u32(out, d.pc);
        }
        Op::SetGet2Store(ty, offset, b, j) => {
            out.push(76);
            out.push(valtype_tag(*ty));
            put_u32(out, *offset);
            out.extend_from_slice(&b.to_le_bytes());
            out.extend_from_slice(&j.to_le_bytes());
        }
        Op::CopyGetConstOpSet(d) => {
            out.push(75);
            out.push(width_tag(d.w));
            out.push(ibin_tag(d.op));
            out.extend_from_slice(&d.a.to_le_bytes());
            out.extend_from_slice(&d.b.to_le_bytes());
            out.extend_from_slice(&d.i.to_le_bytes());
            out.extend_from_slice(&d.j.to_le_bytes());
            out.extend_from_slice(&d.c.to_le_bytes());
        }
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<Op, CodecError> {
    Ok(match r.u8()? {
        0 => Op::Unreachable,
        1 => Op::Nop,
        2 => Op::Meter,
        3 => Op::Jump(r.u32()?),
        4 => Op::IfFalse(r.u32()?),
        5 => Op::Br(read_target(r)?),
        6 => Op::BrIf(read_target(r)?),
        7 => {
            let n = r.u32()? as usize;
            if n > r.bytes.len() {
                return codec_err("br_table target count exceeds payload size");
            }
            let mut targets = Vec::with_capacity(n);
            for _ in 0..n {
                targets.push(read_target(r)?);
            }
            let default = read_target(r)?;
            Op::BrTable(Box::new(BrTableData { targets, default }))
        }
        8 => Op::Return { keep: r.u32()? },
        9 => Op::FallRet { keep: r.u32()? },
        10 => Op::Call(r.u32()?),
        11 => {
            let np = r.u32()? as usize;
            if np > r.bytes.len() {
                return codec_err("param count exceeds payload size");
            }
            let mut params = Vec::with_capacity(np);
            for _ in 0..np {
                params.push(valtype_of(r.u8()?)?);
            }
            let nr = r.u32()? as usize;
            if nr > r.bytes.len() {
                return codec_err("result count exceeds payload size");
            }
            let mut results = Vec::with_capacity(nr);
            for _ in 0..nr {
                results.push(valtype_of(r.u8()?)?);
            }
            Op::CallIndirect(Box::new(FuncType { params, results }))
        }
        12 => Op::Drop,
        13 => Op::Select,
        14 => Op::LocalGet(r.u32()?),
        15 => Op::LocalSet(r.u32()?),
        16 => Op::LocalTee(r.u32()?),
        17 => Op::GlobalGet(r.u32()?),
        18 => Op::GlobalSet {
            idx: r.u32()?,
            ty: valtype_of(r.u8()?)?,
        },
        19 => Op::Load {
            ty: valtype_of(r.u8()?)?,
            offset: r.u32()?,
        },
        20 => Op::Store {
            ty: valtype_of(r.u8()?)?,
            offset: r.u32()?,
        },
        21 => Op::Load8U(r.u32()?),
        22 => Op::Store8(r.u32()?),
        23 => Op::MemorySize,
        24 => Op::MemoryGrow,
        25 => Op::Const(r.u64()?),
        26 => Op::IUn(width_of(r.u8()?)?, iun_of(r.u8()?)?),
        27 => Op::IBin(width_of(r.u8()?)?, ibin_of(r.u8()?)?),
        28 => Op::ITest(width_of(r.u8()?)?),
        29 => Op::IRel(width_of(r.u8()?)?, irel_of(r.u8()?)?),
        30 => Op::FUn(width_of(r.u8()?)?, fun_of(r.u8()?)?),
        31 => Op::FBin(width_of(r.u8()?)?, fbin_of(r.u8()?)?),
        32 => Op::FRel(width_of(r.u8()?)?, frel_of(r.u8()?)?),
        33 => Op::I32WrapI64,
        34 => Op::I64ExtendI32(sx_of(r.u8()?)?),
        35 => Op::ITruncF(width_of(r.u8()?)?, width_of(r.u8()?)?, sx_of(r.u8()?)?),
        36 => Op::FConvertI(width_of(r.u8()?)?, width_of(r.u8()?)?, sx_of(r.u8()?)?),
        37 => Op::F32DemoteF64,
        38 => Op::F64PromoteF32,
        39 => Op::IReinterpretF(width_of(r.u8()?)?),
        40 => Op::FReinterpretI(width_of(r.u8()?)?),
        41 => Op::GetConstOp(width_of(r.u8()?)?, ibin_of(r.u8()?)?, r.u32()?, r.u64()?),
        42 => Op::GetConstOpSet(
            width_of(r.u8()?)?,
            ibin_of(r.u8()?)?,
            r.u16()?,
            r.u16()?,
            r.u64()?,
        ),
        43 => Op::GlobalIncr(
            width_of(r.u8()?)?,
            ibin_of(r.u8()?)?,
            valtype_of(r.u8()?)?,
            r.u16()?,
            r.u64()?,
        ),
        44 => Op::ConstOp(width_of(r.u8()?)?, ibin_of(r.u8()?)?, r.u64()?),
        45 => Op::ConstRelIfFalse(width_of(r.u8()?)?, irel_of(r.u8()?)?, r.u32()?, r.u64()?),
        46 => Op::GetLoad(valtype_of(r.u8()?)?, r.u32()?, r.u32()?),
        47 => Op::TestBr(width_of(r.u8()?)?, read_target(r)?),
        48 => Op::GetTest(width_of(r.u8()?)?, r.u32()?),
        49 => Op::Copy(r.u16()?, r.u16()?),
        50 => Op::Get2(r.u16()?, r.u16()?),
        51 => Op::ConstSet(r.u16()?, r.u64()?),
        tag @ (52 | 53) => {
            let d = CmpBrData {
                w: width_of(r.u8()?)?,
                op: irel_of(r.u8()?)?,
                i: r.u32()?,
                c: r.u64()?,
                t: read_target(r)?,
            };
            if tag == 52 {
                Op::GetConstRelBr(Box::new(d))
            } else {
                Op::GetConstRelIfFalse(Box::new(d))
            }
        }
        54 => Op::RelBr(width_of(r.u8()?)?, irel_of(r.u8()?)?, read_target(r)?),
        55 => Op::GetRelIfFalse(width_of(r.u8()?)?, irel_of(r.u8()?)?, r.u16()?, r.u32()?),
        56 => Op::GetLoadSet(valtype_of(r.u8()?)?, r.u32()?, r.u16()?, r.u16()?),
        57 => Op::Get2Store(valtype_of(r.u8()?)?, r.u32()?, r.u16()?, r.u16()?),
        58 => Op::ConstOpSet(width_of(r.u8()?)?, ibin_of(r.u8()?)?, r.u16()?, r.u64()?),
        59 => Op::GlobalGetSet(r.u16()?, r.u16()?),
        60 => Op::Meter2,
        61 => Op::GetTestBr(width_of(r.u8()?)?, r.u16()?, read_target(r)?),
        62 => Op::GetTestIfFalse(width_of(r.u8()?)?, r.u16()?, r.u32()?),
        63 => Op::GetGlobalStore(valtype_of(r.u8()?)?, r.u32()?, r.u16()?, r.u16()?),
        64 => Op::GetLoadGlobalSet(
            valtype_of(r.u8()?)?,
            valtype_of(r.u8()?)?,
            r.u32()?,
            r.u16()?,
            r.u16()?,
        ),
        65 => Op::TeeGetLoad(valtype_of(r.u8()?)?, r.u32()?, r.u16()?),
        66 => {
            let d = ArithChainData {
                w: width_of(r.u8()?)?,
                op1: ibin_of(r.u8()?)?,
                op2: ibin_of(r.u8()?)?,
                i: r.u32()?,
                j: r.u32()?,
                c: r.u64()?,
            };
            Op::GetConstOpGetOp(Box::new(d))
        }
        67 => Op::ConstCall(r.u32()?, r.u64()?),
        68 => Op::MeterGetTestBr(width_of(r.u8()?)?, r.u16()?, read_target(r)?),
        69 => Op::GetMeter(r.u32()?),
        70 => Op::GetConstOpGlobalSet(
            width_of(r.u8()?)?,
            ibin_of(r.u8()?)?,
            valtype_of(r.u8()?)?,
            r.u16()?,
            r.u16()?,
            r.u64()?,
        ),
        71 => Op::ConstSetGlobalGetSet(r.u16()?, r.u16()?, r.u16()?, r.u64()?),
        72 => {
            let d = ArithFoldData {
                w: width_of(r.u8()?)?,
                op1: ibin_of(r.u8()?)?,
                op2: ibin_of(r.u8()?)?,
                i: r.u16()?,
                j: r.u16()?,
                c1: r.u64()?,
                c2: r.u64()?,
            };
            Op::GetConstOpConstOpSet(Box::new(d))
        }
        73 => Op::GetConstOpRet(width_of(r.u8()?)?, ibin_of(r.u8()?)?, r.u16()?, r.u64()?),
        74 => {
            let d = LoadCmpData {
                ty: valtype_of(r.u8()?)?,
                w: width_of(r.u8()?)?,
                op: irel_of(r.u8()?)?,
                i: r.u16()?,
                j: r.u16()?,
                offset: r.u32()?,
                pc: r.u32()?,
            };
            Op::GetLoadRelIfFalse(Box::new(d))
        }
        75 => {
            let d = CopyArithData {
                w: width_of(r.u8()?)?,
                op: ibin_of(r.u8()?)?,
                a: r.u16()?,
                b: r.u16()?,
                i: r.u16()?,
                j: r.u16()?,
                c: r.u64()?,
            };
            Op::CopyGetConstOpSet(Box::new(d))
        }
        76 => Op::SetGet2Store(valtype_of(r.u8()?)?, r.u32()?, r.u16()?, r.u16()?),
        other => return codec_err(format!("bad op tag {other}")),
    })
}
