//! Differential tests for the flat-bytecode tier: every module runs
//! under both the tree-walking interpreter and the bytecode VM, and the
//! two must agree on results, trap messages, **and** fuel consumption
//! step-for-step — the property the fuzz farm's check mode pins at
//! scale.

use richwasm_wasm::ast::*;
use richwasm_wasm::compile::{compile_module, decode_compiled, encode_compiled};
use richwasm_wasm::exec::{Val, WasmLinker};

fn one_func(
    params: Vec<ValType>,
    results: Vec<ValType>,
    locals: Vec<ValType>,
    body: Vec<WInstr>,
) -> Module {
    let mut m = Module::default();
    let t = m.intern_type(FuncType { params, results });
    m.funcs.push(FuncDef {
        type_idx: t,
        locals,
        body,
    });
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(0),
    });
    m
}

/// Instantiates `m` twice — once plain, once with the compiled module
/// attached — invokes `name` with `args` on both, and asserts the
/// outcomes (value or trap message) and step counts are identical.
/// Returns the shared outcome.
fn differential(m: &Module, name: &str, args: &[Val]) -> Result<Vec<Val>, String> {
    let compiled = compile_module(m);

    let mut tree = WasmLinker::new();
    let ti = tree.instantiate("m", m.clone()).expect("tree instantiate");
    let tree_out = tree.invoke(ti, name, args).map_err(|e| e.to_string());

    let mut vm = WasmLinker::new();
    let vi = vm.instantiate("m", m.clone()).expect("vm instantiate");
    vm.attach_compiled(vi, &compiled).expect("attach");
    let vm_out = vm.invoke(vi, name, args).map_err(|e| e.to_string());

    assert_eq!(tree_out, vm_out, "engines disagree on outcome");
    assert_eq!(
        tree.last_steps(),
        vm.last_steps(),
        "engines disagree on fuel for outcome {tree_out:?}"
    );
    tree_out
}

#[test]
fn arithmetic_agrees() {
    let m = one_func(
        vec![ValType::I32, ValType::I32],
        vec![ValType::I32],
        vec![],
        vec![
            WInstr::LocalGet(0),
            WInstr::LocalGet(1),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    );
    assert_eq!(
        differential(&m, "f", &[Val::I32(2), Val::I32(40)]).unwrap(),
        vec![Val::I32(42)]
    );
}

#[test]
fn factorial_loop_agrees() {
    let body = vec![
        WInstr::I32Const(1),
        WInstr::LocalSet(1),
        WInstr::Block(
            BlockType::Empty,
            vec![WInstr::Loop(
                BlockType::Empty,
                vec![
                    WInstr::LocalGet(0),
                    WInstr::ITest(Width::W32),
                    WInstr::BrIf(1),
                    WInstr::LocalGet(1),
                    WInstr::LocalGet(0),
                    WInstr::IBin(Width::W32, IBinOp::Mul),
                    WInstr::LocalSet(1),
                    WInstr::LocalGet(0),
                    WInstr::I32Const(1),
                    WInstr::IBin(Width::W32, IBinOp::Sub),
                    WInstr::LocalSet(0),
                    WInstr::Br(0),
                ],
            )],
        ),
        WInstr::LocalGet(1),
    ];
    let m = one_func(
        vec![ValType::I32],
        vec![ValType::I32],
        vec![ValType::I32],
        body,
    );
    for n in 0..10 {
        assert!(differential(&m, "f", &[Val::I32(n)]).is_ok());
    }
}

#[test]
fn if_else_and_select_agree() {
    let m = one_func(
        vec![ValType::I32],
        vec![ValType::I32],
        vec![],
        vec![
            WInstr::LocalGet(0),
            WInstr::If(
                BlockType::Value(ValType::I32),
                vec![WInstr::I32Const(10)],
                vec![WInstr::I32Const(20)],
            ),
            WInstr::I32Const(1),
            WInstr::I32Const(2),
            WInstr::LocalGet(0),
            WInstr::Select,
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    );
    assert_eq!(
        differential(&m, "f", &[Val::I32(1)]).unwrap(),
        vec![Val::I32(11)]
    );
    assert_eq!(
        differential(&m, "f", &[Val::I32(0)]).unwrap(),
        vec![Val::I32(22)]
    );
}

#[test]
fn br_table_agrees() {
    // br_table over three outcomes through nested blocks.
    let m = one_func(
        vec![ValType::I32],
        vec![ValType::I32],
        vec![],
        vec![
            WInstr::Block(
                BlockType::Empty,
                vec![
                    WInstr::Block(
                        BlockType::Empty,
                        vec![WInstr::LocalGet(0), WInstr::BrTable(vec![0, 1], 1)],
                    ),
                    WInstr::I32Const(100),
                    WInstr::LocalSet(0),
                    WInstr::Br(0),
                ],
            ),
            WInstr::LocalGet(0),
        ],
    );
    // index 0 -> inner block end -> writes 100; index 1 or default
    // (>=2) -> outer block end -> local unchanged.
    assert_eq!(
        differential(&m, "f", &[Val::I32(0)]).unwrap(),
        vec![Val::I32(100)]
    );
    assert_eq!(
        differential(&m, "f", &[Val::I32(1)]).unwrap(),
        vec![Val::I32(1)]
    );
    assert_eq!(
        differential(&m, "f", &[Val::I32(7)]).unwrap(),
        vec![Val::I32(7)]
    );
}

#[test]
fn memory_and_globals_agree() {
    let mut m = one_func(
        vec![],
        vec![ValType::I64],
        vec![],
        vec![
            WInstr::I32Const(8),
            WInstr::I64Const(0x1122_3344_5566_7788),
            WInstr::Store(ValType::I64, 0),
            WInstr::GlobalGet(0),
            WInstr::I32Const(1),
            WInstr::IBin(Width::W32, IBinOp::Add),
            WInstr::GlobalSet(0),
            WInstr::I32Const(8),
            WInstr::Load(ValType::I64, 0),
            WInstr::GlobalGet(0),
            WInstr::I64ExtendI32(Sx::U),
            WInstr::IBin(Width::W64, IBinOp::Add),
        ],
    );
    m.memory = Some(1);
    m.globals.push(GlobalDef {
        ty: ValType::I32,
        mutable: true,
        init: WInstr::I32Const(5),
    });
    assert_eq!(
        differential(&m, "f", &[]).unwrap(),
        vec![Val::I64(0x1122_3344_5566_778E)]
    );
}

#[test]
fn calls_and_call_indirect_agree() {
    let mut m = Module::default();
    let t_i32 = m.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    // f0: doubles via direct call to f1; f1: n + n; f2: n * 3 (via table)
    m.funcs.push(FuncDef {
        type_idx: t_i32,
        locals: vec![],
        body: vec![
            WInstr::LocalGet(0),
            WInstr::Call(1),
            WInstr::LocalGet(0),
            WInstr::I32Const(1),
            WInstr::CallIndirect(t_i32),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    });
    m.funcs.push(FuncDef {
        type_idx: t_i32,
        locals: vec![],
        body: vec![
            WInstr::LocalGet(0),
            WInstr::LocalGet(0),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    });
    m.funcs.push(FuncDef {
        type_idx: t_i32,
        locals: vec![],
        body: vec![
            WInstr::LocalGet(0),
            WInstr::I32Const(3),
            WInstr::IBin(Width::W32, IBinOp::Mul),
        ],
    });
    m.table = Some(2);
    m.elems.push(ElemSegment {
        offset: 0,
        funcs: vec![1, 2],
    });
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(0),
    });
    // 2n + 3n = 5n
    assert_eq!(
        differential(&m, "f", &[Val::I32(7)]).unwrap(),
        vec![Val::I32(35)]
    );
    // Uninitialised table entry traps identically.
    let mut bad = m.clone();
    bad.funcs[0].body[4] = WInstr::CallIndirect(t_i32);
    bad.funcs[0].body[3] = WInstr::I32Const(5);
    let err = differential(&bad, "f", &[Val::I32(1)]).unwrap_err();
    assert!(err.contains("uninitialised table entry"), "{err}");
}

#[test]
fn float_ops_agree() {
    let m = one_func(
        vec![ValType::F64],
        vec![ValType::I32],
        vec![],
        vec![
            WInstr::LocalGet(0),
            WInstr::FUn(Width::W64, FUnOp::Nearest),
            WInstr::F32DemoteF64,
            WInstr::F64PromoteF32,
            WInstr::ITruncF(Width::W32, Width::W64, Sx::S),
        ],
    );
    for x in [0.5, 1.5, 2.5, -2.5, 3.7, 1e6] {
        assert!(differential(&m, "f", &[Val::F64(x)]).is_ok());
    }
    // Trap paths agree too (NaN and overflow).
    let err = differential(&m, "f", &[Val::F64(f64::NAN)]).unwrap_err();
    assert!(err.contains("invalid conversion"), "{err}");
    let err = differential(&m, "f", &[Val::F64(1e300)]).unwrap_err();
    assert!(err.contains("integer overflow"), "{err}");
}

#[test]
fn traps_agree() {
    let div = one_func(
        vec![],
        vec![ValType::I32],
        vec![],
        vec![
            WInstr::I32Const(1),
            WInstr::I32Const(0),
            WInstr::IBin(Width::W32, IBinOp::Div(Sx::S)),
        ],
    );
    let err = differential(&div, "f", &[]).unwrap_err();
    assert!(err.contains("divide by zero"), "{err}");

    let unr = one_func(vec![], vec![], vec![], vec![WInstr::Unreachable]);
    let err = differential(&unr, "f", &[]).unwrap_err();
    assert!(err.contains("unreachable executed"), "{err}");
}

/// Fuel parity at the exact boundary: for a loop workload, find the
/// tree-walker's step count, then check both engines complete at
/// exactly that budget and trap at one less.
#[test]
fn fuel_boundary_identical() {
    let body = vec![
        WInstr::Block(
            BlockType::Empty,
            vec![WInstr::Loop(
                BlockType::Empty,
                vec![
                    WInstr::LocalGet(0),
                    WInstr::ITest(Width::W32),
                    WInstr::BrIf(1),
                    WInstr::LocalGet(0),
                    WInstr::I32Const(1),
                    WInstr::IBin(Width::W32, IBinOp::Sub),
                    WInstr::LocalSet(0),
                    WInstr::Br(0),
                ],
            )],
        ),
        WInstr::LocalGet(0),
    ];
    let m = one_func(vec![ValType::I32], vec![ValType::I32], vec![], body);
    let compiled = compile_module(&m);

    let mut tree = WasmLinker::new();
    let ti = tree.instantiate("m", m.clone()).unwrap();
    tree.invoke(ti, "f", &[Val::I32(10)]).unwrap();
    let need = tree.last_steps();

    for (attach, label) in [(false, "tree"), (true, "bytecode")] {
        let mut l = WasmLinker::new();
        let i = l.instantiate("m", m.clone()).unwrap();
        if attach {
            assert!(l.attach_compiled(i, &compiled).unwrap() > 0);
        }
        l.max_steps = need;
        l.invoke(i, "f", &[Val::I32(10)])
            .unwrap_or_else(|e| panic!("{label}: should finish at budget {need}: {e}"));
        l.max_steps = need - 1;
        let err = l.invoke(i, "f", &[Val::I32(10)]).unwrap_err();
        assert!(
            err.is_fuel_exhausted(),
            "{label}: expected fuel trap at {}, got {err}",
            need - 1
        );
    }
}

/// The compiler declines functions using parameterised blocks (the
/// tree-walker's unwind makes their stack heights dynamic); such
/// modules still execute correctly with the declining function
/// tree-walked and the rest compiled.
#[test]
fn parameterised_blocks_decline_but_interoperate() {
    let mut m = Module::default();
    let t_unary = m.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    let t_block = m.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    // f0 uses a branch-free parameterised block — the shape RichWasm
    // lowering emits (a scoping device) — which compiles; it calls f1.
    m.funcs.push(FuncDef {
        type_idx: t_unary,
        locals: vec![],
        body: vec![
            WInstr::LocalGet(0),
            WInstr::Block(
                BlockType::Func(t_block),
                vec![WInstr::I32Const(1), WInstr::IBin(Width::W32, IBinOp::Add)],
            ),
            WInstr::Call(1),
        ],
    });
    m.funcs.push(FuncDef {
        type_idx: t_unary,
        locals: vec![],
        body: vec![
            WInstr::LocalGet(0),
            WInstr::I32Const(10),
            WInstr::IBin(Width::W32, IBinOp::Mul),
        ],
    });
    // f2 *branches to* a parameterised block: the tree-walker's unwind
    // there is path-dependent, so this one must decline and stay
    // tree-walked — while still interoperating with compiled callees.
    m.funcs.push(FuncDef {
        type_idx: t_unary,
        locals: vec![],
        body: vec![
            WInstr::LocalGet(0),
            WInstr::Block(
                BlockType::Func(t_block),
                vec![
                    WInstr::I32Const(2),
                    WInstr::IBin(Width::W32, IBinOp::Add),
                    WInstr::Br(0),
                ],
            ),
            WInstr::Call(1),
        ],
    });
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(0),
    });
    m.exports.push(Export {
        name: "g".into(),
        kind: ExportKind::Func(2),
    });
    let compiled = compile_module(&m);
    assert!(
        compiled.funcs[0].is_some(),
        "branch-free param block must compile"
    );
    assert!(compiled.funcs[1].is_some());
    assert!(
        compiled.funcs[2].is_none(),
        "a branch into a param block must decline"
    );
    assert_eq!(
        differential(&m, "f", &[Val::I32(4)]).unwrap(),
        vec![Val::I32(50)]
    );
    assert_eq!(
        differential(&m, "g", &[Val::I32(4)]).unwrap(),
        vec![Val::I32(60)]
    );
}

#[test]
fn codec_round_trips_byte_exact() {
    let mut m = one_func(
        vec![ValType::I32],
        vec![ValType::I32],
        vec![ValType::I64, ValType::F64],
        vec![
            WInstr::Block(
                BlockType::Empty,
                vec![
                    WInstr::LocalGet(0),
                    WInstr::BrIf(0),
                    WInstr::I32Const(1),
                    WInstr::LocalSet(0),
                ],
            ),
            WInstr::LocalGet(0),
            WInstr::F64Const(2.5),
            WInstr::FUn(Width::W64, FUnOp::Sqrt),
            WInstr::ITruncF(Width::W32, Width::W64, Sx::U),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    );
    m.memory = Some(1);
    let cm = compile_module(&m);
    let mut bytes = Vec::new();
    encode_compiled(&cm, &mut bytes);
    let back = decode_compiled(&bytes).expect("decode");
    let mut again = Vec::new();
    encode_compiled(&back, &mut again);
    assert_eq!(bytes, again, "encode∘decode must be byte-identical");

    // And the decoded form executes identically.
    let mut tree = WasmLinker::new();
    let ti = tree.instantiate("m", m.clone()).unwrap();
    let want = tree.invoke(ti, "f", &[Val::I32(0)]).unwrap();
    let mut vm = WasmLinker::new();
    let vi = vm.instantiate("m", m).unwrap();
    vm.attach_compiled(vi, &back).unwrap();
    assert_eq!(vm.invoke(vi, "f", &[Val::I32(0)]).unwrap(), want);
    assert_eq!(vm.last_steps(), tree.last_steps());
}

#[test]
fn decode_rejects_garbage() {
    assert!(decode_compiled(&[]).is_err());
    assert!(
        decode_compiled(&[0xFF, 0xFF, 0, 0, 0, 0]).is_err(),
        "bad version"
    );
    // Valid prefix with trailing junk is rejected too.
    let cm = compile_module(&one_func(vec![], vec![], vec![], vec![WInstr::Nop]));
    let mut bytes = Vec::new();
    encode_compiled(&cm, &mut bytes);
    bytes.push(0);
    assert!(decode_compiled(&bytes).is_err(), "trailing bytes");
}

/// Reset determinism on the VM: after mutating globals and memory,
/// `reset()` restores the baseline so a re-run reproduces the first run
/// exactly — results and fuel.
#[test]
fn reset_determinism_on_vm() {
    let mut m = one_func(
        vec![],
        vec![ValType::I32],
        vec![],
        vec![
            // g += 1; mem[0] += 2; return g + mem[0]
            WInstr::GlobalGet(0),
            WInstr::I32Const(1),
            WInstr::IBin(Width::W32, IBinOp::Add),
            WInstr::GlobalSet(0),
            WInstr::I32Const(0),
            WInstr::I32Const(0),
            WInstr::Load(ValType::I32, 0),
            WInstr::I32Const(2),
            WInstr::IBin(Width::W32, IBinOp::Add),
            WInstr::Store(ValType::I32, 0),
            WInstr::GlobalGet(0),
            WInstr::I32Const(0),
            WInstr::Load(ValType::I32, 0),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    );
    m.memory = Some(1);
    m.globals.push(GlobalDef {
        ty: ValType::I32,
        mutable: true,
        init: WInstr::I32Const(0),
    });
    let compiled = compile_module(&m);
    let mut l = WasmLinker::new();
    let i = l.instantiate("m", m).unwrap();
    l.attach_compiled(i, &compiled).unwrap();
    l.seal();
    let first = l.invoke(i, "f", &[]).unwrap();
    let first_steps = l.last_steps();
    let drifted = l.invoke(i, "f", &[]).unwrap();
    assert_ne!(first, drifted, "state must drift without reset");
    l.reset().unwrap();
    assert_eq!(l.invoke(i, "f", &[]).unwrap(), first);
    assert_eq!(l.last_steps(), first_steps);
}
