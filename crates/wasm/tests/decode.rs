//! The adversarial decode matrix: hostile inputs must produce a
//! structured `DecodeError` — never a panic, never an abort, never an
//! allocation proportional to an unchecked claim.
//!
//! The corpus is a representative module exercising every section the
//! encoder emits (imports, table + elements, memory + data, globals,
//! exports, nested control in code), attacked four ways:
//!
//! * **truncation** — every prefix of the valid bytes;
//! * **targeted corruption** — bad magic/version, overlong and oversized
//!   LEBs, section-length lies, out-of-range indices, hostile counts;
//! * **random mutation** — a deterministic 1000-case sweep (shim-RNG
//!   seeded by the test name) flipping 1–4 bytes of the valid module;
//! * **structure bombs** — deep nesting and huge local counts that
//!   attack the call stack and the allocator rather than the parser.

use proptest::test_runner::TestRng;
use richwasm_wasm::ast::*;
use richwasm_wasm::binary::{encode_module, uleb};
use richwasm_wasm::decode::{decode_module, DecodeError, DecodeErrorKind, MAX_NESTING};

/// A module touching every section id the encoder can emit.
fn kitchen_sink() -> Module {
    let mut m = Module::default();
    let t_i32 = m.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    let t_binop = m.intern_type(FuncType {
        params: vec![ValType::I32, ValType::I32],
        results: vec![ValType::I32],
    });
    m.imports.push(Import {
        module: "env".into(),
        name: "ext".into(),
        kind: ImportKind::Func(t_i32),
    });
    m.imports.push(Import {
        module: "env".into(),
        name: "g".into(),
        kind: ImportKind::Global(ValType::I64, false),
    });
    m.table = Some(4);
    m.memory = Some(1);
    m.globals.push(GlobalDef {
        ty: ValType::I32,
        mutable: true,
        init: WInstr::I32Const(7),
    });
    m.funcs.push(FuncDef {
        type_idx: t_binop,
        locals: vec![ValType::I32, ValType::I32, ValType::I64],
        body: vec![
            WInstr::Block(
                BlockType::Value(ValType::I32),
                vec![
                    WInstr::LocalGet(0),
                    WInstr::If(
                        BlockType::Value(ValType::I32),
                        vec![WInstr::LocalGet(1)],
                        vec![WInstr::I32Const(-1)],
                    ),
                ],
            ),
            WInstr::LocalGet(0),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    });
    m.funcs.push(FuncDef {
        type_idx: t_i32,
        locals: vec![],
        body: vec![
            WInstr::I32Const(0),
            WInstr::Load(ValType::I32, 8),
            WInstr::Drop,
            WInstr::Call(0),
        ],
    });
    m.exports.push(Export {
        name: "run".into(),
        kind: ExportKind::Func(1),
    });
    m.exports.push(Export {
        name: "mem".into(),
        kind: ExportKind::Memory(0),
    });
    m.elems.push(ElemSegment {
        offset: 1,
        funcs: vec![1, 2],
    });
    m.data.push(DataSegment {
        offset: 16,
        bytes: vec![1, 2, 3, 4, 5],
    });
    m.start = Some(0);
    m
}

fn sink_bytes() -> Vec<u8> {
    // `start` must be [] -> [] to survive validation; index 0 is the
    // imported `ext: [] -> [i32]`, fine for *decoding* (the decoder
    // checks index ranges, not types — that is the validator's job).
    encode_module(&kitchen_sink())
}

#[test]
fn kitchen_sink_round_trips_and_every_truncation_is_total() {
    let bytes = sink_bytes();
    let decoded = decode_module(&bytes).expect("valid module decodes");
    assert_eq!(decoded, kitchen_sink());
    assert_eq!(encode_module(&decoded), bytes);

    let mut boundary_oks = 0;
    for n in 0..bytes.len() {
        // Every prefix must return — Ok only at whole-section boundaries
        // (e.g. the bare 8-byte header is a valid empty module).
        match decode_module(&bytes[..n]) {
            Ok(_) => boundary_oks += 1,
            Err(e) => assert!(
                e.offset <= n,
                "error offset {} beyond the {n}-byte input",
                e.offset
            ),
        }
    }
    assert!(
        boundary_oks < 12,
        "truncation almost always loses a section: {boundary_oks} Oks"
    );
    assert!(decode_module(&bytes[..bytes.len() - 1]).is_err());
}

#[test]
fn bad_magic_and_version_matrix() {
    for (input, expect_magic) in [
        (&b""[..], true),
        (&b"\0as"[..], true),
        (&b"\0asX\x01\0\0\0"[..], true),
        (&b"asm\0\x01\0\0\0"[..], true),
        (&b"\0asm"[..], false),             // magic ok, version missing
        (&b"\0asm\x02\0\0\0"[..], false),   // wrong version
        (&b"\0asm\x01\0\0\x01"[..], false), // version 16777217
    ] {
        let err = decode_module(input).expect_err("must reject");
        if expect_magic {
            assert_eq!(err.kind, DecodeErrorKind::BadMagic, "input {input:x?}");
        } else {
            assert!(
                matches!(err.kind, DecodeErrorKind::BadVersion(_)),
                "input {input:x?}: {err}"
            );
        }
    }
}

#[test]
fn overlong_and_oversized_lebs_rejected() {
    let header = [0x00u8, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00];

    // Overlong unsigned: section size 5 encoded as [0x85, 0x80, 0x00].
    let mut bytes = header.to_vec();
    bytes.extend([0x01, 0x85, 0x80, 0x00]);
    let err = decode_module(&bytes).expect_err("overlong uleb");
    assert_eq!(err.kind, DecodeErrorKind::LebOverlong);

    // Oversized unsigned: a 6-byte u32.
    let mut bytes = header.to_vec();
    bytes.extend([0x01, 0x06, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01]);
    let err = decode_module(&bytes).expect_err("oversized uleb");
    assert_eq!(err.kind, DecodeErrorKind::LebOverflow);

    // Overlong signed: i32.const 1 in a global initialiser encoded as
    // [0x81, 0x00] — valid value, non-canonical bytes.
    let mut bytes = header.to_vec();
    bytes.extend([0x06, 0x07, 0x01, 0x7f, 0x01, 0x41, 0x81, 0x00, 0x0b]);
    let err = decode_module(&bytes).expect_err("overlong sleb");
    assert_eq!(err.kind, DecodeErrorKind::LebOverlong);

    // Junk in the unused sign bits of a full-width sleb: i64.const with
    // ten bytes whose final byte is 0x41 instead of the canonical 0x7f.
    let mut body = vec![0x00, 0x42]; // no locals; i64.const
    body.extend([0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x41]);
    body.extend([0x1a, 0x0b]); // drop; end
    let mut bytes = header.to_vec();
    bytes.extend([0x01, 0x04, 0x01, 0x60, 0x00, 0x00]); // type [] -> []
    bytes.extend([0x03, 0x02, 0x01, 0x00]); // function section
    bytes.push(0x0a); // code section
    let mut code = vec![0x01];
    uleb(body.len() as u64, &mut code);
    code.extend(&body);
    uleb(code.len() as u64, &mut bytes);
    bytes.extend(&code);
    let err = decode_module(&bytes).expect_err("non-canonical sleb64");
    assert_eq!(err.kind, DecodeErrorKind::LebOverlong);
}

#[test]
fn section_length_lies_rejected() {
    let bytes = sink_bytes();
    // Find each section header (walk the section framing) and corrupt
    // its declared size both ways.
    let mut pos = 8;
    let mut section_starts = Vec::new();
    while pos < bytes.len() {
        section_starts.push(pos);
        let mut size = 0u64;
        let mut shift = 0;
        let mut p = pos + 1;
        loop {
            let b = bytes[p];
            size |= ((b & 0x7f) as u64) << shift;
            shift += 7;
            p += 1;
            if b & 0x80 == 0 {
                break;
            }
        }
        pos = p + size as usize;
    }
    for &s in &section_starts {
        for delta in [-1i8, 1] {
            let mut corrupt = bytes.clone();
            // All sink sections are < 127 bytes, single-byte sizes.
            let size = &mut corrupt[s + 1];
            let new = size.wrapping_add_signed(delta);
            if new >= 0x80 {
                continue;
            }
            *size = new;
            assert!(
                decode_module(&corrupt).is_err(),
                "section at {s} with size {delta:+} must fail"
            );
        }
    }
}

#[test]
fn out_of_range_indices_rejected() {
    // Each closure corrupts the kitchen sink one way; all must fail with
    // IndexOutOfRange in the named space.
    type Corruption = Box<dyn Fn(&mut Module)>;
    let cases: Vec<(&str, Corruption)> = vec![
        (
            "function",
            Box::new(|m| m.exports[0].kind = ExportKind::Func(99)),
        ),
        ("type", Box::new(|m| m.funcs[0].type_idx = 99)),
        (
            "type",
            Box::new(|m| m.imports[0].kind = ImportKind::Func(42)),
        ),
        ("function", Box::new(|m| m.elems[0].funcs[0] = 77)),
        ("function", Box::new(|m| m.start = Some(55))),
        (
            "function",
            Box::new(|m| m.funcs[1].body[3] = WInstr::Call(88)),
        ),
        (
            "global",
            Box::new(|m| m.exports[0].kind = ExportKind::Global(66)),
        ),
        (
            "type",
            Box::new(|m| {
                m.funcs[0].body[0] = WInstr::Block(BlockType::Func(33), vec![WInstr::I32Const(1)]);
            }),
        ),
    ];
    for (space, corrupt) in cases {
        let mut m = kitchen_sink();
        corrupt(&mut m);
        let err = decode_module(&encode_module(&m)).expect_err("must reject");
        match err.kind {
            DecodeErrorKind::IndexOutOfRange { space: s, .. } => {
                assert_eq!(s, space, "wrong index space: {err}");
            }
            other => panic!("expected IndexOutOfRange({space}), got {other:?}"),
        }
    }
}

#[test]
fn deep_nesting_and_hostile_counts_bounded() {
    // 200k nested blocks: the iterative decoder must trip its explicit
    // nesting cap, not the call stack.
    let header = [0x00u8, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00];
    let mut bytes = header.to_vec();
    bytes.extend([0x01, 0x04, 0x01, 0x60, 0x00, 0x00]);
    bytes.extend([0x03, 0x02, 0x01, 0x00]);
    let mut body = vec![0x00];
    body.extend(std::iter::repeat([0x02, 0x40]).take(200_000).flatten());
    let mut code = vec![0x01];
    uleb(body.len() as u64, &mut code);
    code.extend(&body);
    bytes.push(0x0a);
    uleb(code.len() as u64, &mut bytes);
    bytes.extend(&code);
    let err = decode_module(&bytes).expect_err("nesting bomb");
    assert_eq!(err.kind, DecodeErrorKind::NestingTooDeep);
    const _: () = assert!(MAX_NESTING < 100_000, "the bomb must exceed the cap");

    // A local run claiming u32::MAX i64s in a 10-byte body: rejected by
    // the locals cap, without the 32 GiB allocation.
    let mut bytes = header.to_vec();
    bytes.extend([0x01, 0x04, 0x01, 0x60, 0x00, 0x00]);
    bytes.extend([0x03, 0x02, 0x01, 0x00]);
    let body = [
        0x01, // one run
        0xff, 0xff, 0xff, 0xff, 0x0f, // count = u32::MAX
        0x7e, // i64
        0x0b,
    ];
    bytes.push(0x0a);
    let mut code = vec![0x01];
    uleb(body.len() as u64, &mut code);
    code.extend(body);
    uleb(code.len() as u64, &mut bytes);
    bytes.extend(&code);
    let err = decode_module(&bytes).expect_err("locals bomb");
    assert!(
        matches!(err.kind, DecodeErrorKind::TooManyLocals(_)),
        "{err}"
    );

    // An element segment claiming 2^28 function indices in 5 bytes.
    let mut bytes = header.to_vec();
    bytes.extend([0x04, 0x04, 0x01, 0x70, 0x00, 0x04]); // table
    bytes.extend([
        0x09, 0x0a, 0x01, 0x00, 0x41, 0x00, 0x0b, // elem, table 0, offset 0
        0x80, 0x80, 0x80, 0x80, 0x01, // count 2^28
    ]);
    let err = decode_module(&bytes).expect_err("count bomb");
    assert!(
        matches!(err.kind, DecodeErrorKind::CountTooLarge(_)),
        "{err}"
    );
}

/// The deterministic 1000-case mutation sweep: random byte flips in a
/// valid module must always return (Ok for semantically neutral flips,
/// Err otherwise) — and when they decode, the result must re-encode
/// without panicking. The shim RNG is seeded from the test path, so the
/// sweep is reproducible run to run.
#[test]
fn mutation_sweep_1000_cases_never_panics() {
    let valid = sink_bytes();
    let mut rng = TestRng::deterministic("tests::decode::mutation_sweep_1000_cases");
    let mut oks = 0u32;
    let mut errs = 0u32;
    for case in 0..1000 {
        let mut bytes = valid.clone();
        let flips = 1 + (rng.next_u64() % 4) as usize;
        for _ in 0..flips {
            let idx = (rng.next_u64() as usize) % bytes.len();
            bytes[idx] = rng.next_u64() as u8;
        }
        match decode_module(&bytes) {
            Ok(m) => {
                oks += 1;
                // Whatever decoded must re-encode totally.
                let _ = encode_module(&m);
            }
            Err(DecodeError { offset, .. }) => {
                errs += 1;
                assert!(offset <= bytes.len(), "case {case}: offset out of range");
            }
        }
    }
    // The exact split is seed-dependent; the invariant is totality, but
    // a sweep that never errs (or never succeeds) would mean the
    // mutation is not actually exercising the parser.
    assert_eq!(oks + errs, 1000);
    assert!(errs > 500, "only {errs} rejections — mutations too tame?");
}

// Regressions from review: the export index space combines imports and
// local definitions, and the at-most-one rule spans both.
#[test]
fn imported_memory_reexport_round_trips() {
    // (import "env" "memory" (memory 1)) (export "mem" (memory 0)) — the
    // standard real-world shape; the validator accepts it, so the
    // decoder must too.
    let mut m = Module::default();
    m.imports.push(Import {
        module: "env".into(),
        name: "memory".into(),
        kind: ImportKind::Memory(1),
    });
    m.imports.push(Import {
        module: "env".into(),
        name: "table".into(),
        kind: ImportKind::Table(2),
    });
    m.exports.push(Export {
        name: "mem".into(),
        kind: ExportKind::Memory(0),
    });
    m.exports.push(Export {
        name: "tab".into(),
        kind: ExportKind::Table(0),
    });
    richwasm_wasm::validate_module(&m).expect("validator accepts import re-export");
    let bytes = encode_module(&m);
    let decoded = decode_module(&bytes).expect("decoder must accept what validate accepts");
    assert_eq!(decoded, m);
    assert_eq!(encode_module(&decoded), bytes);
}

#[test]
fn imported_plus_local_memory_rejected() {
    // An imported memory plus a local memory section breaks Wasm 1.0's
    // at-most-one rule across the *combined* index space.
    let mut m = Module::default();
    m.imports.push(Import {
        module: "env".into(),
        name: "memory".into(),
        kind: ImportKind::Memory(1),
    });
    m.memory = Some(1);
    let err = decode_module(&encode_module(&m)).expect_err("two memories");
    assert_eq!(err.kind, DecodeErrorKind::MultipleTablesOrMemories);

    let mut m = Module::default();
    m.imports.push(Import {
        module: "env".into(),
        name: "t".into(),
        kind: ImportKind::Table(1),
    });
    m.table = Some(1);
    let err = decode_module(&encode_module(&m)).expect_err("two tables");
    assert_eq!(err.kind, DecodeErrorKind::MultipleTablesOrMemories);

    // Two imported memories are just as illegal.
    let mut m = Module::default();
    for name in ["a", "b"] {
        m.imports.push(Import {
            module: "env".into(),
            name: name.into(),
            kind: ImportKind::Memory(1),
        });
    }
    let err = decode_module(&encode_module(&m)).expect_err("two imported memories");
    assert_eq!(err.kind, DecodeErrorKind::MultipleTablesOrMemories);
}

#[test]
fn locals_budget_is_module_wide() {
    // Many bodies each just under the cap must still trip it in
    // aggregate — cumulative allocation is what the budget bounds.
    let header = [0x00u8, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00];
    let mut bytes = header.to_vec();
    bytes.extend([0x01, 0x04, 0x01, 0x60, 0x00, 0x00]); // type [] -> []
    const BODIES: usize = 3;
    bytes.extend([0x03, 0x04, 0x03, 0x00, 0x00, 0x00]); // 3 functions
    let mut body = Vec::new();
    body.push(0x01); // one locals run
    uleb(400_000, &mut body); // under the 1M cap individually
    body.push(0x7f); // i32
    body.push(0x0b); // end
    let mut code = Vec::new();
    uleb(BODIES as u64, &mut code);
    for _ in 0..BODIES {
        uleb(body.len() as u64, &mut code);
        code.extend(&body);
    }
    bytes.push(0x0a);
    uleb(code.len() as u64, &mut bytes);
    bytes.extend(&code);
    let err = decode_module(&bytes).expect_err("cumulative locals bomb");
    assert!(
        matches!(err.kind, DecodeErrorKind::TooManyLocals(n) if n > 1_000_000),
        "{err}"
    );
}
