//! The encoder/decoder round-trip pin: `encode(decode(bytes)) == bytes`
//! byte-for-byte for every `.wasm` binary the pipeline can produce.
//!
//! Two sources of modules:
//!
//! * **Scenario bytes** — every module lowered for the E1–E9 experiment
//!   scenarios (interop stash, counter, soundness-safe, compiler towers,
//!   lowering workloads, host-function clients), compiled through the
//!   real engine so the bytes include the generated runtime module, the
//!   table/element machinery, data segments, and host imports.
//! * **Proptest-generated modules** — structurally consistent but
//!   otherwise random ASTs (nested control, every operator family,
//!   imports/exports/globals/segments), sampled from the deterministic
//!   shim RNG.
//!
//! The decoder is strict (canonical LEBs only), so on its *accepted*
//! inputs encode ∘ decode is the identity — which is exactly what makes
//! the persistent artifact cache's stored bytes trustworthy as cache
//! keys' content.

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use proptest::test_runner::TestRng;
use richwasm_bench::workloads::{
    arith_chain, churn, counter_client, counter_library, ml_tower, stash_client, stash_module,
};
use richwasm_repro::engine::{Engine, ModuleSet};
use richwasm_repro::{HostSig, HostVal, HostValType};
use richwasm_wasm::ast::*;
use richwasm_wasm::binary::encode_module;
use richwasm_wasm::decode::decode_module;

/// Round-trips one binary: decode must succeed and re-encode to the very
/// same bytes; decoding the re-encoding must also be structurally equal
/// (idempotence).
fn assert_roundtrip(name: &str, bytes: &[u8]) {
    let decoded =
        decode_module(bytes).unwrap_or_else(|e| panic!("module `{name}` failed to decode: {e}"));
    let reencoded = encode_module(&decoded);
    assert_eq!(
        reencoded, bytes,
        "module `{name}`: encode(decode(bytes)) != bytes"
    );
    let again = decode_module(&reencoded)
        .unwrap_or_else(|e| panic!("module `{name}` re-decode failed: {e}"));
    assert_eq!(again, decoded, "module `{name}`: decode not idempotent");
}

/// Compiles a module set (differential mode, so lowering runs) and
/// round-trips every produced binary, returning how many were checked.
fn roundtrip_set(label: &str, set: &ModuleSet) -> usize {
    let artifact = Engine::new()
        .compile(set)
        .unwrap_or_else(|e| panic!("scenario `{label}` failed to compile: {e}"));
    let binaries = artifact.wasm_binaries();
    assert!(!binaries.is_empty(), "scenario `{label}` produced no bytes");
    for (name, bytes) in binaries {
        assert_roundtrip(&format!("{label}/{name}"), bytes);
    }
    binaries.len()
}

/// A guest importing a host function — the E8/E9 shape (host imports in
/// the lowered import section).
fn host_client_set() -> ModuleSet {
    use richwasm_repro::richwasm::syntax::{self, FunType, Instr, NumType, Type};
    let m = syntax::Module {
        funcs: vec![
            syntax::Func::Imported {
                exports: vec![],
                module: "host".into(),
                name: "tick".into(),
                ty: FunType::mono(vec![Type::num(NumType::I32)], vec![Type::num(NumType::I32)]),
            },
            syntax::Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![],
                body: vec![Instr::i32(1), Instr::Call(0, vec![])],
            },
        ],
        ..syntax::Module::default()
    };
    ModuleSet::new().richwasm("m", m).host_fn(
        "host",
        "tick",
        HostSig::new([HostValType::I32], [HostValType::I32]),
        |args| {
            let HostVal::I32(x) = args[0] else {
                return Err("expected i32".into());
            };
            Ok(vec![HostVal::I32(x + 1)])
        },
    )
}

#[test]
fn every_scenario_binary_round_trips() {
    let scenarios: Vec<(&str, ModuleSet)> = vec![
        (
            "e1_interop",
            ModuleSet::new()
                .ml("ml", stash_module(false))
                .l3("l3", stash_client())
                .entry("l3"),
        ),
        (
            "e2_counter",
            ModuleSet::new()
                .l3("gfx", counter_library())
                .ml("app", counter_client()),
        ),
        (
            "e3_soundness_safe",
            ModuleSet::new().ml("ml", stash_module(false)),
        ),
        ("e4_compilers", ModuleSet::new().ml("tower", ml_tower(4))),
        (
            "e5_lowering_chain",
            ModuleSet::new().richwasm("chain", arith_chain(12)),
        ),
        (
            "e5_lowering_churn",
            ModuleSet::new().richwasm("churn", churn(8)),
        ),
        ("e8_e9_host_client", host_client_set()),
    ];
    let mut total = 0;
    for (label, set) in &scenarios {
        total += roundtrip_set(label, set);
    }
    // Every scenario contributes its guests plus the generated runtime
    // module: a meaningful corpus, not a couple of toys.
    assert!(total >= 12, "only {total} binaries round-tripped");
}

// ---------------------------------------------------------------------------
// Proptest-generated modules.

/// Builds a structurally consistent random module: all indices in range,
/// function/code counts aligned — exactly what the decoder's structural
/// checks require — while freely mixing every instruction family.
fn arbitrary_module(rng: &mut TestRng) -> Module {
    let mut m = Module::default();
    let pick = |rng: &mut TestRng, n: u64| (rng.next_u64() % n) as u32;
    let vt = |rng: &mut TestRng| match rng.next_u64() % 4 {
        0 => ValType::I32,
        1 => ValType::I64,
        2 => ValType::F32,
        _ => ValType::F64,
    };

    // Types (at least one, so blocktype/function references have targets).
    let ntypes = 1 + pick(rng, 4) as usize;
    for _ in 0..ntypes {
        let params = (0..pick(rng, 3)).map(|_| vt(rng)).collect();
        let results = (0..pick(rng, 3)).map(|_| vt(rng)).collect();
        // intern_type dedups — the canonical form the encoder emits.
        m.intern_type(FuncType { params, results });
    }
    let ntypes = m.types.len() as u64;

    // Imports (functions and globals; memory/table stay local).
    let n_func_imports = pick(rng, 3);
    for i in 0..n_func_imports {
        m.imports.push(Import {
            module: format!("env{}", pick(rng, 2)),
            name: format!("f{i}"),
            kind: ImportKind::Func(pick(rng, ntypes)),
        });
    }
    let n_global_imports = pick(rng, 2);
    for i in 0..n_global_imports {
        m.imports.push(Import {
            module: "env".into(),
            name: format!("g{i}"),
            kind: ImportKind::Global(vt(rng), rng.next_u64() % 2 == 0),
        });
    }

    if rng.next_u64() % 2 == 0 {
        m.table = Some(pick(rng, 16));
    }
    if rng.next_u64() % 2 == 0 {
        m.memory = Some(1 + pick(rng, 4));
    }

    let n_globals = pick(rng, 3);
    for _ in 0..n_globals {
        let ty = vt(rng);
        let init = match ty {
            ValType::I32 => WInstr::I32Const(rng.next_u64() as i32),
            ValType::I64 => WInstr::I64Const(rng.next_u64() as i64),
            ValType::F32 => WInstr::F32Const(f32::from_bits(rng.next_u64() as u32 & 0x7f7f_ffff)),
            ValType::F64 => {
                WInstr::F64Const(f64::from_bits(rng.next_u64() & 0x7fef_ffff_ffff_ffff))
            }
        };
        m.globals.push(GlobalDef {
            ty,
            mutable: rng.next_u64() % 2 == 0,
            init,
        });
    }

    // Defined functions with random bodies.
    let n_funcs = 1 + pick(rng, 3);
    let total_funcs = (n_func_imports + n_funcs) as u64;
    for _ in 0..n_funcs {
        let type_idx = pick(rng, ntypes);
        let locals = (0..pick(rng, 5)).map(|_| vt(rng)).collect();
        let body = arbitrary_body(rng, 3, ntypes, total_funcs);
        m.funcs.push(FuncDef {
            type_idx,
            locals,
            body,
        });
    }

    // Exports, elements, data, start — all with in-range indices.
    for i in 0..pick(rng, 3) {
        let kind = match rng.next_u64() % 4 {
            0 => ExportKind::Func(pick(rng, total_funcs)),
            1 if !m.globals.is_empty() || n_global_imports > 0 => ExportKind::Global(pick(
                rng,
                (n_global_imports + m.globals.len() as u32) as u64,
            )),
            2 if m.memory.is_some() => ExportKind::Memory(0),
            3 if m.table.is_some() => ExportKind::Table(0),
            _ => ExportKind::Func(pick(rng, total_funcs)),
        };
        m.exports.push(Export {
            name: format!("export_{i}"),
            kind,
        });
    }
    if m.table.is_some() {
        for _ in 0..pick(rng, 2) {
            let funcs = (0..1 + pick(rng, 3))
                .map(|_| pick(rng, total_funcs))
                .collect();
            m.elems.push(ElemSegment {
                offset: pick(rng, 8),
                funcs,
            });
        }
    }
    if m.memory.is_some() {
        for _ in 0..pick(rng, 2) {
            let bytes = (0..pick(rng, 12)).map(|_| rng.next_u64() as u8).collect();
            m.data.push(DataSegment {
                offset: pick(rng, 64),
                bytes,
            });
        }
    }
    m
}

/// A random instruction sequence with nested control up to `depth`.
fn arbitrary_body(rng: &mut TestRng, depth: u32, ntypes: u64, nfuncs: u64) -> Vec<WInstr> {
    let n = rng.next_u64() % 6;
    (0..n)
        .map(|_| arbitrary_instr(rng, depth, ntypes, nfuncs))
        .collect()
}

fn arbitrary_instr(rng: &mut TestRng, depth: u32, ntypes: u64, nfuncs: u64) -> WInstr {
    use WInstr::*;
    let pick = |rng: &mut TestRng, n: u64| (rng.next_u64() % n) as u32;
    let w = |rng: &mut TestRng| {
        if rng.next_u64() % 2 == 0 {
            Width::W32
        } else {
            Width::W64
        }
    };
    let sx = |rng: &mut TestRng| {
        if rng.next_u64() % 2 == 0 {
            Sx::S
        } else {
            Sx::U
        }
    };
    let choices: u64 = if depth > 0 { 26 } else { 23 };
    match rng.next_u64() % choices {
        0 => Unreachable,
        1 => Nop,
        2 => Br(pick(rng, 4)),
        3 => BrIf(pick(rng, 4)),
        4 => BrTable(
            (0..pick(rng, 3)).map(|_| pick(rng, 3)).collect(),
            pick(rng, 3),
        ),
        5 => Return,
        6 => Call(pick(rng, nfuncs)),
        7 => CallIndirect(pick(rng, ntypes)),
        8 => Drop,
        9 => Select,
        10 => LocalGet(pick(rng, 8)),
        11 => LocalSet(pick(rng, 8)),
        12 => LocalTee(pick(rng, 8)),
        13 => GlobalGet(pick(rng, 4)),
        14 => GlobalSet(pick(rng, 4)),
        15 => I32Const(rng.next_u64() as i32),
        16 => I64Const(rng.next_u64() as i64),
        17 => {
            let width = w(rng);
            IBin(
                width,
                match rng.next_u64() % 5 {
                    0 => IBinOp::Add,
                    1 => IBinOp::Sub,
                    2 => IBinOp::Xor,
                    3 => IBinOp::Shr(sx(rng)),
                    _ => IBinOp::Rotl,
                },
            )
        }
        18 => IRel(
            w(rng),
            match rng.next_u64() % 3 {
                0 => IRelOp::Eq,
                1 => IRelOp::Lt(sx(rng)),
                _ => IRelOp::Ge(sx(rng)),
            },
        ),
        19 => FBin(
            w(rng),
            match rng.next_u64() % 3 {
                0 => FBinOp::Add,
                1 => FBinOp::Min,
                _ => FBinOp::Copysign,
            },
        ),
        20 => Load(ValType::I32, pick(rng, 256)),
        21 => Store(ValType::I64, pick(rng, 256)),
        22 => ITruncF(w(rng), w(rng), sx(rng)),
        23 => Block(
            arbitrary_blocktype(rng, ntypes),
            arbitrary_body(rng, depth - 1, ntypes, nfuncs),
        ),
        24 => Loop(
            arbitrary_blocktype(rng, ntypes),
            arbitrary_body(rng, depth - 1, ntypes, nfuncs),
        ),
        _ => If(
            arbitrary_blocktype(rng, ntypes),
            arbitrary_body(rng, depth - 1, ntypes, nfuncs),
            arbitrary_body(rng, depth - 1, ntypes, nfuncs),
        ),
    }
}

fn arbitrary_blocktype(rng: &mut TestRng, ntypes: u64) -> BlockType {
    match rng.next_u64() % 3 {
        0 => BlockType::Empty,
        1 => BlockType::Value(match rng.next_u64() % 4 {
            0 => ValType::I32,
            1 => ValType::I64,
            2 => ValType::F32,
            _ => ValType::F64,
        }),
        _ => BlockType::Func((rng.next_u64() % ntypes) as u32),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    // Generated modules are not necessarily *valid* (the validator's
    // job), but they are structurally consistent — which is all the
    // byte-level round trip needs.
    #[test]
    fn generated_modules_round_trip(m in BoxedStrategy::from_fn(arbitrary_module)) {
        let bytes = encode_module(&m);
        let decoded = decode_module(&bytes)
            .unwrap_or_else(|e| panic!("generated module failed to decode: {e}\n{m:?}"));
        prop_assert_eq!(
            encode_module(&decoded),
            bytes,
            "byte round trip diverged"
        );
    }
}
