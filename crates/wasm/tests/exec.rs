//! Integration tests for the Wasm interpreter: control flow, memory,
//! tables, cross-module linking, and trap behaviour.

use richwasm_wasm::ast::*;
use richwasm_wasm::exec::{Val, WasmLinker};

fn one_func(
    params: Vec<ValType>,
    results: Vec<ValType>,
    locals: Vec<ValType>,
    body: Vec<WInstr>,
) -> Module {
    let mut m = Module::default();
    let t = m.intern_type(FuncType { params, results });
    m.funcs.push(FuncDef {
        type_idx: t,
        locals,
        body,
    });
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(0),
    });
    m
}

fn run(m: Module, args: &[Val]) -> Result<Vec<Val>, String> {
    let mut l = WasmLinker::new();
    let i = l.instantiate("m", m).map_err(|e| e.to_string())?;
    l.invoke(i, "f", args).map_err(|e| e.to_string())
}

#[test]
fn arithmetic() {
    let m = one_func(
        vec![ValType::I32, ValType::I32],
        vec![ValType::I32],
        vec![],
        vec![
            WInstr::LocalGet(0),
            WInstr::LocalGet(1),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    );
    assert_eq!(
        run(m, &[Val::I32(2), Val::I32(40)]).unwrap(),
        vec![Val::I32(42)]
    );
}

#[test]
fn factorial_loop() {
    // local 1 = acc; loop while local0 > 0 { acc *= local0; local0 -= 1 }
    let body = vec![
        WInstr::I32Const(1),
        WInstr::LocalSet(1),
        WInstr::Block(
            BlockType::Empty,
            vec![WInstr::Loop(
                BlockType::Empty,
                vec![
                    WInstr::LocalGet(0),
                    WInstr::ITest(Width::W32),
                    WInstr::BrIf(1),
                    WInstr::LocalGet(1),
                    WInstr::LocalGet(0),
                    WInstr::IBin(Width::W32, IBinOp::Mul),
                    WInstr::LocalSet(1),
                    WInstr::LocalGet(0),
                    WInstr::I32Const(1),
                    WInstr::IBin(Width::W32, IBinOp::Sub),
                    WInstr::LocalSet(0),
                    WInstr::Br(0),
                ],
            )],
        ),
        WInstr::LocalGet(1),
    ];
    let m = one_func(
        vec![ValType::I32],
        vec![ValType::I32],
        vec![ValType::I32],
        body,
    );
    assert_eq!(run(m, &[Val::I32(5)]).unwrap(), vec![Val::I32(120)]);
}

#[test]
fn memory_load_store() {
    let mut m = one_func(
        vec![],
        vec![ValType::I64],
        vec![],
        vec![
            WInstr::I32Const(8),
            WInstr::I64Const(0x1122334455667788),
            WInstr::Store(ValType::I64, 0),
            WInstr::I32Const(8),
            WInstr::Load(ValType::I64, 0),
        ],
    );
    m.memory = Some(1);
    assert_eq!(run(m, &[]).unwrap(), vec![Val::I64(0x1122334455667788)]);
}

#[test]
fn out_of_bounds_traps() {
    let mut m = one_func(
        vec![],
        vec![ValType::I32],
        vec![],
        vec![WInstr::I32Const(70000), WInstr::Load(ValType::I32, 0)],
    );
    m.memory = Some(1);
    let err = run(m, &[]).unwrap_err();
    assert!(err.contains("out of bounds"), "{err}");
}

#[test]
fn memory_grow() {
    let mut m = one_func(
        vec![],
        vec![ValType::I32, ValType::I32],
        vec![],
        vec![WInstr::I32Const(2), WInstr::MemoryGrow, WInstr::MemorySize],
    );
    m.memory = Some(1);
    assert_eq!(run(m, &[]).unwrap(), vec![Val::I32(1), Val::I32(3)]);
}

#[test]
fn call_indirect_through_table() {
    let mut m = Module::default();
    let binop = m.intern_type(FuncType {
        params: vec![ValType::I32, ValType::I32],
        results: vec![ValType::I32],
    });
    let main_t = m.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    // f0 = add, f1 = mul, main picks by index.
    m.funcs.push(FuncDef {
        type_idx: binop,
        locals: vec![],
        body: vec![
            WInstr::LocalGet(0),
            WInstr::LocalGet(1),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    });
    m.funcs.push(FuncDef {
        type_idx: binop,
        locals: vec![],
        body: vec![
            WInstr::LocalGet(0),
            WInstr::LocalGet(1),
            WInstr::IBin(Width::W32, IBinOp::Mul),
        ],
    });
    m.funcs.push(FuncDef {
        type_idx: main_t,
        locals: vec![],
        body: vec![
            WInstr::I32Const(6),
            WInstr::I32Const(7),
            WInstr::LocalGet(0),
            WInstr::CallIndirect(binop),
        ],
    });
    m.table = Some(2);
    m.elems.push(ElemSegment {
        offset: 0,
        funcs: vec![0, 1],
    });
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(2),
    });
    let mut l = WasmLinker::new();
    let i = l.instantiate("m", m).unwrap();
    assert_eq!(
        l.invoke(i, "f", &[Val::I32(0)]).unwrap(),
        vec![Val::I32(13)]
    );
    assert_eq!(
        l.invoke(i, "f", &[Val::I32(1)]).unwrap(),
        vec![Val::I32(42)]
    );
    let err = l.invoke(i, "f", &[Val::I32(5)]).unwrap_err();
    assert!(err.0.contains("table"), "{err}");
}

#[test]
fn cross_module_import() {
    let mut provider = Module::default();
    let t = provider.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    provider.funcs.push(FuncDef {
        type_idx: t,
        locals: vec![],
        body: vec![WInstr::I32Const(7)],
    });
    provider.exports.push(Export {
        name: "seven".into(),
        kind: ExportKind::Func(0),
    });

    let mut client = Module::default();
    let t7 = client.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    client.imports.push(Import {
        module: "p".into(),
        name: "seven".into(),
        kind: ImportKind::Func(t7),
    });
    client.funcs.push(FuncDef {
        type_idx: t7,
        locals: vec![],
        body: vec![
            WInstr::Call(0),
            WInstr::I32Const(6),
            WInstr::IBin(Width::W32, IBinOp::Mul),
        ],
    });
    client.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(1),
    });

    let mut l = WasmLinker::new();
    l.instantiate("p", provider).unwrap();
    let c = l.instantiate("c", client).unwrap();
    assert_eq!(l.invoke(c, "f", &[]).unwrap(), vec![Val::I32(42)]);
}

#[test]
fn import_type_mismatch_rejected() {
    let mut provider = Module::default();
    let t = provider.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    provider.funcs.push(FuncDef {
        type_idx: t,
        locals: vec![],
        body: vec![WInstr::I32Const(7)],
    });
    provider.exports.push(Export {
        name: "seven".into(),
        kind: ExportKind::Func(0),
    });

    let mut client = Module::default();
    let bad = client.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I64],
    });
    client.imports.push(Import {
        module: "p".into(),
        name: "seven".into(),
        kind: ImportKind::Func(bad),
    });

    let mut l = WasmLinker::new();
    l.instantiate("p", provider).unwrap();
    let err = l.instantiate("c", client).unwrap_err();
    assert!(err.0.contains("type mismatch"), "{err}");
}

#[test]
fn shared_memory_via_import() {
    // Module A exports its memory; module B writes through the import and
    // A reads the value back — genuine shared-memory interop at the Wasm
    // level (what RichWasm's type system makes safe one level up).
    let mut a = Module::default();
    let t = a.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    a.memory = Some(1);
    a.funcs.push(FuncDef {
        type_idx: t,
        locals: vec![],
        body: vec![WInstr::I32Const(0), WInstr::Load(ValType::I32, 0)],
    });
    a.exports.push(Export {
        name: "read".into(),
        kind: ExportKind::Func(0),
    });
    a.exports.push(Export {
        name: "mem".into(),
        kind: ExportKind::Memory(0),
    });

    let mut b = Module::default();
    let t2 = b.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![],
    });
    b.imports.push(Import {
        module: "a".into(),
        name: "mem".into(),
        kind: ImportKind::Memory(1),
    });
    b.funcs.push(FuncDef {
        type_idx: t2,
        locals: vec![],
        body: vec![
            WInstr::I32Const(0),
            WInstr::LocalGet(0),
            WInstr::Store(ValType::I32, 0),
        ],
    });
    b.exports.push(Export {
        name: "write".into(),
        kind: ExportKind::Func(0),
    });

    let mut l = WasmLinker::new();
    let ai = l.instantiate("a", a).unwrap();
    let bi = l.instantiate("b", b).unwrap();
    l.invoke(bi, "write", &[Val::I32(1234)]).unwrap();
    assert_eq!(l.invoke(ai, "read", &[]).unwrap(), vec![Val::I32(1234)]);
}

#[test]
fn multi_value_block_runs() {
    let mut m = Module::default();
    let bt = m.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I32, ValType::I32],
    });
    let ft = m.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    m.funcs.push(FuncDef {
        type_idx: ft,
        locals: vec![],
        body: vec![
            WInstr::Block(
                BlockType::Func(bt),
                vec![WInstr::I32Const(40), WInstr::I32Const(2)],
            ),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    });
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(0),
    });
    assert_eq!(run(m, &[]).unwrap(), vec![Val::I32(42)]);
}

#[test]
fn br_out_of_nested_blocks() {
    // block (result i32) { block {} { i32.const 9; br 1 }; i32.const 1 }
    let m = one_func(
        vec![],
        vec![ValType::I32],
        vec![],
        vec![WInstr::Block(
            BlockType::Value(ValType::I32),
            vec![
                WInstr::Block(BlockType::Empty, vec![WInstr::I32Const(9), WInstr::Br(1)]),
                WInstr::I32Const(1),
            ],
        )],
    );
    assert_eq!(run(m, &[]).unwrap(), vec![Val::I32(9)]);
}

#[test]
fn division_by_zero_traps() {
    let m = one_func(
        vec![],
        vec![ValType::I32],
        vec![],
        vec![
            WInstr::I32Const(1),
            WInstr::I32Const(0),
            WInstr::IBin(Width::W32, IBinOp::Div(Sx::S)),
        ],
    );
    let err = run(m, &[]).unwrap_err();
    assert!(err.contains("divide by zero"), "{err}");
}

#[test]
fn start_function_runs_at_instantiation() {
    let mut m = Module::default();
    let t0 = m.intern_type(FuncType::default());
    let t1 = m.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    m.globals.push(GlobalDef {
        ty: ValType::I32,
        mutable: true,
        init: WInstr::I32Const(0),
    });
    m.funcs.push(FuncDef {
        type_idx: t0,
        locals: vec![],
        body: vec![WInstr::I32Const(99), WInstr::GlobalSet(0)],
    });
    m.funcs.push(FuncDef {
        type_idx: t1,
        locals: vec![],
        body: vec![WInstr::GlobalGet(0)],
    });
    m.start = Some(0);
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(1),
    });
    assert_eq!(run(m, &[]).unwrap(), vec![Val::I32(99)]);
}

#[test]
fn recursion_with_depth_limit() {
    // f(n) = n == 0 ? 0 : f(n-1) + n  (sum 1..n)
    let mut m = Module::default();
    let t = m.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    m.funcs.push(FuncDef {
        type_idx: t,
        locals: vec![],
        body: vec![WInstr::If(
            BlockType::Value(ValType::I32),
            vec![
                WInstr::LocalGet(0),
                WInstr::I32Const(1),
                WInstr::IBin(Width::W32, IBinOp::Sub),
                WInstr::Call(0),
                WInstr::LocalGet(0),
                WInstr::IBin(Width::W32, IBinOp::Add),
            ],
            vec![WInstr::I32Const(0)],
        )],
    });
    // Condition first.
    m.funcs[0].body.insert(0, WInstr::LocalGet(0));
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(0),
    });
    let mut l = WasmLinker::new();
    let i = l.instantiate("m", m).unwrap();
    assert_eq!(
        l.invoke(i, "f", &[Val::I32(100)]).unwrap(),
        vec![Val::I32(5050)]
    );
    // Exhausting the call depth traps rather than overflowing the host
    // stack.
    l.max_call_depth = 64;
    let err = l.invoke(i, "f", &[Val::I32(100_000)]).unwrap_err();
    assert!(err.0.contains("call stack exhausted"), "{err}");
}

#[test]
fn seal_and_reset_restore_baseline_state() {
    // A module with a mutable global and a memory cell, both bumped by
    // each call: after reset() the store must look freshly instantiated.
    let mut m = Module::default();
    let t = m.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    m.memory = Some(1);
    m.data.push(DataSegment {
        offset: 0,
        bytes: vec![7, 0, 0, 0],
    });
    m.globals.push(GlobalDef {
        ty: ValType::I32,
        mutable: true,
        init: WInstr::I32Const(10),
    });
    // f() = (global += 1; mem[0] += 1; global + mem[0])
    m.funcs.push(FuncDef {
        type_idx: t,
        locals: vec![],
        body: vec![
            WInstr::GlobalGet(0),
            WInstr::I32Const(1),
            WInstr::IBin(Width::W32, IBinOp::Add),
            WInstr::GlobalSet(0),
            WInstr::I32Const(0),
            WInstr::I32Const(0),
            WInstr::Load(ValType::I32, 0),
            WInstr::I32Const(1),
            WInstr::IBin(Width::W32, IBinOp::Add),
            WInstr::Store(ValType::I32, 0),
            WInstr::GlobalGet(0),
            WInstr::I32Const(0),
            WInstr::Load(ValType::I32, 0),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
    });
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(0),
    });

    let mut l = WasmLinker::new();
    // Resetting before any baseline exists is an error, not a silent no-op.
    assert!(l.reset().is_err());
    let i = l.instantiate("m", m).unwrap();
    l.seal();
    assert!(l.is_sealed());

    // First life: 11 + 8, 12 + 9, …
    assert_eq!(l.invoke(i, "f", &[]).unwrap(), vec![Val::I32(19)]);
    assert_eq!(l.invoke(i, "f", &[]).unwrap(), vec![Val::I32(21)]);

    // Reset: both the global and the data-segment byte are back.
    l.reset().unwrap();
    assert_eq!(l.invoke(i, "f", &[]).unwrap(), vec![Val::I32(19)]);
}

#[test]
fn instantiate_invalidates_stale_baseline() {
    let m1 = one_func(
        vec![],
        vec![ValType::I32],
        vec![],
        vec![WInstr::I32Const(1)],
    );
    let m2 = one_func(
        vec![],
        vec![ValType::I32],
        vec![],
        vec![WInstr::I32Const(2)],
    );
    let mut l = WasmLinker::new();
    l.instantiate("a", m1).unwrap();
    l.seal();
    // Adding a module makes the old baseline unsound (it predates the new
    // store entries), so it must be dropped until the linker is re-sealed.
    l.instantiate("b", m2).unwrap();
    assert!(!l.is_sealed());
    assert!(l.reset().is_err());
    l.seal();
    assert!(l.reset().is_ok());
}

// ---------------------------------------------------------------------
// Host functions: Rust closures exposed as importable module exports.
// ---------------------------------------------------------------------

mod host_funcs {
    use super::*;
    use richwasm_wasm::exec::WasmTrap;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    /// A module importing `host.double : [i32] -> [i32]` and exporting
    /// `f(x) = double(x) + 1`.
    fn client() -> Module {
        let mut m = Module::default();
        let t = m.intern_type(FuncType {
            params: vec![ValType::I32],
            results: vec![ValType::I32],
        });
        m.imports.push(Import {
            module: "host".into(),
            name: "double".into(),
            kind: ImportKind::Func(t),
        });
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![],
            body: vec![
                WInstr::LocalGet(0),
                WInstr::Call(0),
                WInstr::I32Const(1),
                WInstr::IBin(Width::W32, IBinOp::Add),
            ],
        });
        m.exports.push(Export {
            name: "f".into(),
            kind: ExportKind::Func(1),
        });
        m
    }

    #[test]
    fn host_import_resolves_and_executes() {
        let calls = Arc::new(AtomicU32::new(0));
        let seen = calls.clone();
        let mut l = WasmLinker::new();
        l.register_host_module(
            "host",
            vec![(
                "double".into(),
                FuncType {
                    params: vec![ValType::I32],
                    results: vec![ValType::I32],
                },
                Arc::new(move |args: &[Val]| {
                    seen.fetch_add(1, Ordering::SeqCst);
                    let Val::I32(x) = args[0] else {
                        return Err(WasmTrap("expected i32".into()));
                    };
                    Ok(vec![Val::I32(x.wrapping_mul(2))])
                }),
            )],
        );
        let i = l.instantiate("m", client()).unwrap();
        assert_eq!(
            l.invoke(i, "f", &[Val::I32(20)]).unwrap(),
            vec![Val::I32(41)]
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // And through the pre-resolved address path.
        let addr = l.export_func_addr(i, "f").unwrap();
        assert_eq!(
            l.invoke_addr(addr, &[Val::I32(3)]).unwrap(),
            vec![Val::I32(7)]
        );
        assert_eq!(
            l.func_type(addr).unwrap().results,
            vec![ValType::I32],
            "address resolves to the typed function"
        );
    }

    #[test]
    fn host_import_type_mismatch_rejected() {
        let mut l = WasmLinker::new();
        l.register_host_module(
            "host",
            vec![(
                "double".into(),
                FuncType {
                    params: vec![ValType::I64], // disagrees with the client
                    results: vec![ValType::I32],
                },
                Arc::new(|_: &[Val]| Ok(vec![Val::I32(0)])),
            )],
        );
        let err = l.instantiate("m", client()).unwrap_err();
        assert!(err.to_string().contains("type mismatch"), "{err}");
    }

    #[test]
    fn host_error_and_result_checks_trap() {
        let mut l = WasmLinker::new();
        l.register_host_module(
            "host",
            vec![(
                "double".into(),
                FuncType {
                    params: vec![ValType::I32],
                    results: vec![ValType::I32],
                },
                Arc::new(|args: &[Val]| {
                    let Val::I32(x) = args[0] else {
                        return Err(WasmTrap("expected i32".into()));
                    };
                    if x == 0 {
                        return Err(WasmTrap("host says no".into()));
                    }
                    // A misbehaving host: wrong result type.
                    Ok(vec![Val::I64(1)])
                }),
            )],
        );
        let i = l.instantiate("m", client()).unwrap();
        let err = l.invoke(i, "f", &[Val::I32(0)]).unwrap_err();
        assert!(err.to_string().contains("host says no"), "{err}");
        // The store re-checks host results against the declared type.
        let err = l.invoke(i, "f", &[Val::I32(1)]).unwrap_err();
        assert!(err.to_string().contains("declares"), "{err}");
    }

    #[test]
    fn host_registration_invalidates_baseline() {
        let mut l = WasmLinker::new();
        let i = l
            .instantiate("m", {
                let mut m = Module::default();
                let t = m.intern_type(FuncType {
                    params: vec![],
                    results: vec![ValType::I32],
                });
                m.funcs.push(FuncDef {
                    type_idx: t,
                    locals: vec![],
                    body: vec![WInstr::I32Const(9)],
                });
                m.exports.push(Export {
                    name: "f".into(),
                    kind: ExportKind::Func(0),
                });
                m
            })
            .unwrap();
        l.seal();
        l.register_host_module("host", vec![]);
        assert!(!l.is_sealed(), "registering hosts stales the baseline");
        l.seal();
        assert!(l.reset().is_ok());
        assert_eq!(l.invoke(i, "f", &[]).unwrap(), vec![Val::I32(9)]);
    }
}
