//! The deterministic test runner: per-test PRNG and configuration.

/// A SplitMix64 PRNG seeded from the test's name, so every run of a test
/// samples the same sequence (failures are reproducible without persisted
/// regression files).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (typically `module_path!() :: name`).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
