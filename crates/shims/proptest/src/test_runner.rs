//! The deterministic test runner: per-test PRNG and configuration.

use std::sync::Once;

/// Environment variable that, when set, perturbs every deterministic
/// seed. CI sets it per run (e.g. to the run id) so differential sweeps
/// are *varied* across runs yet *reproducible* within one: re-exporting
/// the printed value replays the exact sequences.
pub const SEED_ENV: &str = "RW_FUZZ_SEED";

/// The `RW_FUZZ_SEED` environment seed, if set and parseable (decimal or
/// `0x`-prefixed hex). An unparseable value is treated as unset rather
/// than silently changing sampling behaviour mid-suite.
pub fn env_seed() -> Option<u64> {
    parse_seed(&std::env::var(SEED_ENV).ok()?)
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

fn announce_env_seed(seed: u64) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // To stderr so it survives libtest's stdout capture.
        eprintln!("proptest shim: {SEED_ENV}={seed} (perturbing deterministic seeds)");
    });
}

/// A SplitMix64 PRNG seeded from the test's name, so every run of a test
/// samples the same sequence (failures are reproducible without persisted
/// regression files). When [`SEED_ENV`] is set, the environment seed is
/// mixed in, varying the sequences run-to-run without losing
/// reproducibility (the seed is printed once per process).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (typically `module_path!() :: name`),
    /// mixed with the [`SEED_ENV`] environment seed when present.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Some(seed) = env_seed() {
            announce_env_seed(seed);
            // Finalize the seed before XOR so nearby run ids decorrelate.
            h ^= splitmix_once(seed);
        }
        TestRng { state: h | 1 }
    }

    /// Seeds from an explicit value, ignoring the environment. Used by
    /// consumers that manage their own seed policy (the fuzz farm's CLI)
    /// and by tests that must stay pinned under any `RW_FUZZ_SEED`.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: splitmix_once(seed) | 1,
        }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix_once(self.state)
    }
}

/// The SplitMix64 finalizer (stateless; the caller advances the state).
fn splitmix_once(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_seed_sensitive() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        let mut c = TestRng::from_seed(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    // env_seed() is exercised via its parser only — mutating the process
    // environment in a test would race other tests.
    #[test]
    fn seed_parser_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("123"), Some(123));
        assert_eq!(parse_seed(" 0x10 "), Some(16));
        assert_eq!(parse_seed("0Xff"), Some(255));
        assert_eq!(parse_seed("bogus"), None);
    }
}
