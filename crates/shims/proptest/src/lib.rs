//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! deterministic strategy sampling driven by a per-test seeded PRNG.
//! There is **no shrinking** — a failing case panics with the sampled
//! values still reproducible (the seed is derived from the test's module
//! path and name, so reruns sample the same sequence).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A `[lo, hi)` size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub lo: usize,
        /// Exclusive upper bound.
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values sampled from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual proptest prelude.
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
///
/// Expands to `continue`, so it is only valid directly inside the body of
/// a `proptest!`-generated case loop (which is where proptest allows it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Picks one of several strategies (all producing the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}
