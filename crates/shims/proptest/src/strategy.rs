//! Strategies: composable deterministic value generators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a sampling function over a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, resampling (up to a bound) until `f`
    /// accepts one.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the base case and `recurse`
    /// wraps a strategy for the substructure, up to `depth` levels deep.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let rec = recurse(strat).boxed();
            let b = base.clone();
            strat = BoxedStrategy::from_fn(move |rng| {
                if rng.next_u64() % 4 == 0 {
                    b.sample(rng)
                } else {
                    rec.sample(rng)
                }
            });
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = self;
        BoxedStrategy::from_fn(move |rng| this.sample(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    sampler: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<V> BoxedStrategy<V> {
    /// Wraps a sampling function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> V + 'static) -> BoxedStrategy<V> {
        BoxedStrategy {
            sampler: Rc::new(f),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.sampler)(rng)
    }
    fn boxed(self) -> BoxedStrategy<V>
    where
        V: 'static,
    {
        self
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..256 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 256 consecutive samples");
    }
}

/// Uniformly picks one of several strategies of the same value type.
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: impl IntoIterator<Item = S>) -> Union<S> {
        let options: Vec<S> = options.into_iter().collect();
        assert!(
            !options.is_empty(),
            "Union::new requires at least one option"
        );
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty range strategy");
        for _ in 0..64 {
            let v = lo + (rng.next_u64() % (hi - lo) as u64) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
        self.start
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);
