//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the criterion API the `richwasm-bench` suite
//! uses, measuring wall-clock time with `std::time::Instant` and printing
//! one line per benchmark:
//!
//! ```text
//! e1_interop/static_typed_run   time: 12.345 µs (20 samples)
//! ```
//!
//! The reported time is the **median** of the per-sample wall-clock
//! measurements (each sample is one call of the timed closure), which is
//! what the CI bench gate consumes.
//!
//! # Machine-readable output (`--json <path>`)
//!
//! Passing `--json <path>` after `--` (`cargo bench -p richwasm-bench --
//! --json BENCH.json`) makes every bench binary append its results to one
//! JSON report:
//!
//! ```json
//! {
//!   "schema": "richwasm-bench/v1",
//!   "benches":    [ {"id": "e7_engine/cold_compile", "median_ns": 350123, "samples": 15} ],
//!   "assertions": [ {"name": "e7_engine/warm_vs_cold", "measured": 48.21, "required": 10.0, "passed": true} ]
//! }
//! ```
//!
//! Bench binaries run as separate processes, so the writer **merges**: an
//! existing report at `path` is loaded first and entries with the same
//! id/name are replaced. The file is flushed after every record, so a
//! panicking acceptance assertion still leaves its (failed) outcome in
//! the report for the CI gate to surface. The loader only understands the
//! format this module writes (one entry per line) — it is a shim, not a
//! JSON library.
//!
//! # Acceptance assertions
//!
//! [`acceptance`] is the speedup-gate primitive: it records the measured
//! ratio against the required ratio into the `assertions` array, then
//! panics when the requirement is not met (failing `cargo bench`, and
//! with it the CI `bench-gate` job).
//!
//! There is no statistical analysis, warm-up tuning, or report output —
//! this exists so `cargo bench` runs offline; swap in the real crate for
//! publication-grade numbers.

use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name` with a parameter rendered after a slash, criterion-style.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Only a parameter (used as the whole id).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Drives the timed closure.
pub struct Bencher {
    samples: u32,
    /// Median per-sample time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`: after a short warm-up, runs `samples` measured calls and
    /// keeps the per-sample median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

// ---------------------------------------------------------------------------
// The machine-readable report registry.

#[derive(Debug, Clone, PartialEq)]
struct BenchRecord {
    id: String,
    median_ns: u128,
    samples: u32,
}

#[derive(Debug, Clone, PartialEq)]
struct AssertRecord {
    name: String,
    measured: f64,
    required: f64,
    passed: bool,
}

#[derive(Debug, Default)]
struct Registry {
    path: Option<PathBuf>,
    benches: Vec<BenchRecord>,
    assertions: Vec<AssertRecord>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Extracts the raw text of field `key` from a single-line JSON object of
/// the exact shape this module writes. Strings come back unescaped.
fn field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in stripped.char_indices() {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        Some(json_unescape(&stripped[..end?]))
    } else {
        // Number / bool: runs to the next comma or closing brace.
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().to_string())
    }
}

impl Registry {
    /// Loads a previously written report (another bench binary's output)
    /// so this process merges instead of clobbering.
    fn load_existing(&mut self, text: &str) {
        #[derive(PartialEq)]
        enum Section {
            None,
            Benches,
            Assertions,
        }
        let mut section = Section::None;
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with("\"benches\":") {
                section = Section::Benches;
            } else if t.starts_with("\"assertions\":") {
                section = Section::Assertions;
            } else if t.starts_with('{') && t.contains(':') {
                match section {
                    Section::Benches => {
                        if let (Some(id), Some(median), Some(samples)) =
                            (field(t, "id"), field(t, "median_ns"), field(t, "samples"))
                        {
                            if let (Ok(median_ns), Ok(samples)) = (median.parse(), samples.parse())
                            {
                                self.benches.push(BenchRecord {
                                    id,
                                    median_ns,
                                    samples,
                                });
                            }
                        }
                    }
                    Section::Assertions => {
                        if let (Some(name), Some(m), Some(r), Some(p)) = (
                            field(t, "name"),
                            field(t, "measured"),
                            field(t, "required"),
                            field(t, "passed"),
                        ) {
                            if let (Ok(measured), Ok(required)) = (m.parse(), r.parse()) {
                                self.assertions.push(AssertRecord {
                                    name,
                                    measured,
                                    required,
                                    passed: p == "true",
                                });
                            }
                        }
                    }
                    Section::None => {}
                }
            }
        }
    }

    fn render(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"richwasm-bench/v1\",\n  \"benches\": [\n");
        for (i, b) in self.benches.iter().enumerate() {
            let sep = if i + 1 == self.benches.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {}, \"samples\": {}}}{sep}\n",
                json_escape(&b.id),
                b.median_ns,
                b.samples
            ));
        }
        out.push_str("  ],\n  \"assertions\": [\n");
        for (i, a) in self.assertions.iter().enumerate() {
            let sep = if i + 1 == self.assertions.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"measured\": {:.4}, \"required\": {:.4}, \"passed\": {}}}{sep}\n",
                json_escape(&a.name),
                a.measured,
                a.required,
                a.passed
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    fn flush(&self) {
        if let Some(path) = &self.path {
            if let Err(e) = fs::write(path, self.render()) {
                eprintln!(
                    "warning: could not write bench report {}: {e}",
                    path.display()
                );
            }
        }
    }
}

/// Parses harness arguments (the part of `cargo bench -- <args>` cargo
/// forwards to every bench binary). Recognises `--json <path>`; everything
/// else is ignored for real-criterion flag compatibility. Called by the
/// `main` that [`criterion_main!`] generates.
pub fn init_from_args(args: impl Iterator<Item = String>) {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--json" {
            if let Some(path) = args.next() {
                let mut reg = registry().lock().expect("bench registry poisoned");
                reg.path = Some(PathBuf::from(&path));
                if let Ok(existing) = fs::read_to_string(&path) {
                    reg.load_existing(&existing);
                }
            }
        }
    }
}

/// Writes the report (when `--json` is active). Called by the `main` that
/// [`criterion_main!`] generates, after all groups ran.
pub fn finish() {
    registry().lock().expect("bench registry poisoned").flush();
}

fn record_bench(id: &str, median: Duration, samples: u32) {
    let mut reg = registry().lock().expect("bench registry poisoned");
    reg.benches.retain(|b| b.id != id);
    reg.benches.push(BenchRecord {
        id: id.to_string(),
        median_ns: median.as_nanos(),
        samples,
    });
    reg.flush();
}

/// Records a speedup acceptance gate — `measured` must be ≥ `required` —
/// into the machine-readable report, then enforces it: a shortfall panics
/// with both numbers, which fails `cargo bench` and the CI `bench-gate`.
/// The outcome is flushed *before* the panic, so a tripped gate is still
/// visible in the JSON artifact.
pub fn acceptance(name: &str, measured: f64, required: f64) {
    let passed = measured >= required;
    {
        let mut reg = registry().lock().expect("bench registry poisoned");
        reg.assertions.retain(|a| a.name != name);
        reg.assertions.push(AssertRecord {
            name: name.to_string(),
            measured,
            required,
            passed,
        });
        reg.flush();
    }
    println!(
        "acceptance {name:<40} measured {measured:>8.2}x  required {required:>5.2}x  [{}]",
        if passed { "ok" } else { "FAILED" }
    );
    assert!(
        passed,
        "acceptance `{name}`: measured {measured:.2}x < required {required:.2}x"
    );
}

fn run_one(group: Option<&str>, id: &BenchmarkId, samples: u32, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_median: Duration::ZERO,
    };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{}", id.name),
        None => id.name.clone(),
    };
    record_bench(&full, b.last_median, samples);
    println!(
        "{full:<48} time: {} ({samples} samples)",
        fmt_duration(b.last_median)
    );
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u32;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut f = f;
        run_one(Some(&self.name), &id, self.samples, |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut f = f;
        run_one(Some(&self.name), &id, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// The top-level harness handle passed to bench functions.
#[derive(Default)]
pub struct Criterion {
    default_samples: u32,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        };
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        };
        let mut f = f;
        run_one(None, &id, samples, |b| f(b));
        self
    }
}

/// Declares a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups. Parses
/// `--json <path>` from the harness arguments and writes/merges the
/// machine-readable report after the groups finish.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args(std::env::args().skip(1));
            $($group();)+
            $crate::finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_load() {
        let reg = Registry {
            path: None,
            benches: vec![
                BenchRecord {
                    id: "e7_engine/cold_compile".into(),
                    median_ns: 350_123,
                    samples: 15,
                },
                BenchRecord {
                    id: "weird \"id\" with, braces}".into(),
                    median_ns: 7,
                    samples: 1,
                },
            ],
            assertions: vec![AssertRecord {
                name: "e9_parallel/scaling".into(),
                measured: 2.41,
                required: 2.0,
                passed: true,
            }],
        };
        let text = reg.render();
        let mut loaded = Registry::default();
        loaded.load_existing(&text);
        assert_eq!(loaded.benches, reg.benches);
        assert_eq!(loaded.assertions, reg.assertions);
    }

    #[test]
    fn merge_replaces_same_id() {
        let mut reg = Registry::default();
        reg.load_existing(
            "{\n  \"benches\": [\n    {\"id\": \"a\", \"median_ns\": 1, \"samples\": 2}\n  ],\n  \"assertions\": [\n  ]\n}\n",
        );
        assert_eq!(reg.benches.len(), 1);
        reg.benches.retain(|b| b.id != "a");
        reg.benches.push(BenchRecord {
            id: "a".into(),
            median_ns: 9,
            samples: 3,
        });
        assert_eq!(reg.benches.len(), 1);
        assert_eq!(reg.benches[0].median_ns, 9);
    }

    #[test]
    fn field_extraction_handles_escapes_and_numbers() {
        let line = r#"{"id": "a\\b \"c\"", "median_ns": 42, "samples": 15}"#;
        assert_eq!(field(line, "id").unwrap(), "a\\b \"c\"");
        assert_eq!(field(line, "median_ns").unwrap(), "42");
        let line = r#"{"name": "n", "measured": 2.4100, "required": 2.0000, "passed": false}"#;
        assert_eq!(field(line, "passed").unwrap(), "false");
        assert_eq!(field(line, "measured").unwrap(), "2.4100");
    }
}
