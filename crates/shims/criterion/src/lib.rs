//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the criterion API the `richwasm-bench` suite
//! uses, measuring wall-clock time with `std::time::Instant` and printing
//! one line per benchmark:
//!
//! ```text
//! e1_interop/static_typed_run   time: 12.345 µs (20 samples)
//! ```
//!
//! There is no statistical analysis, warm-up tuning, or report output —
//! this exists so `cargo bench` runs offline; swap in the real crate for
//! publication-grade numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name` with a parameter rendered after a slash, criterion-style.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Only a parameter (used as the whole id).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Drives the timed closure.
pub struct Bencher {
    samples: u32,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Times `f`, running `samples` measured iterations after a short
    /// warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = start.elapsed() / self.samples;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(group: Option<&str>, id: &BenchmarkId, samples: u32, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_mean: Duration::ZERO,
    };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{}", id.name),
        None => id.name.clone(),
    };
    println!(
        "{full:<48} time: {} ({samples} samples)",
        fmt_duration(b.last_mean)
    );
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u32;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut f = f;
        run_one(Some(&self.name), &id, self.samples, |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut f = f;
        run_one(Some(&self.name), &id, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// The top-level harness handle passed to bench functions.
#[derive(Default)]
pub struct Criterion {
    default_samples: u32,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        };
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        };
        let mut f = f;
        run_one(None, &id, samples, |b| f(b));
        self
    }
}

/// Declares a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
