//! The fuzz case representation: source modules, host-import behaviour,
//! and engine knobs, kept as *data* so a case can be re-built into a
//! [`ModuleSet`] any number of times (differential run, minimization,
//! reproducer files) without capturing closures.

use richwasm_l3::L3Module;
use richwasm_ml::MlModule;
use richwasm_repro::call::{HostSig, HostVal, HostValType};
use richwasm_repro::engine::ModuleSet;

/// One source module of a case.
#[derive(Debug, Clone)]
pub enum SourceModule {
    /// A raw RichWasm module (the type-directed synthesis tier).
    Rw(richwasm::syntax::Module),
    /// A core-ML module.
    Ml(MlModule),
    /// An L3 module.
    L3(L3Module),
}

/// The behaviour of a generated host import: a pure `i32 → i32`
/// function. Kept first-order so reproducers can print it and rebuilding
/// is exact.
#[derive(Debug, Clone, Copy)]
pub enum HostBehavior {
    /// `|x| x.wrapping_add(k)`.
    AddK(i32),
    /// `|x| x.wrapping_mul(k) ^ m`.
    MulXor(i32, i32),
}

impl HostBehavior {
    fn apply(self, x: i32) -> i32 {
        match self {
            HostBehavior::AddK(k) => x.wrapping_add(k),
            HostBehavior::MulXor(k, m) => x.wrapping_mul(k) ^ m,
        }
    }
}

/// A host import: module/export name plus behaviour.
#[derive(Debug, Clone)]
pub struct HostImportSpec {
    /// Host module name (what guests import from).
    pub module: String,
    /// Export name.
    pub name: String,
    /// The pure behaviour.
    pub behavior: HostBehavior,
}

/// A complete generated case.
#[derive(Debug, Clone)]
pub struct FuzzProgram {
    /// Named source modules, in registration order.
    pub modules: Vec<(String, SourceModule)>,
    /// Host imports installed into both backends.
    pub hosts: Vec<HostImportSpec>,
    /// The entry module (its exported `main` is invoked).
    pub entry: String,
    /// GC-stress knob: collect after every `n` allocations when set.
    pub gc_every: Option<u64>,
}

impl FuzzProgram {
    /// Rebuilds the [`ModuleSet`] for this case.
    pub fn module_set(&self) -> ModuleSet {
        let mut set = ModuleSet::new();
        for (name, m) in &self.modules {
            set = match m {
                SourceModule::Rw(m) => set.richwasm(name.clone(), m.clone()),
                SourceModule::Ml(m) => set.ml(name.clone(), m.clone()),
                SourceModule::L3(m) => set.l3(name.clone(), m.clone()),
            };
        }
        for h in &self.hosts {
            let behavior = h.behavior;
            set = set.host_fn(
                h.module.clone(),
                h.name.clone(),
                HostSig::new(vec![HostValType::I32], vec![HostValType::I32]),
                move |args: &[HostVal]| {
                    let x = match args {
                        [HostVal::I32(x)] => *x,
                        _ => return Err("host arity".into()),
                    };
                    Ok(vec![HostVal::I32(behavior.apply(x))])
                },
            );
        }
        set.entry(self.entry.clone())
    }

    /// The raw RichWasm view of every module: raw modules as-is, ML/L3
    /// modules through their compilers. Used for rule-coverage accounting
    /// and mutation. Frontend failures yield `None` entries (they are a
    /// harness failure elsewhere).
    pub fn rw_modules(&self) -> Vec<Option<richwasm::syntax::Module>> {
        self.modules
            .iter()
            .map(|(_, m)| match m {
                SourceModule::Rw(m) => Some(m.clone()),
                SourceModule::Ml(m) => richwasm_ml::compile_module(m).ok(),
                SourceModule::L3(m) => richwasm_l3::compile_module(m).ok(),
            })
            .collect()
    }

    /// A single-module raw-tier case (the common shape).
    pub fn raw(m: richwasm::syntax::Module) -> FuzzProgram {
        FuzzProgram {
            modules: vec![("m".into(), SourceModule::Rw(m))],
            hosts: vec![],
            entry: "m".into(),
            gc_every: None,
        }
    }

    /// A printable reproducer: Rust-debug ASTs plus knobs, enough to
    /// rebuild the exact case by hand (and the seed in the surrounding
    /// report rebuilds it mechanically).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "entry: {}", self.entry);
        let _ = writeln!(out, "gc_every: {:?}", self.gc_every);
        for h in &self.hosts {
            let _ = writeln!(out, "host {}::{} = {:?}", h.module, h.name, h.behavior);
        }
        for (name, m) in &self.modules {
            match m {
                SourceModule::Rw(m) => {
                    let _ = writeln!(out, "\n-- module {name} (richwasm) --\n{m}");
                    let _ = writeln!(out, "(ast) {m:?}");
                }
                SourceModule::Ml(m) => {
                    let _ = writeln!(out, "\n-- module {name} (ml) --\n{m:?}");
                }
                SourceModule::L3(m) => {
                    let _ = writeln!(out, "\n-- module {name} (l3) --\n{m:?}");
                }
            }
        }
        out
    }
}
