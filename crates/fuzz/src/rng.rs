//! Thin sampling helpers over the proptest shim's [`TestRng`].
//!
//! The shim's RNG is a bare SplitMix64; the generator wants weighted
//! choices and small ranges. Everything here is deterministic in the
//! seed — the farm's reproducibility rests on it.

pub use proptest::test_runner::TestRng;

/// Sampling convenience over a [`TestRng`].
#[derive(Debug)]
pub struct Rng {
    inner: TestRng,
}

impl Rng {
    /// Seeds from an explicit value (environment-independent).
    pub fn from_seed(seed: u64) -> Rng {
        Rng {
            inner: TestRng::from_seed(seed),
        }
    }

    /// Derives the per-case RNG for case `index` of a run seeded with
    /// `run_seed`. Cases are decorrelated by construction: each gets its
    /// own SplitMix64 stream.
    pub fn for_case(run_seed: u64, index: u64) -> Rng {
        Rng::from_seed(run_seed ^ index.rotate_left(17).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[lo, hi]`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + (self.below((hi - lo + 1) as u64) as i64)
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// A uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// A weighted pick: returns the index of the chosen weight.
    /// Zero-weight entries are never chosen unless all weights are zero
    /// (then the pick is uniform).
    pub fn pick_weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return self.below(weights.len() as u64) as usize;
        }
        let mut roll = self.below(total);
        for (i, w) in weights.iter().enumerate() {
            if roll < *w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::from_seed(7);
        let mut b = Rng::from_seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn case_streams_decorrelate() {
        let mut a = Rng::for_case(1, 0);
        let mut b = Rng::for_case(1, 1);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_and_weighted_stay_in_bounds() {
        let mut r = Rng::from_seed(3);
        for _ in 0..200 {
            let v = r.range(-5, 5);
            assert!((-5..=5).contains(&v));
            let i = r.pick_weighted(&[0, 3, 1]);
            assert!(i == 1 || i == 2);
        }
        assert!(r.pick_weighted(&[0, 0]) < 2);
    }
}
