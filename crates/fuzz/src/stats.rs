//! Corpus statistics: what the sweep did, as a small JSON document.
//!
//! CI uploads this next to the bench JSON and merges the headline
//! numbers (case counts, adversarial rejection rate, rule coverage)
//! into the bench-gate summary. The JSON is hand-rolled — keys are
//! fixed identifiers and values are numbers, so no escaping is needed
//! (this repo deliberately has no serde dependency).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use richwasm::typecheck::RuleCoverage;

use crate::gen::Tier;
use crate::harness::FailureKind;
use crate::mutate::MutationKind;

/// Versioned schema tag.
pub const SCHEMA: &str = "richwasm-fuzz-corpus-stats/1";

/// Aggregated sweep statistics.
#[derive(Debug, Default)]
pub struct CorpusStats {
    /// The run seed (printed in CI logs; reproduces the whole sweep).
    pub seed: u64,
    /// Well-typed cases run.
    pub cases: u64,
    /// Cases that passed every check.
    pub ok: u64,
    /// Per-tier (cases, ok).
    pub by_tier: BTreeMap<&'static str, (u64, u64)>,
    /// Failing cases per failure class.
    pub failures: BTreeMap<&'static str, u64>,
    /// Adversarial mutants applied.
    pub adversarial_total: u64,
    /// Mutants correctly rejected by the checker.
    pub adversarial_rejected: u64,
    /// Per-mutation-kind (applied, rejected).
    pub adversarial_by_kind: BTreeMap<&'static str, (u64, u64)>,
    /// Rule coverage accumulated over the corpus.
    pub coverage: RuleCoverage,
    /// Wall-clock of the sweep in milliseconds.
    pub wall_ms: u64,
}

impl CorpusStats {
    /// New empty stats for a run.
    pub fn new(seed: u64) -> CorpusStats {
        CorpusStats {
            seed,
            coverage: RuleCoverage::new(),
            ..CorpusStats::default()
        }
    }

    /// Records one well-typed case outcome.
    pub fn record_case(&mut self, tier: Tier, ok: bool, failure: Option<FailureKind>) {
        self.cases += 1;
        let t = self.by_tier.entry(tier.name()).or_insert((0, 0));
        t.0 += 1;
        if ok {
            self.ok += 1;
            t.1 += 1;
        }
        if let Some(kind) = failure {
            *self.failures.entry(kind.name()).or_insert(0) += 1;
        }
    }

    /// Records one adversarial mutant outcome.
    pub fn record_mutant(&mut self, kind: MutationKind, rejected: bool) {
        self.adversarial_total += 1;
        let k = self
            .adversarial_by_kind
            .entry(kind.name())
            .or_insert((0, 0));
        k.0 += 1;
        if rejected {
            self.adversarial_rejected += 1;
            k.1 += 1;
        }
    }

    /// Total failing cases (well-typed side).
    pub fn failed(&self) -> u64 {
        self.cases - self.ok
    }

    /// Mutants the checker wrongly *accepted* (soundness holes).
    pub fn mutants_accepted(&self) -> u64 {
        self.adversarial_total - self.adversarial_rejected
    }

    /// Whether the sweep as a whole passed.
    pub fn passed(&self) -> bool {
        self.failed() == 0 && self.mutants_accepted() == 0
    }

    /// Renders the stats document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"passed\": {},", self.passed());
        let _ = writeln!(s, "  \"cases\": {},", self.cases);
        let _ = writeln!(s, "  \"ok\": {},", self.ok);
        let _ = writeln!(s, "  \"failed\": {},", self.failed());

        let _ = writeln!(s, "  \"by_tier\": {{");
        let tiers: Vec<_> = self.by_tier.iter().collect();
        for (i, (name, (cases, ok))) in tiers.iter().enumerate() {
            let comma = if i + 1 < tiers.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    \"{name}\": {{\"cases\": {cases}, \"ok\": {ok}}}{comma}"
            );
        }
        let _ = writeln!(s, "  }},");

        let _ = writeln!(s, "  \"failures\": {{");
        let fails: Vec<_> = self.failures.iter().collect();
        for (i, (name, n)) in fails.iter().enumerate() {
            let comma = if i + 1 < fails.len() { "," } else { "" };
            let _ = writeln!(s, "    \"{name}\": {n}{comma}");
        }
        let _ = writeln!(s, "  }},");

        let _ = writeln!(s, "  \"adversarial\": {{");
        let _ = writeln!(s, "    \"total\": {},", self.adversarial_total);
        let _ = writeln!(s, "    \"rejected\": {},", self.adversarial_rejected);
        let _ = writeln!(s, "    \"accepted\": {},", self.mutants_accepted());
        let _ = writeln!(s, "    \"by_kind\": {{");
        let kinds: Vec<_> = self.adversarial_by_kind.iter().collect();
        for (i, (name, (applied, rejected))) in kinds.iter().enumerate() {
            let comma = if i + 1 < kinds.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "      \"{name}\": {{\"applied\": {applied}, \"rejected\": {rejected}}}{comma}"
            );
        }
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }},");

        let _ = writeln!(s, "  \"rule_coverage\": {{");
        let _ = writeln!(s, "    \"covered\": {},", self.coverage.covered());
        let _ = writeln!(s, "    \"total\": {},", self.coverage.total());
        let _ = writeln!(s, "    \"counts\": {{");
        let counts: Vec<_> = self.coverage.iter().collect();
        for (i, (rule, n)) in counts.iter().enumerate() {
            let comma = if i + 1 < counts.len() { "," } else { "" };
            let _ = writeln!(s, "      \"{}\": {n}{comma}", rule.name());
        }
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }},");

        let _ = writeln!(s, "  \"wall_ms\": {}", self.wall_ms);
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_pass_logic() {
        let mut st = CorpusStats::new(42);
        st.record_case(Tier::Raw, true, None);
        st.record_case(Tier::Ml, false, Some(FailureKind::Mismatch));
        st.record_mutant(MutationKind::LeakLinear, true);
        assert!(!st.passed());
        let json = st.to_json();
        assert!(json.contains("\"schema\": \"richwasm-fuzz-corpus-stats/1\""));
        assert!(json.contains("\"mismatch\": 1"));
        assert!(json.contains("\"leak_linear\": {\"applied\": 1, \"rejected\": 1}"));
        assert!(json.contains("\"passed\": false"));
        // Balanced braces (cheap well-formedness proxy; CI runs jq on it).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
