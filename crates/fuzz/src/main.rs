//! The `fuzz` binary: sweep driver for the differential fuzz farm.
//!
//! ```text
//! fuzz [--cases N] [--adversarial N] [--seed S] [--stats-json PATH]
//!      [--artifacts-dir DIR] [--max-failures K] [--no-bytecode-check]
//! ```
//!
//! The bytecode-vs-tree-walker differential (`WasmTier::Check` on
//! host-free cases) is **on** by default; `--no-bytecode-check` pins
//! the pre-bytecode farm behaviour for A/B comparisons.
//!
//! Seed resolution: `--seed` > `RW_FUZZ_SEED` (the proptest shim's env
//! hook) > a fixed default. The seed is always printed — pasting it
//! back via `--seed` reproduces the exact sweep, and each failing case
//! additionally names its own `(seed, index)` pair in the reproducer.
//!
//! Exit status: 0 iff every well-typed case passed every check AND
//! every adversarial mutant was rejected.

use std::path::{Path, PathBuf};
use std::time::Instant;

use proptest::test_runner::env_seed;
use richwasm::typecheck::{check_module, coverage_of_module};
use richwasm_fuzz::{
    gen_program, minimize_module, mutate, pick_tier, run_case, run_case_with, CaseOutcome,
    CorpusStats, FuzzProgram, MutationKind, Rng, SourceModule,
};

const DEFAULT_SEED: u64 = 0x5269_6368_5761_736d; // "RichWasm"

struct Args {
    cases: u64,
    adversarial: u64,
    seed: u64,
    stats_json: Option<PathBuf>,
    artifacts_dir: PathBuf,
    max_failures: u64,
    bytecode_check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 10_000,
        adversarial: 500,
        seed: env_seed().unwrap_or(DEFAULT_SEED),
        stats_json: None,
        artifacts_dir: PathBuf::from("fuzz/artifacts"),
        max_failures: 5,
        bytecode_check: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--cases" => args.cases = parse_u64(&val("--cases")?)?,
            "--adversarial" => args.adversarial = parse_u64(&val("--adversarial")?)?,
            "--seed" => args.seed = parse_u64(&val("--seed")?)?,
            "--stats-json" => args.stats_json = Some(PathBuf::from(val("--stats-json")?)),
            "--artifacts-dir" => args.artifacts_dir = PathBuf::from(val("--artifacts-dir")?),
            "--max-failures" => args.max_failures = parse_u64(&val("--max-failures")?)?,
            "--no-bytecode-check" => args.bytecode_check = false,
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--cases N] [--adversarial N] [--seed S] \
                     [--stats-json PATH] [--artifacts-dir DIR] [--max-failures K] \
                     [--no-bytecode-check]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse_u64(raw: &str) -> Result<u64, String> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    }
    .map_err(|_| format!("not a number: `{raw}`"))
}

/// Writes a reproducer file; failures to write are themselves fatal
/// (CI must never silently lose a reproducer).
fn write_reproducer(dir: &Path, name: &str, contents: &str) {
    std::fs::create_dir_all(dir).expect("create artifacts dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write reproducer");
    eprintln!("    reproducer: {}", path.display());
}

/// For failing single-raw-module cases: shrink the module while the
/// failure class is preserved, and render the result.
fn minimized_repro(prog: &FuzzProgram, kind_name: &str) -> Option<String> {
    let [(name, SourceModule::Rw(m))] = prog.modules.as_slice() else {
        return None;
    };
    let mut keep = |cand: &richwasm::syntax::Module| {
        let mut p = prog.clone();
        p.modules = vec![(name.clone(), SourceModule::Rw(cand.clone()))];
        match run_case(&p) {
            CaseOutcome::Failed { kind, .. } => kind.name() == kind_name,
            CaseOutcome::Ok { .. } => false,
        }
    };
    if !keep(m) {
        return None; // failure did not reproduce on re-run; keep original
    }
    let min = minimize_module(m, &mut keep);
    Some(format!("-- minimized module --\n{min}\n(ast) {min:?}\n"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "fuzz: seed={:#x} cases={} adversarial={} bytecode_check={} \
         (reproduce with --seed {:#x})",
        args.seed, args.cases, args.adversarial, args.bytecode_check, args.seed
    );

    let t0 = Instant::now();
    let mut stats = CorpusStats::new(args.seed);
    let mut failures = 0u64;

    // ---- Well-typed sweep -------------------------------------------
    for i in 0..args.cases {
        let mut rng = Rng::for_case(args.seed, i);
        let tier = pick_tier(&mut rng);
        let prog = gen_program(tier, &mut rng, &stats.coverage);
        for m in prog.rw_modules().into_iter().flatten() {
            coverage_of_module(&m, &mut stats.coverage);
        }
        match run_case_with(&prog, args.bytecode_check) {
            CaseOutcome::Ok { .. } => stats.record_case(tier, true, None),
            CaseOutcome::Failed { kind, detail } => {
                stats.record_case(tier, false, Some(kind));
                failures += 1;
                eprintln!(
                    "fuzz: case {i} ({}) FAILED [{}]: {detail}",
                    tier.name(),
                    kind.name()
                );
                let mut repro = format!(
                    "seed: {:#x}\ncase: {i}\ntier: {}\nfailure: {}\ndetail: {detail}\n\n{}",
                    args.seed,
                    tier.name(),
                    kind.name(),
                    prog.describe()
                );
                if let Some(min) = minimized_repro(&prog, kind.name()) {
                    repro.push('\n');
                    repro.push_str(&min);
                }
                write_reproducer(
                    &args.artifacts_dir,
                    &format!("case_{i}_{}.txt", kind.name()),
                    &repro,
                );
                if failures >= args.max_failures {
                    eprintln!("fuzz: stopping after {failures} failures (--max-failures)");
                    break;
                }
            }
        }
    }

    // ---- Adversarial sweep ------------------------------------------
    // Cycle mutation kinds over freshly generated programs until the
    // requested number of *applied* mutants is reached (some kinds
    // don't apply to some programs).
    let mut applied = 0u64;
    let mut attempt = 0u64;
    while applied < args.adversarial && attempt < args.adversarial * 20 {
        let mut rng = Rng::for_case(args.seed ^ 0xADBE_EF00, attempt);
        attempt += 1;
        let tier = pick_tier(&mut rng);
        let prog = gen_program(tier, &mut rng, &stats.coverage);
        let kind = MutationKind::ALL[(attempt as usize) % MutationKind::ALL.len()];
        for m in prog.rw_modules().into_iter().flatten() {
            let Some(mutant) = mutate(&m, kind) else {
                continue;
            };
            applied += 1;
            let rejected = check_module(&mutant).is_err();
            stats.record_mutant(kind, rejected);
            if !rejected {
                eprintln!(
                    "fuzz: mutant {attempt} [{}] ACCEPTED by the checker (soundness hole)",
                    kind.name()
                );
                write_reproducer(
                    &args.artifacts_dir,
                    &format!("mutant_{attempt}_{}.txt", kind.name()),
                    &format!(
                        "seed: {:#x}\nmutation: {}\n\n-- mutant --\n{mutant}\n(ast) {mutant:?}\n\n{}",
                        args.seed,
                        kind.name(),
                        prog.describe()
                    ),
                );
            }
            break; // one mutant per generated program
        }
    }
    if applied < args.adversarial {
        eprintln!(
            "fuzz: WARNING only {applied}/{} adversarial mutants applied",
            args.adversarial
        );
    }

    // ---- Report ------------------------------------------------------
    stats.wall_ms = t0.elapsed().as_millis() as u64;
    println!(
        "fuzz: {}/{} cases ok, {}/{} mutants rejected, rule coverage {}/{}, {} ms",
        stats.ok,
        stats.cases,
        stats.adversarial_rejected,
        stats.adversarial_total,
        stats.coverage.covered(),
        stats.coverage.total(),
        stats.wall_ms
    );
    if let Some(path) = &args.stats_json {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create stats dir");
            }
        }
        std::fs::write(path, stats.to_json()).expect("write stats json");
        println!("fuzz: stats written to {}", path.display());
    }
    if !stats.passed() {
        eprintln!(
            "fuzz: FAILED ({} case failures, {} accepted mutants)",
            stats.failed(),
            stats.mutants_accepted()
        );
        std::process::exit(1);
    }
}
