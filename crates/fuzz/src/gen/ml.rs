//! ML-tier generation: random core-ML programs through the ML compiler.
//!
//! Programs are well-typed by construction at the ML level (every
//! production is type-directed over `MlTy::Int` with let-bound variable
//! environments); the ML compiler then establishes RichWasm typing. The
//! tier keeps closure conversion, sum/case lowering, ref cells, rec
//! fold/unfold, and the global machinery hot — instruction shapes the
//! raw tier's templates don't emit (`coderef`/`call_indirect` chains
//! from closure application, `rec.fold`, demoted refs).

use richwasm_ml::builder::{
    add, app, assign, binop, call, case, deref, if_, inj, int, lam, let_, new_ref, proj, seq,
    tuple, var, MlModuleBuilder,
};
use richwasm_ml::{MlBinop, MlExpr, MlTy};

use crate::program::{FuzzProgram, SourceModule};
use crate::rng::Rng;

/// Int-typed expression generator. `vars` is the set of in-scope
/// int-typed variables.
struct MlGen<'a> {
    rng: &'a mut Rng,
    /// In-scope `Int` variables (let-bound and parameters).
    vars: Vec<String>,
    /// Names of callable helper functions, each `Int → Int`.
    helpers: Vec<String>,
    /// Number of readable `Int` globals (named `g0..`).
    n_int_globals: u32,
    /// Whether the `cell` global (`Ref Int`) exists.
    has_cell: bool,
    fresh: u32,
}

impl MlGen<'_> {
    fn fresh(&mut self) -> String {
        self.fresh += 1;
        format!("x{}", self.fresh)
    }

    fn leaf(&mut self) -> MlExpr {
        if !self.vars.is_empty() && self.rng.chance(45) {
            var(self.rng.pick(&self.vars).clone())
        } else if self.n_int_globals > 0 && self.rng.chance(20) {
            var(format!(
                "g{}",
                self.rng.below(u64::from(self.n_int_globals))
            ))
        } else {
            int(self.rng.range(-99, 99) as i32)
        }
    }

    fn gen(&mut self, depth: u32) -> MlExpr {
        if depth == 0 {
            return self.leaf();
        }
        let d = depth - 1;
        let mut prods: Vec<u64> = vec![
            8,  // 0 leaf
            12, // 1 arith binop
            3,  // 2 division by nonzero constant
            4,  // 3 comparison
            6,  // 4 let
            5,  // 5 if
            4,  // 6 tuple/proj
            4,  // 7 ref round trip
            4,  // 8 sum inj/case
            4,  // 9 closure app
            3,  // 10 seq
            2,  // 11 rec fold/unfold
        ];
        prods.push(if self.helpers.is_empty() { 0 } else { 6 }); // 12 call
        prods.push(if self.has_cell { 4 } else { 0 }); // 13 cell assign/deref

        match self.rng.pick_weighted(&prods) {
            0 => self.leaf(),
            1 => {
                let op = *self.rng.pick(&[MlBinop::Add, MlBinop::Sub, MlBinop::Mul]);
                binop(op, self.gen(d), self.gen(d))
            }
            2 => binop(MlBinop::Div, self.gen(d), int(self.rng.range(1, 7) as i32)),
            3 => {
                let op = *self.rng.pick(&[MlBinop::Eq, MlBinop::Lt]);
                binop(op, self.gen(d), self.gen(d))
            }
            4 => {
                let x = self.fresh();
                let bound = self.gen(d);
                self.vars.push(x.clone());
                let body = self.gen(d);
                self.vars.pop();
                let_(x, bound, body)
            }
            5 => if_(self.gen(d), self.gen(d), self.gen(d)),
            6 => {
                let i = self.rng.below(2) as usize;
                proj(i, tuple(vec![self.gen(d), self.gen(d)]))
            }
            7 => {
                let x = self.fresh();
                let init = self.gen(d);
                let update = self.gen(d);
                let_(
                    x.clone(),
                    new_ref(init),
                    seq(assign(var(x.clone()), update), deref(var(x))),
                )
            }
            8 => {
                let sum = MlTy::Sum(vec![MlTy::Int, MlTy::Int]);
                let tag = self.rng.below(2) as usize;
                let payload = self.gen(d);
                let a = self.fresh();
                self.vars.push(a.clone());
                let arm0 = self.gen(d);
                let arm1 = self.gen(d);
                self.vars.pop();
                case(
                    inj(sum, tag, payload),
                    vec![(a.as_str(), arm0), (a.as_str(), arm1)],
                )
            }
            9 => {
                let p = self.fresh();
                self.vars.push(p.clone());
                let body = self.gen(d);
                self.vars.pop();
                app(lam(p, MlTy::Int, MlTy::Int, body), self.gen(d))
            }
            10 => seq(self.gen(d), self.gen(d)),
            11 => MlExpr::Unfold(Box::new(MlExpr::Fold(
                MlTy::Rec(Box::new(MlTy::Int)),
                Box::new(self.gen(d)),
            ))),
            12 => {
                let h = self.rng.pick(&self.helpers).clone();
                call(h, vec![self.gen(d)])
            }
            13 => seq(assign(var("cell"), self.gen(d)), deref(var("cell"))),
            _ => self.leaf(),
        }
    }
}

/// Generates one ML-tier case: helpers + globals + an exported nullary
/// `main : Int`.
pub fn gen_ml(rng: &mut Rng) -> FuzzProgram {
    let n_int_globals = rng.below(3) as u32;
    let has_cell = rng.chance(40);
    let n_helpers = rng.below(3) as u32;

    let mut b = MlModuleBuilder::new();
    for g in 0..n_int_globals {
        b = b.global(format!("g{g}"), MlTy::Int, int(rng.range(-50, 50) as i32));
    }
    if has_cell {
        b = b.global(
            "cell",
            MlTy::Ref(Box::new(MlTy::Int)),
            new_ref(int(rng.range(-50, 50) as i32)),
        );
    }

    let mut helpers: Vec<String> = Vec::new();
    for h in 0..n_helpers {
        let name = format!("h{h}");
        let mut g = MlGen {
            rng,
            vars: vec!["a".into()],
            helpers: helpers.clone(),
            n_int_globals,
            has_cell,
            fresh: 0,
        };
        let body = add(var("a"), g.gen(2));
        b = b.fun(name.clone(), false, vec![("a", MlTy::Int)], MlTy::Int, body);
        helpers.push(name);
    }

    let mut g = MlGen {
        rng,
        vars: vec![],
        helpers,
        n_int_globals,
        has_cell,
        fresh: 100,
    };
    let body = g.gen(4);
    b = b.fun("main", true, vec![], MlTy::Int, body);

    FuzzProgram {
        modules: vec![("m".into(), SourceModule::Ml(b.build()))],
        hosts: vec![],
        entry: "m".into(),
        gc_every: if rng.chance(30) {
            Some(1 + rng.below(30))
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use richwasm::typecheck::check_module;

    #[test]
    fn generated_ml_compiles_and_checks() {
        for seed in 0..40 {
            let mut rng = Rng::for_case(0x717, seed);
            let prog = gen_ml(&mut rng);
            for m in &prog.rw_modules() {
                let m = m.as_ref().expect("ML compile succeeds");
                check_module(m).expect("compiled ML typechecks");
            }
        }
    }
}
