//! Typed-program generators, one per source tier.
//!
//! Every generator produces programs that are **well-typed by
//! construction**: the raw tier synthesises RichWasm terms directly from
//! the checker's typing rules (each production's stack discipline is
//! written against `richwasm::typecheck`), while the ML/L3/interop tiers
//! build surface programs whose compilers establish typing. The harness
//! still runs the checker on every case — a rejection of a generated
//! program is a *generator or checker bug* and is reported as a failure,
//! never skipped.

pub mod interop;
pub mod l3;
pub mod ml;
pub mod rw;

use richwasm::typecheck::RuleCoverage;

use crate::program::FuzzProgram;
use crate::rng::Rng;

/// The source tier of a generated case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Raw RichWasm, synthesised type-directed (the dominant tier).
    Raw,
    /// Core-ML programs through the ML compiler.
    Ml,
    /// L3 programs through the L3 compiler.
    L3,
    /// Cross-language ML⇄L3 module pairs.
    Interop,
}

impl Tier {
    /// Stable snake_case name (stats JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Raw => "raw",
            Tier::Ml => "ml",
            Tier::L3 => "l3",
            Tier::Interop => "interop",
        }
    }

    /// All tiers, in stats order.
    pub const ALL: [Tier; 4] = [Tier::Raw, Tier::Ml, Tier::L3, Tier::Interop];
}

/// Picks a tier for case generation. The raw tier dominates (it is the
/// only one that explores the full instruction space); the compiled
/// tiers keep the frontend pipelines and the linking boundary hot.
pub fn pick_tier(rng: &mut Rng) -> Tier {
    match rng.below(100) {
        0..=69 => Tier::Raw,
        70..=81 => Tier::Ml,
        82..=93 => Tier::L3,
        _ => Tier::Interop,
    }
}

/// Generates one case of the given tier. `cov` is the accumulated rule
/// coverage of the corpus so far; the raw generator biases towards
/// productions whose typing rules have not been exercised yet.
pub fn gen_program(tier: Tier, rng: &mut Rng, cov: &RuleCoverage) -> FuzzProgram {
    match tier {
        Tier::Raw => rw::gen_raw(rng, cov),
        Tier::Ml => ml::gen_ml(rng),
        Tier::L3 => l3::gen_l3(rng),
        Tier::Interop => interop::gen_interop(rng),
    }
}
