//! Type-directed synthesis of raw RichWasm modules.
//!
//! The generator is written *against the typing rules*: every production
//! emits an instruction sequence whose net stack effect is exactly one
//! value of the requested numeric type, with all intermediate states
//! checked against `richwasm::typecheck`'s rules by construction —
//! linear references are always consumed (freed or, for GC'd cells,
//! dropped), loop back-edges preserve entry local types, `MemUnpack`
//! bodies declare their local effects, and every trap source is fenced
//! (no `unreachable`, constant non-zero divisors, constant in-bounds
//! array indices).
//!
//! Production choice is **coverage-biased**: productions whose primary
//! typing rule ([`Rule`]) has not yet been exercised by the corpus get a
//! 4× weight boost, so the farm converges on exercising every reachable
//! rule early in a sweep.

use richwasm::syntax::instr::{IntBinop, IntRelop, IntUnop, Sign};
use richwasm::syntax::{
    ArrowType, Block, FunType, Func, Global, GlobalKind, HeapType, Instr, LocalEffect, Module,
    NumInstr, NumType, Pretype, Qual, Size, Table, Type, Value,
};
use richwasm::typecheck::{Rule, RuleCoverage};

use crate::program::{FuzzProgram, HostBehavior, HostImportSpec, SourceModule};
use crate::rng::Rng;

const I32: NumType = NumType::I32;
const I64: NumType = NumType::I64;

fn i32t() -> Type {
    Type::num(I32)
}

fn num(i: NumInstr) -> Instr {
    Instr::Num(i)
}

fn binop(nt: NumType, op: IntBinop) -> Instr {
    num(NumInstr::IntBinop(nt, op))
}

fn add32() -> Instr {
    binop(I32, IntBinop::Add)
}

fn relop(nt: NumType, op: IntRelop) -> Instr {
    num(NumInstr::IntRelop(nt, op))
}

/// Binops safe for arbitrary operands (no trap on any input).
const SAFE_BINOPS: [IntBinop; 11] = [
    IntBinop::Add,
    IntBinop::Sub,
    IntBinop::Mul,
    IntBinop::And,
    IntBinop::Or,
    IntBinop::Xor,
    IntBinop::Shl,
    IntBinop::Shr(Sign::S),
    IntBinop::Shr(Sign::U),
    IntBinop::Rotl,
    IntBinop::Rotr,
];

const RELOPS: [IntRelop; 10] = [
    IntRelop::Eq,
    IntRelop::Ne,
    IntRelop::Lt(Sign::S),
    IntRelop::Lt(Sign::U),
    IntRelop::Gt(Sign::S),
    IntRelop::Gt(Sign::U),
    IntRelop::Le(Sign::S),
    IntRelop::Le(Sign::U),
    IntRelop::Ge(Sign::S),
    IntRelop::Ge(Sign::U),
];

const UNOPS: [IntUnop; 3] = [IntUnop::Clz, IntUnop::Ctz, IntUnop::Popcnt];

/// A callable target visible from a function body.
#[derive(Debug, Clone, Copy)]
struct Callee {
    /// Function index (for `Call`) or table slot (for `CodeRefI`).
    index: u32,
    /// Number of i32 parameters (result is always one i32).
    arity: u32,
}

/// Per-function generation state.
struct FnGen<'a> {
    rng: &'a mut Rng,
    cov: &'a RuleCoverage,
    /// Remaining instruction budget; productions stop recursing at zero.
    budget: i64,
    /// Current loop nesting depth (bounds the protected counter slots).
    loop_depth: u32,
    n_params: u32,
    /// Directly callable functions (imports + earlier helpers).
    callees: &'a [Callee],
    /// Table slots callable indirectly (acyclic: targets precede this fn).
    indirect: &'a [Callee],
    n_globals: u32,
}

impl FnGen<'_> {
    // ---------------------------------------------------------------
    // Local slot layout: parameters first (all i32), then declared
    // scratch. The two counter slots are written ONLY by the loop
    // production at the matching depth — nothing else may clobber a
    // live loop counter, which is what makes every generated loop
    // provably terminating (and keeps the back-edge `LocalsReq::Exact`
    // check satisfiable).
    // ---------------------------------------------------------------

    fn tmp(&self) -> u32 {
        self.n_params
    }
    fn acc(&self, depth: u32) -> u32 {
        self.n_params + 1 + depth % 2
    }
    fn ctr(&self, depth: u32) -> u32 {
        self.n_params + 3 + depth % 2
    }
    fn i64_slot(&self) -> u32 {
        self.n_params + 5
    }

    /// The declared sizes of the scratch slots.
    fn local_sizes() -> Vec<Size> {
        vec![
            Size::Const(32), // tmp
            Size::Const(32), // acc0
            Size::Const(32), // acc1
            Size::Const(32), // ctr0
            Size::Const(32), // ctr1
            Size::Const(64), // i64 scratch
        ]
    }

    /// i32-typed slots readable at any point (post-prelude).
    fn readable_i32(&self) -> Vec<u32> {
        (0..self.n_params + 5).collect()
    }

    /// Slots any production may write (never the loop counters).
    fn writable_i32(&self) -> Vec<u32> {
        vec![self.tmp(), self.n_params + 1, self.n_params + 2]
    }

    /// Prelude pinning every scratch slot to its numeric type, so local
    /// types are invariant across the whole body and only `MemUnpack`
    /// templates need explicit effects.
    fn prelude(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        for idx in self.n_params..self.n_params + 5 {
            out.push(Instr::i32(0));
            out.push(Instr::SetLocal(idx));
        }
        out.push(Instr::Val(Value::i64(0)));
        out.push(Instr::SetLocal(self.i64_slot()));
        out
    }

    fn spend(&mut self, n: i64) {
        self.budget -= n;
    }

    /// Coverage-biased weight: 4× boost while the rule is unexercised.
    fn w(&self, base: u64, rule: Rule) -> u64 {
        if self.cov.count(rule) == 0 {
            base * 4
        } else {
            base
        }
    }

    // ---------------------------------------------------------------
    // i32-producing productions
    // ---------------------------------------------------------------

    fn leaf_i32(&mut self, out: &mut Vec<Instr>) {
        if self.rng.chance(55) {
            let v = match self.rng.below(8) {
                0 => i32::MAX,
                1 => i32::MIN,
                2 => -1,
                _ => self.rng.range(-64, 64) as i32,
            };
            out.push(Instr::i32(v));
        } else {
            let slots = self.readable_i32();
            let s = *self.rng.pick(&slots);
            out.push(Instr::GetLocal(s, Qual::Unr));
        }
    }

    fn gen_i32(&mut self, depth: u32, out: &mut Vec<Instr>) {
        self.spend(1);
        if depth == 0 || self.budget <= 0 {
            self.leaf_i32(out);
            return;
        }

        // (production id, weight) — availability-filtered.
        let mut prods: Vec<(u32, u64)> = vec![
            (0, 10),                              // const / get_local leaf
            (1, self.w(12, Rule::Num)),           // safe binop
            (2, self.w(4, Rule::Num)),            // unop
            (3, self.w(4, Rule::Num)),            // div/rem by constant
            (4, self.w(5, Rule::Num)),            // relop (i32 or i64)
            (5, self.w(2, Rule::Num)),            // eqz
            (6, self.w(4, Rule::Select)),         // select
            (7, self.w(5, Rule::TeeLocal)),       // tee
            (8, self.w(4, Rule::SetLocal)),       // set; get
            (9, self.w(4, Rule::Block)),          // plain block
            (10, self.w(4, Rule::BrIf)),          // block with early BrIf
            (11, self.w(3, Rule::BrTable)),       // block with BrTable
            (12, self.w(5, Rule::If)),            // if/else
            (14, self.w(4, Rule::Num)),           // i64 round-trip (convert)
            (15, self.w(3, Rule::Group)),         // group/ungroup
            (16, self.w(2, Rule::Qualify)),       // qualify(unr) identity
            (17, self.w(2, Rule::Drop)),          // compute two, drop one
            (18, self.w(6, Rule::StructFree)),    // linear struct churn
            (19, self.w(5, Rule::StructGet)),     // GC'd (unr) struct
            (20, self.w(4, Rule::VariantMalloc)), // variant make+case
            (21, self.w(3, Rule::ExistPack)),     // existential pack+unpack
            (22, self.w(4, Rule::ArrayMalloc)),   // array get/set/free
            (23, 1),                              // nop; e
            (28, self.w(3, Rule::Br)),            // block with unconditional br
            (29, self.w(2, Rule::Return)),        // conditional early return
        ];
        if self.loop_depth < 2 {
            prods.push((13, self.w(6, Rule::Loop)));
        }
        if !self.callees.is_empty() {
            prods.push((24, self.w(7, Rule::Call)));
        }
        if !self.indirect.is_empty() {
            prods.push((25, self.w(4, Rule::CallIndirect)));
        }
        if self.n_globals > 0 {
            prods.push((26, self.w(3, Rule::GetGlobal)));
            prods.push((27, self.w(3, Rule::SetGlobal)));
        }

        let weights: Vec<u64> = prods.iter().map(|&(_, w)| w).collect();
        let id = prods[self.rng.pick_weighted(&weights)].0;
        let d = depth - 1;
        match id {
            0 => self.leaf_i32(out),
            1 => {
                self.gen_i32(d, out);
                self.gen_i32(d, out);
                out.push(binop(I32, *self.rng.pick(&SAFE_BINOPS)));
            }
            2 => {
                self.gen_i32(d, out);
                out.push(num(NumInstr::IntUnop(I32, *self.rng.pick(&UNOPS))));
            }
            3 => {
                // Division fenced by a constant positive divisor: no
                // div-by-zero, and `INT_MIN / -1` is unreachable.
                self.gen_i32(d, out);
                out.push(Instr::i32(self.rng.range(1, 7) as i32));
                let op = match self.rng.below(4) {
                    0 => IntBinop::Div(Sign::S),
                    1 => IntBinop::Div(Sign::U),
                    2 => IntBinop::Rem(Sign::S),
                    _ => IntBinop::Rem(Sign::U),
                };
                out.push(binop(I32, op));
            }
            4 => {
                let nt = if self.rng.chance(30) { I64 } else { I32 };
                if nt == I64 {
                    self.gen_i64(d, out);
                    self.gen_i64(d, out);
                } else {
                    self.gen_i32(d, out);
                    self.gen_i32(d, out);
                }
                out.push(relop(nt, *self.rng.pick(&RELOPS)));
            }
            5 => {
                let nt = if self.rng.chance(30) { I64 } else { I32 };
                if nt == I64 {
                    self.gen_i64(d, out);
                } else {
                    self.gen_i32(d, out);
                }
                out.push(num(NumInstr::Eqz(nt)));
            }
            6 => {
                self.gen_i32(d, out);
                self.gen_i32(d, out);
                self.gen_i32(d, out);
                out.push(Instr::Select);
            }
            7 => {
                self.gen_i32(d, out);
                let slots = self.writable_i32();
                out.push(Instr::TeeLocal(*self.rng.pick(&slots)));
            }
            8 => {
                self.gen_i32(d, out);
                let slots = self.writable_i32();
                let s = *self.rng.pick(&slots);
                out.push(Instr::SetLocal(s));
                out.push(Instr::GetLocal(s, Qual::Unr));
            }
            9 => {
                let mut body = Vec::new();
                self.gen_i32(d, &mut body);
                out.push(Instr::BlockI(
                    Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                    body,
                ));
            }
            10 => {
                // [v, c, br_if 0] — either exits the block with v or
                // falls through with v still on the stack.
                let mut body = Vec::new();
                self.gen_i32(d, &mut body);
                self.gen_i32(d, &mut body);
                body.push(Instr::BrIf(0));
                out.push(Instr::BlockI(
                    Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                    body,
                ));
            }
            11 => {
                // [v, sel, br_table [0,0] 0] — all arms target the block.
                let mut body = Vec::new();
                self.gen_i32(d, &mut body);
                self.gen_i32(d, &mut body);
                body.push(Instr::BrTable(vec![0, 0], 0));
                out.push(Instr::BlockI(
                    Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                    body,
                ));
            }
            12 => {
                self.gen_i32(d, out);
                let mut then_b = Vec::new();
                let mut else_b = Vec::new();
                self.gen_i32(d, &mut then_b);
                self.gen_i32(d, &mut else_b);
                out.push(Instr::IfI(
                    Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                    then_b,
                    else_b,
                ));
            }
            13 => self.gen_loop(d, out),
            14 => {
                self.gen_i64(d, out);
                out.push(num(NumInstr::Convert(I32, I64)));
            }
            15 => {
                self.gen_i32(d, out);
                self.gen_i32(d, out);
                out.push(Instr::Group(2, Qual::Unr));
                out.push(Instr::Ungroup);
                out.push(add32());
            }
            16 => {
                self.gen_i32(d, out);
                out.push(Instr::Qualify(Qual::Unr));
            }
            17 => {
                self.gen_i32(d, out);
                self.gen_i32(d, out);
                out.push(Instr::Drop);
            }
            18 => self.gen_struct_lin(d, out),
            19 => self.gen_struct_unr(d, out),
            20 => self.gen_variant(d, out),
            21 => self.gen_exist(d, out),
            22 => self.gen_array(d, out),
            23 => {
                out.push(Instr::Nop);
                self.gen_i32(d, out);
            }
            24 => {
                let c = *self.rng.pick(self.callees);
                for _ in 0..c.arity {
                    self.gen_i32(d, out);
                }
                out.push(Instr::Call(c.index, vec![]));
            }
            25 => {
                let c = *self.rng.pick(self.indirect);
                for _ in 0..c.arity {
                    self.gen_i32(d, out);
                }
                out.push(Instr::CodeRefI(c.index));
                if self.rng.chance(50) {
                    // All generated functions are monomorphic, so the
                    // (empty) instantiation is the identity — but it
                    // still exercises the `inst` checker rule.
                    out.push(Instr::Inst(vec![]));
                }
                out.push(Instr::CallIndirect);
            }
            26 => {
                out.push(Instr::GetGlobal(
                    self.rng.below(u64::from(self.n_globals)) as u32
                ));
            }
            27 => {
                let g = self.rng.below(u64::from(self.n_globals)) as u32;
                self.gen_i32(d, out);
                out.push(Instr::SetGlobal(g));
                out.push(Instr::GetGlobal(g));
            }
            28 => {
                // An unconditional branch to the block's own end — the
                // value on the stack becomes the block result.
                let mut inner = Vec::new();
                self.gen_i32(d, &mut inner);
                inner.push(Instr::Br(0));
                out.push(Instr::BlockI(
                    Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                    inner,
                ));
            }
            29 => {
                // Conditional early return. Keeping the `return` inside
                // one arm of an `if` leaves the surrounding context
                // reachable, so no dead code is ever generated.
                self.gen_i32(d, out);
                let ret = self.rng.range(-50, 50) as i32;
                let alt = self.rng.range(-50, 50) as i32;
                out.push(Instr::IfI(
                    Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                    vec![Instr::i32(ret), Instr::Return],
                    vec![Instr::i32(alt)],
                ));
            }
            _ => unreachable!("unknown production"),
        }
    }

    // ---------------------------------------------------------------
    // i64-producing productions
    // ---------------------------------------------------------------

    fn gen_i64(&mut self, depth: u32, out: &mut Vec<Instr>) {
        self.spend(1);
        if depth == 0 || self.budget <= 0 {
            if self.rng.chance(50) {
                out.push(Instr::Val(Value::i64(self.rng.range(-64, 64))));
            } else {
                out.push(Instr::GetLocal(self.i64_slot(), Qual::Unr));
            }
            return;
        }
        let d = depth - 1;
        match self.rng.below(5) {
            0 => out.push(Instr::Val(Value::i64(self.rng.range(-1 << 40, 1 << 40)))),
            1 => {
                self.gen_i32(d, out);
                out.push(num(NumInstr::Convert(I64, I32)));
            }
            2 => {
                self.gen_i64(d, out);
                self.gen_i64(d, out);
                out.push(binop(I64, *self.rng.pick(&SAFE_BINOPS)));
            }
            3 => {
                self.gen_i64(d, out);
                out.push(Instr::TeeLocal(self.i64_slot()));
            }
            _ => {
                self.gen_i64(d, out);
                out.push(num(NumInstr::IntUnop(I64, *self.rng.pick(&UNOPS))));
            }
        }
    }

    // ---------------------------------------------------------------
    // Structured templates. Each is a closed instruction sequence whose
    // net effect is `[] → [i32]`, verified against the checker's rules.
    // ---------------------------------------------------------------

    /// A counting loop: counter and accumulator slots are initialised
    /// before entry, the back edge transfers `[] → []`, and the counter
    /// slot is owned exclusively by this loop (nested productions can
    /// only write `tmp`/`acc*`), so the bound is always reached.
    fn gen_loop(&mut self, depth: u32, out: &mut Vec<Instr>) {
        let ctr = self.ctr(self.loop_depth);
        let acc = self.acc(self.loop_depth);
        let n = self.rng.range(1, 4) as i32;

        out.push(Instr::i32(0));
        out.push(Instr::SetLocal(ctr));
        self.gen_i32(depth, out);
        out.push(Instr::SetLocal(acc));

        self.loop_depth += 1;
        let mut body = Vec::new();
        body.push(Instr::GetLocal(acc, Qual::Unr));
        self.gen_i32(depth.min(2), &mut body);
        body.push(add32());
        body.push(Instr::SetLocal(acc));
        body.push(Instr::GetLocal(ctr, Qual::Unr));
        body.push(Instr::i32(1));
        body.push(add32());
        body.push(Instr::TeeLocal(ctr));
        body.push(Instr::i32(n));
        body.push(relop(I32, IntRelop::Lt(Sign::S)));
        body.push(Instr::BrIf(0));
        self.loop_depth -= 1;

        out.push(Instr::LoopI(ArrowType::new(vec![], vec![]), body));
        out.push(Instr::GetLocal(acc, Qual::Unr));
    }

    /// The `MemUnpack` wrapper every heap template uses: the body works
    /// on the opened reference and stashes its i32 result in `tmp`
    /// (declared as a local effect, mirroring the paper's examples).
    fn mem_unpack(&self, body: Vec<Instr>) -> Instr {
        Instr::MemUnpack(
            Block::new(
                ArrowType::new(vec![], vec![i32t()]),
                vec![LocalEffect::new(self.tmp(), i32t())],
            ),
            body,
        )
    }

    /// Linear struct churn: malloc → (get | set;get | swap) → free.
    fn gen_struct_lin(&mut self, depth: u32, out: &mut Vec<Instr>) {
        let n_fields = self.rng.range(1, 2) as usize;
        for _ in 0..n_fields {
            self.gen_i32(depth, out);
        }
        out.push(Instr::StructMalloc(
            vec![Size::Const(64); n_fields],
            Qual::Lin,
        ));

        let fld = self.rng.below(n_fields as u64) as u32;
        let mut body = Vec::new();
        match self.rng.below(3) {
            0 => {
                // read + free
                body.push(Instr::StructGet(fld));
                body.push(Instr::i32(self.rng.range(-8, 8) as i32));
                body.push(add32());
                body.push(Instr::SetLocal(self.tmp()));
                body.push(Instr::StructFree);
            }
            1 => {
                // strong-ish update through the linear ref, then read
                body.push(Instr::i32(self.rng.range(-8, 8) as i32));
                body.push(Instr::StructSet(fld));
                body.push(Instr::StructGet(fld));
                body.push(Instr::SetLocal(self.tmp()));
                body.push(Instr::StructFree);
            }
            _ => {
                // swap returns the old field value
                body.push(Instr::i32(self.rng.range(-8, 8) as i32));
                body.push(Instr::StructSwap(fld));
                body.push(Instr::SetLocal(self.tmp()));
                body.push(Instr::StructFree);
            }
        }
        body.push(Instr::GetLocal(self.tmp(), Qual::Unr));
        out.push(self.mem_unpack(body));
    }

    /// GC'd (unrestricted) struct: malloc → [type-preserving set] → get
    /// → drop. The collector reclaims the cell — this is the GC-stress
    /// allocation churn the `auto_gc_every` knob leans on.
    fn gen_struct_unr(&mut self, depth: u32, out: &mut Vec<Instr>) {
        let n_fields = self.rng.range(1, 2) as usize;
        for _ in 0..n_fields {
            self.gen_i32(depth, out);
        }
        out.push(Instr::StructMalloc(
            vec![Size::Const(64); n_fields],
            Qual::Unr,
        ));

        let fld = self.rng.below(n_fields as u64) as u32;
        let mut body = Vec::new();
        if self.rng.chance(40) {
            // Unrestricted refs only admit type-preserving writes —
            // i32 over i32 is fine.
            body.push(Instr::i32(self.rng.range(-8, 8) as i32));
            body.push(Instr::StructSet(fld));
        }
        if self.rng.chance(50) {
            // Reads don't need the write privilege: demote rw → r
            // before getting (the demoted ref is still unr-droppable).
            body.push(Instr::RefDemote);
        }
        body.push(Instr::StructGet(fld));
        body.push(Instr::SetLocal(self.tmp()));
        body.push(Instr::Drop);
        body.push(Instr::GetLocal(self.tmp(), Qual::Unr));
        out.push(self.mem_unpack(body));
    }

    /// Variant round trip: inject a payload, case on it. Linear variants
    /// are freed by the case; unrestricted ones park the ref and are
    /// dropped after.
    fn gen_variant(&mut self, depth: u32, out: &mut Vec<Instr>) {
        let q = if self.rng.chance(50) {
            Qual::Lin
        } else {
            Qual::Unr
        };
        let cases = vec![i32t(), i32t()];
        let tag = self.rng.below(2) as u32;

        self.gen_i32(depth, out);
        out.push(Instr::VariantMalloc(tag, cases.clone(), q));

        let k1 = self.rng.range(-8, 8) as i32;
        let k2 = self.rng.range(-8, 8) as i32;
        let arms = vec![
            vec![Instr::i32(k1), add32()],
            vec![Instr::i32(k2), binop(I32, IntBinop::Mul)],
        ];
        let mut body = vec![Instr::VariantCase(
            q,
            HeapType::Variant(cases),
            Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
            arms,
        )];
        if q == Qual::Unr {
            // Post-case stack is [ref, result]: park the result, drop
            // the still-live unrestricted ref.
            body.push(Instr::SetLocal(self.tmp()));
            body.push(Instr::Drop);
            body.push(Instr::GetLocal(self.tmp(), Qual::Unr));
        }
        out.push(self.mem_unpack(body));
    }

    /// Existential package: pack an i32 witness under a type binder,
    /// unpack it again. The opened value has pretype `α` (variable 0)
    /// at qualifier `unr`, so the body may only drop it.
    fn gen_exist(&mut self, depth: u32, out: &mut Vec<Instr>) {
        let q = if self.rng.chance(50) {
            Qual::Lin
        } else {
            Qual::Unr
        };
        let psi = HeapType::Exists(
            Qual::Unr,
            Size::Const(32),
            Box::new(Type::new(Pretype::Var(0), Qual::Unr)),
        );

        self.gen_i32(depth, out);
        out.push(Instr::ExistPack(Pretype::Num(I32), psi.clone(), q));

        let k = self.rng.range(-32, 32) as i32;
        let mut body = vec![Instr::ExistUnpack(
            q,
            psi,
            Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
            vec![Instr::Drop, Instr::i32(k)],
        )];
        if q == Qual::Unr {
            body.push(Instr::SetLocal(self.tmp()));
            body.push(Instr::Drop);
            body.push(Instr::GetLocal(self.tmp(), Qual::Unr));
        }
        out.push(self.mem_unpack(body));
    }

    /// Array round trip: malloc (constant length) → get (constant
    /// in-bounds index) → optional type-preserving set → free/drop.
    fn gen_array(&mut self, depth: u32, out: &mut Vec<Instr>) {
        let q = if self.rng.chance(50) {
            Qual::Lin
        } else {
            Qual::Unr
        };
        let len = self.rng.range(1, 6) as u32;

        self.gen_i32(depth, out); // fill value (must be unr — i32 is)
        out.push(Instr::Val(Value::u32(len)));
        out.push(Instr::ArrayMalloc(q));

        let mut body = Vec::new();
        body.push(Instr::Val(
            Value::u32(self.rng.below(u64::from(len)) as u32),
        ));
        body.push(Instr::ArrayGet);
        body.push(Instr::SetLocal(self.tmp()));
        if self.rng.chance(40) {
            body.push(Instr::Val(
                Value::u32(self.rng.below(u64::from(len)) as u32),
            ));
            body.push(Instr::i32(self.rng.range(-8, 8) as i32));
            body.push(Instr::ArraySet);
        }
        if q == Qual::Lin {
            body.push(Instr::ArrayFree);
        } else {
            body.push(Instr::Drop);
        }
        body.push(Instr::GetLocal(self.tmp(), Qual::Unr));
        out.push(self.mem_unpack(body));
    }
}

/// Generates a function body: prelude + one i32 expression.
#[allow(clippy::too_many_arguments)]
fn gen_body(
    rng: &mut Rng,
    cov: &RuleCoverage,
    n_params: u32,
    budget: i64,
    depth: u32,
    callees: &[Callee],
    indirect: &[Callee],
    n_globals: u32,
) -> (Vec<Size>, Vec<Instr>) {
    let mut g = FnGen {
        rng,
        cov,
        budget,
        loop_depth: 0,
        n_params,
        callees,
        indirect,
        n_globals,
    };
    let mut body = g.prelude();
    g.gen_i32(depth, &mut body);
    (FnGen::local_sizes(), body)
}

/// Generates one raw-tier case: a single RichWasm module with optional
/// host imports, helper functions, a function table, mutable globals,
/// and an exported nullary `main`.
pub fn gen_raw(rng: &mut Rng, cov: &RuleCoverage) -> FuzzProgram {
    let mut funcs: Vec<Func> = Vec::new();
    let mut callees: Vec<Callee> = Vec::new();
    let mut hosts: Vec<HostImportSpec> = Vec::new();

    // 0..=1 host imports, i32 → i32, registered on both backends.
    if rng.chance(35) {
        let behavior = if rng.chance(50) {
            HostBehavior::AddK(rng.range(-100, 100) as i32)
        } else {
            HostBehavior::MulXor(rng.range(-9, 9) as i32, rng.range(-255, 255) as i32)
        };
        hosts.push(HostImportSpec {
            module: "host".into(),
            name: "f0".into(),
            behavior,
        });
        funcs.push(Func::Imported {
            exports: vec![],
            module: "host".into(),
            name: "f0".into(),
            ty: FunType::mono(vec![i32t()], vec![i32t()]),
        });
        callees.push(Callee { index: 0, arity: 1 });
    }

    let n_globals = rng.below(3) as u32;
    let globals: Vec<Global> = (0..n_globals)
        .map(|_| Global {
            exports: vec![],
            kind: GlobalKind::Defined {
                mutable: true,
                ty: Pretype::Num(I32),
                init: vec![Instr::i32(rng.range(-50, 50) as i32)],
            },
        })
        .collect();

    // Helpers: i32^arity → i32, callable by later functions only
    // (acyclic call graph ⇒ no unbounded recursion). The table holds
    // every defined helper; indirect calls are likewise restricted to
    // strictly earlier targets.
    let n_helpers = rng.below(4) as u32;
    let mut table_entries: Vec<u32> = Vec::new();
    let mut table_sigs: Vec<Callee> = Vec::new();
    for _ in 0..n_helpers {
        let arity = rng.below(3) as u32;
        let index = funcs.len() as u32;
        // Indirect targets: table slots whose function index < ours.
        let indirect: Vec<Callee> = table_sigs.clone();
        let (locals, body) = gen_body(rng, cov, arity, 24, 3, &callees, &indirect, n_globals);
        funcs.push(Func::Defined {
            exports: vec![],
            ty: FunType::mono(vec![i32t(); arity as usize], vec![i32t()]),
            locals,
            body,
        });
        table_sigs.push(Callee {
            index: table_entries.len() as u32,
            arity,
        });
        table_entries.push(index);
        callees.push(Callee { index, arity });
    }

    // The exported entry point sees everything.
    let (locals, body) = gen_body(rng, cov, 0, 56, 4, &callees, &table_sigs, n_globals);
    funcs.push(Func::Defined {
        exports: vec!["main".into()],
        ty: FunType::mono(vec![], vec![i32t()]),
        locals,
        body,
    });

    let module = Module {
        funcs,
        globals,
        table: Table {
            exports: vec![],
            entries: table_entries,
        },
    };

    let gc_every = if rng.chance(30) {
        Some(1 + rng.below(40))
    } else {
        None
    };

    FuzzProgram {
        modules: vec![("m".into(), SourceModule::Rw(module))],
        hosts,
        entry: "m".into(),
        gc_every,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use richwasm::typecheck::check_module;

    /// The soundness-by-construction claim, sampled: every generated
    /// module typechecks. (The farm re-asserts this on every case.)
    #[test]
    fn generated_modules_typecheck() {
        let cov = RuleCoverage::new();
        for seed in 0..60 {
            let mut rng = Rng::for_case(0xF00D, seed);
            let prog = gen_raw(&mut rng, &cov);
            for m in prog.rw_modules().into_iter().flatten() {
                if let Err(e) = check_module(&m) {
                    panic!(
                        "seed {seed}: generated module ill-typed: {e}\n{}",
                        prog.describe()
                    );
                }
            }
        }
    }

    /// Generation is a pure function of the seed.
    #[test]
    fn generation_is_deterministic() {
        let cov = RuleCoverage::new();
        for seed in 0..8 {
            let mut a = Rng::for_case(42, seed);
            let mut b = Rng::for_case(42, seed);
            let pa = gen_raw(&mut a, &cov);
            let pb = gen_raw(&mut b, &cov);
            assert_eq!(format!("{pa:?}"), format!("{pb:?}"));
        }
    }

    /// Coverage accounting over a modest corpus reaches the bulk of the
    /// source-expressible rules (the generator's whole point).
    #[test]
    fn corpus_covers_most_rules() {
        let mut cov = RuleCoverage::new();
        for seed in 0..40 {
            let mut rng = Rng::for_case(7, seed);
            let prog = gen_raw(&mut rng, &cov);
            for m in prog.rw_modules().into_iter().flatten() {
                richwasm::typecheck::coverage_of_module(&m, &mut cov);
            }
        }
        // Raw tier alone: expect well over half the rules (ML/L3 tiers
        // add coderef/rec/cap rules on top).
        assert!(
            cov.covered() * 2 > cov.total(),
            "raw tier covered only {}/{} rules",
            cov.covered(),
            cov.total()
        );
    }
}
