//! Interop-tier generation: ML client + L3 library module pairs linked
//! through foreign (linking) types, parameterised variants of the
//! paper's Fig. 9 counter scenario.
//!
//! This tier keeps the cross-language boundary hot: linear L3 references
//! flowing through ML code as `Foreign` values, `RefToLin` stash cells,
//! and multi-module linking in the engine.

use richwasm_l3::builder as l3b;
use richwasm_l3::{translate_ty as l3_ty, L3Ty};
use richwasm_ml::builder as mlb;
use richwasm_ml::{MlExpr, MlTy};

use crate::program::{FuzzProgram, SourceModule};
use crate::rng::Rng;

fn counter_l3() -> L3Ty {
    L3Ty::Ref(
        Box::new(L3Ty::Prod(Box::new(L3Ty::Int), Box::new(L3Ty::Int))),
        128,
    )
}

fn counter_ml() -> MlTy {
    MlTy::Foreign(l3_ty(&counter_l3()))
}

/// A parameterised counter library: `make_counter` seeds the count with
/// `init`, `incr` advances by the stored step (op ∈ {+, -, *}), `finish`
/// frees and returns the count.
fn library(rng: &mut Rng) -> richwasm_l3::L3Module {
    use richwasm_l3::L3Op;
    let init = rng.range(-20, 20) as i32;
    let op = *rng.pick(&[L3Op::Add, L3Op::Sub, L3Op::Mul]);

    let incr_body = l3b::let_pair(
        "p2",
        "old",
        l3b::swap(
            l3b::split(l3b::var("r")),
            l3b::pair(l3b::int(0), l3b::int(0)),
        ),
        l3b::let_pair(
            "count",
            "step",
            l3b::var("old"),
            l3b::let_pair(
                "p3",
                "dummy",
                l3b::swap(
                    l3b::var("p2"),
                    l3b::pair(
                        l3b::op(op, l3b::var("count"), l3b::var("step")),
                        l3b::var("step"),
                    ),
                ),
                l3b::seq(l3b::var("dummy"), l3b::join(l3b::var("p3"))),
            ),
        ),
    );

    l3b::L3ModuleBuilder::new()
        .fun(
            "make_counter",
            true,
            vec![("step", L3Ty::Int)],
            counter_l3(),
            l3b::join(l3b::new(l3b::pair(l3b::int(init), l3b::var("step")), 128)),
        )
        .fun(
            "incr",
            true,
            vec![("r", counter_l3())],
            counter_l3(),
            incr_body,
        )
        .fun(
            "finish",
            true,
            vec![("r", counter_l3())],
            L3Ty::Int,
            l3b::let_pair(
                "count",
                "step",
                l3b::free(l3b::var("r")),
                l3b::seq(l3b::var("step"), l3b::var("count")),
            ),
        )
        .build()
}

/// The ML client: either a direct `finish(incr^n(make_counter(k)))`
/// chain, or the Fig. 9 shape that stashes the linear counter in a
/// `RefToLin` global between operations.
fn client(rng: &mut Rng) -> richwasm_ml::MlModule {
    let step = rng.range(1, 9) as i32;
    let n_incrs = rng.range(1, 4);
    let use_slot = rng.chance(50);

    let mut b = mlb::MlModuleBuilder::new()
        .import("lib", "make_counter", vec![MlTy::Int], counter_ml())
        .import("lib", "incr", vec![counter_ml()], counter_ml())
        .import("lib", "finish", vec![counter_ml()], MlTy::Int);

    let body = if use_slot {
        // make → stash; (incr(unstash) → stash)^n; finish(unstash)
        b = b.global(
            "slot",
            MlTy::RefToLin(Box::new(counter_ml())),
            MlExpr::NewRefToLin(counter_ml()),
        );
        let mut body = mlb::assign(
            mlb::var("slot"),
            mlb::call("make_counter", vec![mlb::int(step)]),
        );
        for _ in 0..n_incrs {
            body = mlb::seq(
                body,
                mlb::assign(
                    mlb::var("slot"),
                    mlb::call("incr", vec![mlb::deref(mlb::var("slot"))]),
                ),
            );
        }
        mlb::seq(
            body,
            mlb::call("finish", vec![mlb::deref(mlb::var("slot"))]),
        )
    } else {
        // Direct linear chain through nested applications.
        let mut e = mlb::call("make_counter", vec![mlb::int(step)]);
        for _ in 0..n_incrs {
            e = mlb::call("incr", vec![e]);
        }
        mlb::call("finish", vec![e])
    };

    b.fun("main", true, vec![], MlTy::Int, body).build()
}

/// Generates one interop-tier case: an L3 library linked into an ML
/// client whose `main` drives the counter protocol.
pub fn gen_interop(rng: &mut Rng) -> FuzzProgram {
    let lib = library(rng);
    let cli = client(rng);
    FuzzProgram {
        modules: vec![
            ("lib".into(), SourceModule::L3(lib)),
            ("c".into(), SourceModule::Ml(cli)),
        ],
        hosts: vec![],
        entry: "c".into(),
        gc_every: if rng.chance(25) {
            Some(1 + rng.below(20))
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use richwasm::typecheck::check_module;

    #[test]
    fn generated_interop_compiles_and_checks() {
        for seed in 0..20 {
            let mut rng = Rng::for_case(0x1209, seed);
            let prog = gen_interop(&mut rng);
            for m in &prog.rw_modules() {
                let m = m.as_ref().expect("frontends compile");
                check_module(m).expect("compiled interop modules typecheck");
            }
        }
    }
}
