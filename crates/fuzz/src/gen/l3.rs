//! L3-tier generation: random linear programs through the L3 compiler.
//!
//! Every template threads each allocated cell through exactly one
//! consuming use (`free`, or a `swap`/`join`/`split` chain ending in a
//! `free`), so generated programs always satisfy the L3 compiler's
//! linearity discipline — and the RichWasm checker's re-establishment of
//! it. This tier is what keeps `ref.split`/`ref.join`, capability
//! threading, and strong updates hot in the farm.

use richwasm_l3::builder::{
    add, call, free, if_, int, join, let_, let_pair, new, op, pair, seq, split, swap, var,
    L3ModuleBuilder,
};
use richwasm_l3::{L3Expr, L3Op, L3Ty};

use crate::program::{FuzzProgram, SourceModule};
use crate::rng::Rng;

/// Unrestricted (int-typed) expression generator. Linear resources are
/// only ever introduced and consumed inside a single template, never
/// stored in the environment — that is what makes generation trivially
/// linearity-sound.
struct L3Gen<'a> {
    rng: &'a mut Rng,
    vars: Vec<String>,
    /// Callable `Int → Int` helpers.
    helpers: Vec<String>,
    /// Number of `bump` helpers (Ref(Int,64) → Ref(Int,64)).
    n_bumps: u32,
    fresh: u32,
}

impl L3Gen<'_> {
    fn fresh(&mut self) -> String {
        self.fresh += 1;
        format!("v{}", self.fresh)
    }

    fn leaf(&mut self) -> L3Expr {
        if !self.vars.is_empty() && self.rng.chance(45) {
            var(self.rng.pick(&self.vars).clone())
        } else {
            int(self.rng.range(-99, 99) as i32)
        }
    }

    fn gen(&mut self, depth: u32) -> L3Expr {
        if depth == 0 {
            return self.leaf();
        }
        let d = depth - 1;
        let mut prods: Vec<u64> = vec![
            8,  // 0 leaf
            10, // 1 arith
            4,  // 2 comparison
            6,  // 3 let
            5,  // 4 if
            4,  // 5 pair / let_pair
            3,  // 6 seq
            8,  // 7 free(new e)
            6,  // 8 swap round trip
            5,  // 9 join/split detour
        ];
        prods.push(if self.helpers.is_empty() { 0 } else { 6 }); // 10 call
        prods.push(if self.n_bumps == 0 { 0 } else { 5 }); // 11 bump chain

        match self.rng.pick_weighted(&prods) {
            0 => self.leaf(),
            1 => {
                let o = *self.rng.pick(&[L3Op::Add, L3Op::Sub, L3Op::Mul]);
                op(o, self.gen(d), self.gen(d))
            }
            2 => {
                let o = *self.rng.pick(&[L3Op::Eq, L3Op::Lt]);
                op(o, self.gen(d), self.gen(d))
            }
            3 => {
                let x = self.fresh();
                let bound = self.gen(d);
                self.vars.push(x.clone());
                let body = self.gen(d);
                self.vars.pop();
                let_(x, bound, body)
            }
            4 => if_(self.gen(d), self.gen(d), self.gen(d)),
            5 => {
                let (a, b) = (self.fresh(), self.fresh());
                let p = pair(self.gen(d), self.gen(d));
                self.vars.push(a.clone());
                self.vars.push(b.clone());
                let body = add(var(a.clone()), var(b.clone()));
                self.vars.pop();
                self.vars.pop();
                let_pair(a, b, p, body)
            }
            6 => seq(self.gen(d), self.gen(d)),
            7 => free(new(self.gen(d), 64)),
            8 => {
                // let (c2, old) = swap(new e, e') in free c2 + old
                let (c2, old) = (self.fresh(), self.fresh());
                let cell = new(self.gen(d), 64);
                let replacement = self.gen(d);
                let_pair(
                    c2.clone(),
                    old.clone(),
                    swap(cell, replacement),
                    add(free(var(c2)), var(old)),
                )
            }
            9 => free(split(join(new(self.gen(d), 64)))),
            10 => {
                let h = self.rng.pick(&self.helpers).clone();
                call(h, vec![self.gen(d)])
            }
            11 => {
                // Thread a reference through 1..=3 bump calls, then
                // consume it: free(split(bumpK(... join(new e) ...))).
                let mut e = join(new(self.gen(d), 64));
                for _ in 0..self.rng.range(1, 3) {
                    let k = self.rng.below(u64::from(self.n_bumps));
                    e = call(format!("bump{k}"), vec![e]);
                }
                free(split(e))
            }
            _ => self.leaf(),
        }
    }
}

/// The `bump` helper: strong-update a threaded `Ref(Int, 64)` in place
/// (counter-library style: split → swap out → swap updated back → join).
fn bump_body(step: i32) -> L3Expr {
    let_pair(
        "p2",
        "old",
        swap(split(var("r")), int(0)),
        let_pair(
            "p3",
            "z",
            swap(var("p2"), add(var("old"), int(step))),
            seq(var("z"), join(var("p3"))),
        ),
    )
}

/// Generates one L3-tier case.
pub fn gen_l3(rng: &mut Rng) -> FuzzProgram {
    let ref_ty = || L3Ty::Ref(Box::new(L3Ty::Int), 64);
    let n_bumps = rng.below(3) as u32;
    let n_helpers = rng.below(3) as u32;

    let mut b = L3ModuleBuilder::new();
    for k in 0..n_bumps {
        b = b.fun(
            format!("bump{k}"),
            false,
            vec![("r", ref_ty())],
            ref_ty(),
            bump_body(rng.range(-9, 9) as i32),
        );
    }

    let mut helpers: Vec<String> = Vec::new();
    for h in 0..n_helpers {
        let name = format!("h{h}");
        let mut g = L3Gen {
            rng,
            vars: vec!["a".into()],
            helpers: helpers.clone(),
            n_bumps,
            fresh: 0,
        };
        let body = add(var("a"), g.gen(2));
        b = b.fun(name.clone(), false, vec![("a", L3Ty::Int)], L3Ty::Int, body);
        helpers.push(name);
    }

    let mut g = L3Gen {
        rng,
        vars: vec![],
        helpers,
        n_bumps,
        fresh: 100,
    };
    let body = g.gen(4);
    b = b.fun("main", true, vec![], L3Ty::Int, body);

    FuzzProgram {
        modules: vec![("m".into(), SourceModule::L3(b.build()))],
        hosts: vec![],
        entry: "m".into(),
        gc_every: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use richwasm::typecheck::check_module;

    #[test]
    fn generated_l3_compiles_and_checks() {
        for seed in 0..40 {
            let mut rng = Rng::for_case(0x13, seed);
            let prog = gen_l3(&mut rng);
            for m in &prog.rw_modules() {
                let m = m.as_ref().expect("L3 compile succeeds");
                check_module(m).expect("compiled L3 typechecks");
            }
        }
    }
}
