//! Adversarial mutation: targeted ill-typed edits.
//!
//! Each mutation takes a *well-typed* RichWasm module and injects one
//! specific class of memory-safety or linearity violation. The contract
//! is one-sided: a mutant the checker **accepts** is a finding (a
//! soundness hole in the typing rules); a mutant the checker rejects is
//! the expected outcome. Mutations that don't apply to a given module
//! (no free, no linear get, …) return `None` and the driver tries
//! another kind.

use richwasm::syntax::{Func, Instr, Module, NumType, Qual, Type};

/// The catalogue of injected violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Move a `struct.free` to the *front* of its enclosing body: reads
    /// that followed the original position become use-after-free.
    UafReorder,
    /// Delete a `struct.free` / `array.free`: the linear reference
    /// leaks (fails the all-unrestricted frame exit check).
    LeakLinear,
    /// Replace a `struct.free` with a plain `drop`: discards a linear
    /// value without consuming it.
    DropLinear,
    /// Duplicate a linear local read: two owners of one capability.
    DupLinear,
    /// Read a linear local at qualifier `unr` (linearity laundering).
    UnrReadOfLinear,
    /// Widen a declared i32 result to i64 without changing the body
    /// (type confusion at the function boundary).
    ResultWiden,
    /// Bump a `struct.get` field index past the struct's arity.
    StructGetOob,
}

impl MutationKind {
    /// All kinds, in stats order.
    pub const ALL: [MutationKind; 7] = [
        MutationKind::UafReorder,
        MutationKind::LeakLinear,
        MutationKind::DropLinear,
        MutationKind::DupLinear,
        MutationKind::UnrReadOfLinear,
        MutationKind::ResultWiden,
        MutationKind::StructGetOob,
    ];

    /// Stable snake_case name (stats JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::UafReorder => "uaf_reorder",
            MutationKind::LeakLinear => "leak_linear",
            MutationKind::DropLinear => "drop_linear",
            MutationKind::DupLinear => "dup_linear",
            MutationKind::UnrReadOfLinear => "unr_read_of_linear",
            MutationKind::ResultWiden => "result_widen",
            MutationKind::StructGetOob => "struct_get_oob",
        }
    }
}

/// Applies `kind` to the first applicable site in `m`. Returns `None`
/// when the module has no applicable site.
pub fn mutate(m: &Module, kind: MutationKind) -> Option<Module> {
    let mut out = m.clone();
    let mut done = false;
    for f in &mut out.funcs {
        if done {
            break;
        }
        if let Func::Defined { body, ty, .. } = f {
            match kind {
                MutationKind::ResultWiden => {
                    // Function-level edit: i32 result becomes i64.
                    let results = &mut ty.arrow.results;
                    if results.len() == 1 && results[0] == Type::num(NumType::I32) {
                        results[0] = Type::num(NumType::I64);
                        done = true;
                    }
                }
                _ => done = mutate_body(body, kind),
            }
        }
    }
    if done {
        Some(out)
    } else {
        None
    }
}

/// Recursively applies an instruction-level mutation to the first
/// applicable site; `true` when one fired.
fn mutate_body(body: &mut Vec<Instr>, kind: MutationKind) -> bool {
    match kind {
        MutationKind::UafReorder => {
            if let Some(i) = body.iter().position(|x| matches!(x, Instr::StructFree)) {
                if i > 0 {
                    let free = body.remove(i);
                    body.insert(0, free);
                    return true;
                }
            }
        }
        MutationKind::LeakLinear => {
            if let Some(i) = body
                .iter()
                .position(|x| matches!(x, Instr::StructFree | Instr::ArrayFree))
            {
                body.remove(i);
                return true;
            }
        }
        MutationKind::DropLinear => {
            if let Some(i) = body
                .iter()
                .position(|x| matches!(x, Instr::StructFree | Instr::ArrayFree))
            {
                body[i] = Instr::Drop;
                return true;
            }
        }
        MutationKind::DupLinear => {
            if let Some(i) = body
                .iter()
                .position(|x| matches!(x, Instr::GetLocal(_, Qual::Lin)))
            {
                let dup = body[i].clone();
                body.insert(i, dup);
                return true;
            }
        }
        MutationKind::UnrReadOfLinear => {
            for x in body.iter_mut() {
                if let Instr::GetLocal(idx, Qual::Lin) = x {
                    *x = Instr::GetLocal(*idx, Qual::Unr);
                    return true;
                }
            }
        }
        MutationKind::StructGetOob => {
            for x in body.iter_mut() {
                if let Instr::StructGet(fld) = x {
                    // No generated or compiled struct (incl. closure
                    // environments) has anywhere near 64 fields.
                    *x = Instr::StructGet(*fld + 64);
                    return true;
                }
            }
        }
        MutationKind::ResultWiden => unreachable!("handled at function level"),
    }

    // Recurse into nested bodies.
    for x in body.iter_mut() {
        let hit = match x {
            Instr::BlockI(_, b) | Instr::LoopI(_, b) | Instr::MemUnpack(_, b) => {
                mutate_body(b, kind)
            }
            Instr::IfI(_, t, e) => mutate_body(t, kind) || mutate_body(e, kind),
            Instr::ExistUnpack(_, _, _, b) => mutate_body(b, kind),
            Instr::VariantCase(_, _, _, arms) => arms.iter_mut().any(|a| mutate_body(a, kind)),
            _ => false,
        };
        if hit {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use richwasm::typecheck::{check_module, RuleCoverage};

    /// Every applicable mutation of a well-typed generated module must
    /// be rejected by the checker.
    #[test]
    fn mutants_are_rejected() {
        let cov = RuleCoverage::new();
        let mut applied = 0u32;
        for seed in 0..30 {
            let mut rng = Rng::for_case(0xBAD, seed);
            let prog = crate::gen::rw::gen_raw(&mut rng, &cov);
            for m in prog.rw_modules().into_iter().flatten() {
                check_module(&m).expect("base module well-typed");
                for kind in MutationKind::ALL {
                    if let Some(mutant) = mutate(&m, kind) {
                        applied += 1;
                        assert!(
                            check_module(&mutant).is_err(),
                            "checker accepted a {} mutant (soundness hole)",
                            kind.name()
                        );
                    }
                }
            }
        }
        assert!(applied > 30, "too few applicable mutants ({applied})");
    }
}
