//! # richwasm-fuzz
//!
//! The typed-program generator and differential fuzz farm — CI's
//! soundness gate for the whole pipeline.
//!
//! Three moving parts:
//!
//! 1. **Generation** ([`gen`]): well-typed programs by construction.
//!    The raw tier synthesises RichWasm terms type-directed from the
//!    checker's rules, biased towards unexercised rules
//!    ([`richwasm::typecheck::Rule`]); the ML/L3/interop tiers drive the
//!    frontends and the linking boundary.
//! 2. **Adversarial mutation** ([`mutate()`]): targeted ill-typed edits
//!    (use-after-free shapes, linearity violations, type confusions)
//!    applied to well-typed modules. Every mutant must be *rejected* by
//!    the checker — an accepted mutant is a soundness hole.
//! 3. **The harness** ([`harness`]): each case runs the full engine
//!    path — typecheck, lower, validate, encode/decode round-trip, and
//!    differential execution (RichWasm interpreter vs lowered Wasm) with
//!    the static re-verifier in `Analysis::Deny`. Failures are minimised
//!    ([`minimize`]) and written as reproducers.
//!
//! The `fuzz` binary (see `main.rs`) sweeps tens of thousands of cases
//! per run and emits corpus statistics ([`stats`]) for the CI gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod harness;
pub mod minimize;
pub mod mutate;
pub mod program;
pub mod rng;
pub mod stats;

pub use gen::{gen_program, pick_tier, Tier};
pub use harness::{run_case, run_case_with, CaseOutcome, FailureKind};
pub use minimize::minimize_module;
pub use mutate::{mutate, MutationKind};
pub use program::{FuzzProgram, HostBehavior, HostImportSpec, SourceModule};
pub use rng::Rng;
pub use stats::CorpusStats;
