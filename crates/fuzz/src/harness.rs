//! The per-case harness: one generated program through the full engine
//! path, with every divergence classified.
//!
//! Each case gets a **fresh** engine (no artifact-cache contamination
//! between cases) configured with `Analysis::Deny` — the `richwasm-
//! analyze` re-verifier is a second, independent judge of every lowered
//! module — and differential execution, so each invocation runs on both
//! the RichWasm tree interpreter and the lowered-Wasm interpreter and
//! the results are cross-checked. On top of the engine's own checks the
//! harness adds a binary round-trip (decode∘encode = id on every
//! emitted `.wasm`) and a determinism probe (reset + re-invoke must
//! agree with the first run).
//!
//! The Wasm side itself is two engines since the flat-bytecode tier
//! landed: by default (`run_case`, or [`run_case_with`] with
//! `bytecode_check = true`) host-free cases additionally run under
//! [`WasmTier::Check`], where the bytecode VM executes and a
//! tree-walking oracle replays every invocation — results, trap
//! strings, and exact fuel counts must agree, making each such case a
//! **three-way** differential (RichWasm interpreter × bytecode VM ×
//! Wasm tree-walker). Cases with host imports keep the default
//! bytecode tier (the oracle cannot replay host effects), still
//! cross-checked against the RichWasm interpreter.

use richwasm_repro::engine::{
    Analysis, Engine, EngineConfig, PipelineError, PipelineErrorKind, WasmTier,
};
use richwasm_wasm::binary::encode_module;
use richwasm_wasm::decode_module;

use crate::program::FuzzProgram;

/// Fuel budget per case — generous (generated loops are bounded by
/// construction, so exhaustion indicates a generator or pipeline bug,
/// which is exactly what the `FuelExhausted` class reports).
const CASE_FUEL: u64 = 50_000_000;

/// Classification of a failing case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The checker (or a frontend) rejected a generated — supposedly
    /// well-typed — program: a generator or checker bug.
    Rejected,
    /// Lowering, validation, analysis, or linking failed.
    Pipeline,
    /// An emitted binary did not survive decode∘encode.
    RoundTrip,
    /// A backend trapped at runtime (generated programs are trap-free
    /// by construction).
    Trap,
    /// The two backends disagreed — the headline soundness signal.
    Mismatch,
    /// The fuel budget ran out (generated loops are bounded; this
    /// indicates a lowering or interpreter bug, e.g. a loop that lost
    /// its exit).
    FuelExhausted,
    /// Reset + re-invoke produced a different agreed result.
    Nondeterminism,
}

impl FailureKind {
    /// Stable snake_case name (stats JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Rejected => "rejected",
            FailureKind::Pipeline => "pipeline",
            FailureKind::RoundTrip => "round_trip",
            FailureKind::Trap => "trap",
            FailureKind::Mismatch => "mismatch",
            FailureKind::FuelExhausted => "fuel_exhausted",
            FailureKind::Nondeterminism => "nondeterminism",
        }
    }

    /// All kinds, in stats order.
    pub const ALL: [FailureKind; 7] = [
        FailureKind::Rejected,
        FailureKind::Pipeline,
        FailureKind::RoundTrip,
        FailureKind::Trap,
        FailureKind::Mismatch,
        FailureKind::FuelExhausted,
        FailureKind::Nondeterminism,
    ];
}

/// The outcome of running one case.
#[derive(Debug)]
pub enum CaseOutcome {
    /// Both backends agreed, twice, and every static check passed.
    Ok {
        /// The agreed entry result.
        value: i32,
    },
    /// Something diverged; `detail` is human-readable.
    Failed {
        /// The failure class.
        kind: FailureKind,
        /// What exactly happened.
        detail: String,
    },
}

impl CaseOutcome {
    /// Whether the case passed.
    pub fn is_ok(&self) -> bool {
        matches!(self, CaseOutcome::Ok { .. })
    }
}

fn classify(e: &PipelineError) -> FailureKind {
    if e.is_static_rejection() {
        return FailureKind::Rejected;
    }
    if e.is_fuel_exhausted() {
        return FailureKind::FuelExhausted;
    }
    match &e.kind {
        PipelineErrorKind::Mismatch { .. } => FailureKind::Mismatch,
        PipelineErrorKind::Runtime(_) | PipelineErrorKind::Wasm(_) => FailureKind::Trap,
        _ => FailureKind::Pipeline,
    }
}

fn fail(kind: FailureKind, detail: impl Into<String>) -> CaseOutcome {
    CaseOutcome::Failed {
        kind,
        detail: detail.into(),
    }
}

/// Runs one case end to end with the bytecode differential on. See the
/// module docs for the exact checks.
pub fn run_case(prog: &FuzzProgram) -> CaseOutcome {
    run_case_with(prog, true)
}

/// [`run_case`] with an explicit bytecode-differential switch. With
/// `bytecode_check` set, host-free cases run the Wasm side under
/// [`WasmTier::Check`] (bytecode VM + tree-walking oracle); turning it
/// off pins the pre-bytecode behaviour for A/B runs of the farm.
pub fn run_case_with(prog: &FuzzProgram, bytecode_check: bool) -> CaseOutcome {
    let mut cfg = EngineConfig::new().analysis(Analysis::Deny).fuel(CASE_FUEL);
    if bytecode_check && prog.hosts.is_empty() {
        cfg = cfg.wasm_tier(WasmTier::Check);
    }
    if let Some(n) = prog.gc_every {
        cfg = cfg.auto_gc_every(n);
    }
    let engine = Engine::with_config(cfg);

    // Static half: frontends, checker, lowering, validation, analysis.
    let artifact = match engine.compile(&prog.module_set()) {
        Ok(a) => a,
        Err(e) => return fail(classify(&e), e.to_string()),
    };

    // Binary round-trip on every emitted `.wasm`.
    for (name, bytes) in artifact.wasm_binaries() {
        match decode_module(bytes) {
            Ok(m) => {
                let re = encode_module(&m);
                if re != *bytes {
                    return fail(
                        FailureKind::RoundTrip,
                        format!(
                            "module `{name}`: re-encoded binary differs ({} vs {} bytes)",
                            re.len(),
                            bytes.len()
                        ),
                    );
                }
            }
            Err(e) => {
                return fail(
                    FailureKind::RoundTrip,
                    format!("module `{name}` failed to decode: {e}"),
                );
            }
        }
    }

    // Dynamic half: differential invocation, twice (determinism probe).
    let mut inst = match artifact.instantiate() {
        Ok(i) => i,
        Err(e) => return fail(classify(&e), e.to_string()),
    };
    let first = match inst.invoke_entry() {
        Ok(run) => run.i32(),
        Err(e) => return fail(classify(&e), e.to_string()),
    };
    if let Err(e) = inst.reset() {
        return fail(classify(&e), format!("reset failed: {e}"));
    }
    let second = match inst.invoke_entry() {
        Ok(run) => run.i32(),
        Err(e) => return fail(classify(&e), format!("re-invoke after reset: {e}")),
    };
    if first != second {
        return fail(
            FailureKind::Nondeterminism,
            format!("first run {first:?}, after reset {second:?}"),
        );
    }
    match first {
        Some(value) => CaseOutcome::Ok { value },
        None => fail(
            FailureKind::Pipeline,
            "entry returned no agreed i32 result".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::rng::Rng;
    use richwasm::typecheck::RuleCoverage;

    /// A smoke sweep across all four tiers — every case must pass.
    /// (The heavy sweeps live in `tests/farm.rs` and the CI job.)
    #[test]
    fn small_sweep_all_tiers_pass() {
        let cov = RuleCoverage::new();
        for (i, tier) in [
            gen::Tier::Raw,
            gen::Tier::Ml,
            gen::Tier::L3,
            gen::Tier::Interop,
        ]
        .into_iter()
        .cycle()
        .take(24)
        .enumerate()
        {
            let mut rng = Rng::for_case(0x5EED, i as u64);
            let prog = gen::gen_program(tier, &mut rng, &cov);
            let outcome = run_case(&prog);
            if let CaseOutcome::Failed { kind, detail } = &outcome {
                panic!(
                    "case {i} ({}) failed [{}]: {detail}\n{}",
                    tier.name(),
                    kind.name(),
                    prog.describe()
                );
            }
        }
    }
}
