//! Failing-case minimization: deterministic greedy shrinking.
//!
//! `minimize_module` repeatedly applies the smallest-first candidate
//! edit that *preserves the caller's failure predicate* until a
//! fixpoint. Edits are enumerated in a fixed order and every step
//! strictly decreases the (instruction count, constant magnitude)
//! metric, so minimization terminates and is deterministic: the same
//! failing module always shrinks to the same reproducer.
//!
//! The predicate owns validity: a candidate that no longer typechecks,
//! or that fails with a *different* class, should make the predicate
//! return `false` — the minimizer itself knows nothing about typing.

use richwasm::syntax::{Func, Instr, Module, NumType, Value};

/// One nested body's candidate variants paired with the closure that
/// rebuilds the enclosing instruction around an edited body.
type NestedEdits = Vec<(Vec<Vec<Instr>>, Box<dyn Fn(Vec<Instr>) -> Instr>)>;

/// Candidate simplifications of one instruction sequence: window
/// deletions (large windows first), recursive single edits inside
/// nested bodies, and constant shrinking. Ordered so the most
/// aggressive edits are tried first.
fn reduce_instrs(body: &[Instr]) -> Vec<Vec<Instr>> {
    let mut out = Vec::new();
    let n = body.len();

    // Window deletions, largest first.
    let mut widths: Vec<usize> = vec![n / 2, 8, 4, 2, 1];
    widths.retain(|&w| w >= 1 && w <= n);
    widths.dedup();
    for w in widths {
        for start in 0..=(n - w) {
            let mut cand = Vec::with_capacity(n - w);
            cand.extend_from_slice(&body[..start]);
            cand.extend_from_slice(&body[start + w..]);
            out.push(cand);
        }
    }

    // Recursive edits inside structured instructions.
    for (i, instr) in body.iter().enumerate() {
        let nested: NestedEdits = match instr {
            Instr::BlockI(b, inner) => {
                let b = b.clone();
                vec![(
                    reduce_instrs(inner),
                    Box::new(move |v| Instr::BlockI(b.clone(), v)),
                )]
            }
            Instr::LoopI(a, inner) => {
                let a = a.clone();
                vec![(
                    reduce_instrs(inner),
                    Box::new(move |v| Instr::LoopI(a.clone(), v)),
                )]
            }
            Instr::MemUnpack(b, inner) => {
                let b = b.clone();
                vec![(
                    reduce_instrs(inner),
                    Box::new(move |v| Instr::MemUnpack(b.clone(), v)),
                )]
            }
            Instr::IfI(b, t, e) => {
                let (b1, e1) = (b.clone(), e.clone());
                let (b2, t2) = (b.clone(), t.clone());
                vec![
                    (
                        reduce_instrs(t),
                        Box::new(move |v| Instr::IfI(b1.clone(), v, e1.clone())),
                    ),
                    (
                        reduce_instrs(e),
                        Box::new(move |v| Instr::IfI(b2.clone(), t2.clone(), v)),
                    ),
                ]
            }
            Instr::ExistUnpack(q, psi, b, inner) => {
                let (q, psi, b) = (*q, psi.clone(), b.clone());
                vec![(
                    reduce_instrs(inner),
                    Box::new(move |v| Instr::ExistUnpack(q, psi.clone(), b.clone(), v)),
                )]
            }
            _ => vec![],
        };
        for (variants, rebuild) in nested {
            for v in variants {
                let mut cand = body.to_vec();
                cand[i] = rebuild(v);
                out.push(cand);
            }
        }
    }

    // Constant shrinking (towards zero).
    for (i, instr) in body.iter().enumerate() {
        let replacement = match instr {
            Instr::Val(Value::Num(NumType::I32, bits)) if *bits != 0 => Some(Instr::i32(0)),
            Instr::Val(Value::Num(NumType::I64, bits)) if *bits != 0 => {
                Some(Instr::Val(Value::i64(0)))
            }
            _ => None,
        };
        if let Some(r) = replacement {
            let mut cand = body.to_vec();
            cand[i] = r;
            out.push(cand);
        }
    }

    out
}

/// Total instruction count (recursive) — the primary shrink metric.
fn weight(body: &[Instr]) -> u64 {
    body.iter()
        .map(|i| {
            1 + match i {
                Instr::BlockI(_, b) | Instr::LoopI(_, b) | Instr::MemUnpack(_, b) => weight(b),
                Instr::IfI(_, t, e) => weight(t) + weight(e),
                Instr::ExistUnpack(_, _, _, b) => weight(b),
                Instr::VariantCase(_, _, _, arms) => arms.iter().map(|a| weight(a)).sum(),
                _ => 0,
            }
        })
        .sum()
}

/// Sum of |i32/i64 constants| (recursive) — the secondary metric, so
/// constant shrinking also counts as progress.
fn const_mag(body: &[Instr]) -> u64 {
    body.iter()
        .map(|i| match i {
            Instr::Val(Value::Num(NumType::I32, bits)) => {
                u64::from((*bits as u32 as i32).unsigned_abs())
            }
            Instr::Val(Value::Num(NumType::I64, bits)) => (*bits as i64).unsigned_abs(),
            Instr::BlockI(_, b) | Instr::LoopI(_, b) | Instr::MemUnpack(_, b) => const_mag(b),
            Instr::IfI(_, t, e) => const_mag(t) + const_mag(e),
            Instr::ExistUnpack(_, _, _, b) => const_mag(b),
            Instr::VariantCase(_, _, _, arms) => arms.iter().map(|a| const_mag(a)).sum(),
            _ => 0,
        })
        .sum()
}

fn module_metric(m: &Module) -> (u64, u64) {
    let mut w = 0;
    let mut c = 0;
    for f in &m.funcs {
        if let Func::Defined { body, .. } = f {
            w += weight(body);
            c += const_mag(body);
        }
    }
    (w, c)
}

/// All single-step simplified variants of `m`, most aggressive first.
fn edits(m: &Module) -> Vec<Module> {
    let mut out = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        let Func::Defined { body, .. } = f else {
            continue;
        };
        // Whole-body stub first (the biggest single step). `i32 0`
        // satisfies any of the generated `… → [i32]` signatures.
        if body.len() > 1 {
            let mut cand = m.clone();
            if let Func::Defined { body, .. } = &mut cand.funcs[fi] {
                *body = vec![Instr::i32(0)];
            }
            out.push(cand);
        }
        for v in reduce_instrs(body) {
            let mut cand = m.clone();
            if let Func::Defined { body, .. } = &mut cand.funcs[fi] {
                *body = v;
            }
            out.push(cand);
        }
    }
    out
}

/// Shrinks `m` while `keep` holds. `keep(m)` must be `true` on entry;
/// the result is the fixpoint of greedy first-improvement descent over
/// the edit catalogue.
pub fn minimize_module(m: &Module, keep: &mut dyn FnMut(&Module) -> bool) -> Module {
    let mut current = m.clone();
    let mut metric = module_metric(&current);
    loop {
        let mut improved = false;
        for cand in edits(&current) {
            let cand_metric = module_metric(&cand);
            if cand_metric >= metric {
                continue;
            }
            if keep(&cand) {
                current = cand;
                metric = cand_metric;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use richwasm::syntax::{FunType, Type};

    fn main_only(body: Vec<Instr>) -> Module {
        Module {
            funcs: vec![Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![],
                body,
            }],
            ..Module::default()
        }
    }

    #[test]
    fn shrinks_to_single_instruction() {
        // Predicate: module still typechecks. Everything else is noise.
        let m = main_only(vec![
            Instr::i32(5),
            Instr::i32(7),
            Instr::Num(richwasm::syntax::NumInstr::IntBinop(
                NumType::I32,
                richwasm::syntax::instr::IntBinop::Add,
            )),
        ]);
        let mut keep = |cand: &Module| richwasm::typecheck::check_module(cand).is_ok();
        assert!(keep(&m));
        let min = minimize_module(&m, &mut keep);
        assert_eq!(module_metric(&min), (1, 0), "minimal is a single `i32 0`");
    }

    #[test]
    fn minimization_is_deterministic() {
        let m = main_only(vec![
            Instr::i32(3),
            Instr::Drop,
            Instr::i32(9),
            Instr::Drop,
            Instr::i32(1),
        ]);
        let mut keep = |cand: &Module| richwasm::typecheck::check_module(cand).is_ok();
        let a = minimize_module(&m, &mut keep);
        let b = minimize_module(&m, &mut keep);
        assert_eq!(a, b);
    }
}
