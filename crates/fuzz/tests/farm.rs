//! Integration sweep for the fuzz farm — a scaled-down version of what
//! the CI `fuzz` job runs, plus the minimizer golden test.
//!
//! The heavy sweeps (10k cases + 500 mutants) live in the CI job; these
//! tests keep the same machinery pinned under plain `cargo test`.

use richwasm::syntax::instr::Sign;
use richwasm::syntax::{Func, Instr, Module, NumType};
use richwasm::typecheck::{check_module, coverage_of_module, RuleCoverage};
use richwasm_fuzz::{
    gen_program, minimize_module, mutate, pick_tier, run_case, run_case_with, CaseOutcome,
    FuzzProgram, MutationKind, Rng, SourceModule,
};

/// Recursive instruction count — the same notion of size the minimizer
/// shrinks, recomputed here so the golden bound is independent of the
/// minimizer's internals.
fn instr_count(body: &[Instr]) -> usize {
    body.iter()
        .map(|i| {
            1 + match i {
                Instr::BlockI(_, b) | Instr::LoopI(_, b) | Instr::MemUnpack(_, b) => instr_count(b),
                Instr::IfI(_, t, e) => instr_count(t) + instr_count(e),
                Instr::ExistUnpack(_, _, _, b) => instr_count(b),
                Instr::VariantCase(_, _, _, arms) => arms.iter().map(|a| instr_count(a)).sum(),
                _ => 0,
            }
        })
        .sum()
}

fn module_size(m: &Module) -> usize {
    m.funcs
        .iter()
        .map(|f| match f {
            Func::Defined { body, .. } => instr_count(body),
            Func::Imported { .. } => 0,
        })
        .sum()
}

/// A moderate all-tier sweep: every generated program must pass the full
/// differential harness, and together they must exercise most of the
/// checker's typing rules.
#[test]
fn moderate_sweep_all_tiers() {
    const CASES: u64 = 300;
    let mut cov = RuleCoverage::new();
    for i in 0..CASES {
        let mut rng = Rng::for_case(0xFA51, i);
        let tier = pick_tier(&mut rng);
        let prog = gen_program(tier, &mut rng, &cov);
        for m in prog.rw_modules().into_iter().flatten() {
            coverage_of_module(&m, &mut cov);
        }
        if let CaseOutcome::Failed { kind, detail } = run_case(&prog) {
            panic!(
                "case {i} ({}) failed [{}]: {detail}\n{}",
                tier.name(),
                kind.name(),
                prog.describe()
            );
        }
    }
    // The sweep is deterministic, so this is a pin, not a flake: 300
    // cases must cover well over half the rule set.
    assert!(
        cov.covered() * 2 > cov.total(),
        "rule coverage too low: {}/{}",
        cov.covered(),
        cov.total()
    );
}

/// The bytecode-tier differential sweep (PR 10 acceptance): ≥1k
/// generated programs through the full harness with the
/// bytecode-vs-tree-walker check on. Host-free cases run as a three-way
/// differential — RichWasm interpreter × bytecode VM × Wasm tree-walker
/// oracle, with trap strings and exact fuel counts compared — so any
/// drift between the two Wasm engines surfaces as a `Mismatch` here.
#[test]
fn bytecode_differential_sweep_1k() {
    const CASES: u64 = 1_000;
    let cov = RuleCoverage::new();
    let mut checked_three_way = 0u64;
    for i in 0..CASES {
        let mut rng = Rng::for_case(0xB17E_C0DE, i);
        let tier = pick_tier(&mut rng);
        let prog = gen_program(tier, &mut rng, &cov);
        if prog.hosts.is_empty() {
            checked_three_way += 1;
        }
        if let CaseOutcome::Failed { kind, detail } = run_case_with(&prog, true) {
            panic!(
                "case {i} ({}) failed [{}]: {detail}\n{}",
                tier.name(),
                kind.name(),
                prog.describe()
            );
        }
    }
    // The sweep is deterministic; most generated cases are host-free, so
    // the three-way differential must have actually run at scale.
    assert!(
        checked_three_way * 2 > CASES,
        "only {checked_three_way}/{CASES} cases ran the bytecode differential"
    );
}

/// Adversarial batch: targeted ill-typed mutants of otherwise well-typed
/// programs must all be rejected by the checker.
#[test]
fn adversarial_mutants_all_rejected() {
    let cov = RuleCoverage::new();
    let mut applied = 0u32;
    let mut attempt = 0u64;
    while applied < 60 && attempt < 1200 {
        let mut rng = Rng::for_case(0x0BAD_5EED, attempt);
        attempt += 1;
        let tier = pick_tier(&mut rng);
        let prog = gen_program(tier, &mut rng, &cov);
        let kind = MutationKind::ALL[(attempt as usize) % MutationKind::ALL.len()];
        for m in prog.rw_modules().into_iter().flatten() {
            let Some(mutant) = mutate(&m, kind) else {
                continue;
            };
            applied += 1;
            assert!(
                check_module(&mutant).is_err(),
                "checker ACCEPTED an ill-typed [{}] mutant:\n{mutant:?}",
                kind.name()
            );
            break;
        }
    }
    assert!(applied >= 60, "only {applied} mutants applied");
}

/// The minimizer golden test: a known-failing case (an injected `0/0`
/// trap inside a realistically large generated program) must shrink to a
/// reproducer no bigger than the pinned golden size — and do so
/// deterministically.
#[test]
fn minimizer_golden_injected_trap() {
    // A fixed-seed raw-tier program, with a division-by-zero spliced
    // into the front of `main` — well-typed, but traps on both backends.
    let mut rng = Rng::for_case(0x601D, 7);
    let mut prog = gen_program(richwasm_fuzz::Tier::Raw, &mut rng, &RuleCoverage::new());
    assert_eq!(prog.modules.len(), 1, "raw tier is a single module");
    let (name, SourceModule::Rw(module)) = &mut prog.modules[0] else {
        panic!("raw tier module is a RichWasm module");
    };
    let name = name.clone();
    let trap = vec![
        Instr::i32(1),
        Instr::i32(0),
        Instr::Num(richwasm::syntax::NumInstr::IntBinop(
            NumType::I32,
            richwasm::syntax::instr::IntBinop::Div(Sign::S),
        )),
        Instr::Drop,
    ];
    let injected = module
        .funcs
        .iter_mut()
        .find_map(|f| match f {
            Func::Defined { exports, body, .. } if exports.iter().any(|e| e == "main") => {
                body.splice(0..0, trap.clone());
                Some(())
            }
            _ => None,
        })
        .is_some();
    assert!(injected, "generated raw module exports main");
    let module = module.clone();
    assert!(module_size(&module) > 20, "start from a non-trivial module");

    // The failure predicate the driver uses: same failure class.
    let keep = |prog: &FuzzProgram, name: &str, cand: &Module| {
        let mut p = prog.clone();
        p.modules = vec![(name.to_string(), SourceModule::Rw(cand.clone()))];
        matches!(
            run_case(&p),
            CaseOutcome::Failed {
                kind: richwasm_fuzz::FailureKind::Trap,
                ..
            }
        )
    };
    assert!(keep(&prog, &name, &module), "injected trap must reproduce");

    let min_a = minimize_module(&module, &mut |cand| keep(&prog, &name, cand));
    let min_b = minimize_module(&module, &mut |cand| keep(&prog, &name, cand));
    assert_eq!(min_a, min_b, "minimization must be deterministic");

    // Golden bound: the trap needs the two operands and the division;
    // everything else must have been stripped.
    assert!(
        module_size(&min_a) <= 4,
        "minimized reproducer too large ({} instrs):\n{min_a}",
        module_size(&min_a)
    );
    assert!(
        keep(&prog, &name, &min_a),
        "minimized reproducer still fails the same way"
    );
}
