//! Shared workload builders for the benchmark harness: the paper's
//! example programs plus parametric synthetic workloads for scaling
//! studies.

use richwasm::syntax::instr::Block;
use richwasm::syntax::*;
use richwasm_l3::{translate_ty as l3_ty, L3Expr, L3Fun, L3Import, L3Module, L3Op, L3Ty};
use richwasm_ml::{MlBinop, MlExpr, MlFun, MlGlobal, MlImport, MlModule, MlTy};

/// The linear boundary type of the Fig. 3 scenario.
pub fn lin_ref_l3() -> L3Ty {
    L3Ty::Ref(Box::new(L3Ty::Int), 64)
}

/// The ML view of [`lin_ref_l3`].
pub fn lin_ref_ml() -> MlTy {
    MlTy::Foreign(l3_ty(&lin_ref_l3()))
}

/// The Fig. 1/Fig. 3 ML stash module; `buggy` duplicates the linear value.
pub fn stash_module(buggy: bool) -> MlModule {
    let var = |x: &str| Box::new(MlExpr::Var(x.into()));
    let stash_body = if buggy {
        MlExpr::Seq(
            Box::new(MlExpr::Assign(var("c"), var("r"))),
            Box::new(MlExpr::Var("r".into())),
        )
    } else {
        MlExpr::Assign(var("c"), var("r"))
    };
    MlModule {
        globals: vec![MlGlobal {
            name: "c".into(),
            ty: MlTy::RefToLin(Box::new(lin_ref_ml())),
            init: MlExpr::NewRefToLin(lin_ref_ml()),
        }],
        funs: vec![
            MlFun {
                name: "stash".into(),
                export: true,
                tyvars: 0,
                params: vec![("r".into(), lin_ref_ml())],
                ret: if buggy { lin_ref_ml() } else { MlTy::Unit },
                body: stash_body,
            },
            MlFun {
                name: "get_stashed".into(),
                export: true,
                tyvars: 0,
                params: vec![("u".into(), MlTy::Unit)],
                ret: lin_ref_ml(),
                body: MlExpr::Deref(var("c")),
            },
        ],
        ..MlModule::default()
    }
}

/// The safe L3 client of the stash module.
pub fn stash_client() -> L3Module {
    L3Module {
        imports: vec![
            L3Import {
                module: "ml".into(),
                name: "stash".into(),
                params: vec![lin_ref_l3()],
                ret: L3Ty::Unit,
            },
            L3Import {
                module: "ml".into(),
                name: "get_stashed".into(),
                params: vec![L3Ty::Unit],
                ret: lin_ref_l3(),
            },
        ],
        funs: vec![L3Fun {
            name: "main".into(),
            export: true,
            params: vec![],
            ret: L3Ty::Int,
            body: L3Expr::Seq(
                Box::new(L3Expr::CallTop {
                    name: "stash".into(),
                    args: vec![L3Expr::Join(Box::new(L3Expr::New(
                        Box::new(L3Expr::Int(42)),
                        64,
                    )))],
                }),
                Box::new(L3Expr::Free(Box::new(L3Expr::CallTop {
                    name: "get_stashed".into(),
                    args: vec![L3Expr::Unit],
                }))),
            ),
        }],
    }
}

/// A synthetic RichWasm module with `n` chained arithmetic functions —
/// the type-checking scalability workload.
pub fn arith_chain(n: usize) -> Module {
    let i32t = Type::num(NumType::I32);
    let mut funcs = Vec::new();
    for i in 0..n {
        let body = if i == 0 {
            vec![
                Instr::GetLocal(0, Qual::Unr),
                Instr::i32(1),
                Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add)),
            ]
        } else {
            vec![
                Instr::GetLocal(0, Qual::Unr),
                Instr::Call((i - 1) as u32, vec![]),
                Instr::GetLocal(0, Qual::Unr),
                Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add)),
            ]
        };
        funcs.push(Func::Defined {
            exports: if i == n - 1 {
                vec!["main".into()]
            } else {
                vec![]
            },
            ty: FunType::mono(vec![i32t.clone()], vec![i32t.clone()]),
            locals: vec![],
            body,
        });
    }
    Module {
        funcs,
        ..Module::default()
    }
}

/// A RichWasm module whose export performs `n` linear allocate/update/free
/// round trips — the allocator/linearity churn workload.
pub fn churn(n: u32) -> Module {
    let i32t = Type::num(NumType::I32);
    let lt = Instr::Num(NumInstr::IntRelop(
        NumType::I32,
        instr::IntRelop::Lt(instr::Sign::S),
    ));
    let add = Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add));
    Module {
        funcs: vec![Func::Defined {
            exports: vec!["main".into()],
            ty: FunType::mono(vec![], vec![i32t.clone()]),
            // local0: loop counter, local1: accumulator, local2: scratch
            locals: vec![Size::Const(32), Size::Const(32), Size::Const(32)],
            body: vec![
                Instr::i32(0),
                Instr::SetLocal(0),
                Instr::i32(0),
                Instr::SetLocal(1),
                Instr::i32(0),
                Instr::SetLocal(2),
                Instr::LoopI(
                    ArrowType::new(vec![], vec![]),
                    vec![
                        // One linear cell round trip.
                        Instr::GetLocal(1, Qual::Unr),
                        Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
                        Instr::MemUnpack(
                            Block::new(
                                ArrowType::new(vec![], vec![]),
                                vec![instr::LocalEffect::new(2, i32t)],
                            ),
                            vec![
                                Instr::StructGet(0),
                                Instr::i32(1),
                                add.clone(),
                                Instr::SetLocal(2),
                                Instr::StructFree,
                            ],
                        ),
                        Instr::GetLocal(2, Qual::Unr),
                        Instr::SetLocal(1),
                        // Loop control.
                        Instr::GetLocal(0, Qual::Unr),
                        Instr::i32(1),
                        add,
                        Instr::TeeLocal(0),
                        Instr::i32(n as i32),
                        lt,
                        Instr::BrIf(0),
                    ],
                ),
                Instr::GetLocal(1, Qual::Unr),
            ],
        }],
        ..Module::default()
    }
}

/// The Fig. 9 counter library (L3 side).
pub fn counter_library() -> L3Module {
    let v = |x: &str| Box::new(L3Expr::Var(x.into()));
    let counter = || {
        L3Ty::Ref(
            Box::new(L3Ty::Prod(Box::new(L3Ty::Int), Box::new(L3Ty::Int))),
            128,
        )
    };
    L3Module {
        funs: vec![
            L3Fun {
                name: "make_counter".into(),
                export: true,
                params: vec![("step".into(), L3Ty::Int)],
                ret: counter(),
                body: L3Expr::Join(Box::new(L3Expr::New(
                    Box::new(L3Expr::Pair(Box::new(L3Expr::Int(0)), v("step"))),
                    128,
                ))),
            },
            L3Fun {
                name: "incr".into(),
                export: true,
                params: vec![("r".into(), counter())],
                ret: counter(),
                body: L3Expr::LetPair(
                    "p2".into(),
                    "old".into(),
                    Box::new(L3Expr::Swap(
                        Box::new(L3Expr::Split(v("r"))),
                        Box::new(L3Expr::Pair(
                            Box::new(L3Expr::Int(0)),
                            Box::new(L3Expr::Int(0)),
                        )),
                    )),
                    Box::new(L3Expr::LetPair(
                        "count".into(),
                        "step".into(),
                        v("old"),
                        Box::new(L3Expr::LetPair(
                            "p3".into(),
                            "dummy".into(),
                            Box::new(L3Expr::Swap(
                                v("p2"),
                                Box::new(L3Expr::Pair(
                                    Box::new(L3Expr::Op(L3Op::Add, v("count"), v("step"))),
                                    v("step"),
                                )),
                            )),
                            Box::new(L3Expr::Seq(v("dummy"), Box::new(L3Expr::Join(v("p3"))))),
                        )),
                    )),
                ),
            },
            L3Fun {
                name: "finish".into(),
                export: true,
                params: vec![("r".into(), counter())],
                ret: L3Ty::Int,
                body: L3Expr::LetPair(
                    "count".into(),
                    "step".into(),
                    Box::new(L3Expr::Free(v("r"))),
                    Box::new(L3Expr::Seq(v("step"), v("count"))),
                ),
            },
        ],
        ..L3Module::default()
    }
}

/// The Fig. 9 client (ML side).
pub fn counter_client() -> MlModule {
    let counter_ml = || {
        MlTy::Foreign(l3_ty(&L3Ty::Ref(
            Box::new(L3Ty::Prod(Box::new(L3Ty::Int), Box::new(L3Ty::Int))),
            128,
        )))
    };
    let var = |x: &str| Box::new(MlExpr::Var(x.into()));
    MlModule {
        imports: vec![
            MlImport {
                module: "gfx".into(),
                name: "make_counter".into(),
                params: vec![MlTy::Int],
                ret: counter_ml(),
            },
            MlImport {
                module: "gfx".into(),
                name: "incr".into(),
                params: vec![counter_ml()],
                ret: counter_ml(),
            },
            MlImport {
                module: "gfx".into(),
                name: "finish".into(),
                params: vec![counter_ml()],
                ret: MlTy::Int,
            },
        ],
        globals: vec![MlGlobal {
            name: "slot".into(),
            ty: MlTy::RefToLin(Box::new(counter_ml())),
            init: MlExpr::NewRefToLin(counter_ml()),
        }],
        funs: vec![
            MlFun {
                name: "setup".into(),
                export: true,
                tyvars: 0,
                params: vec![("step".into(), MlTy::Int)],
                ret: MlTy::Unit,
                body: MlExpr::Assign(
                    var("slot"),
                    Box::new(MlExpr::CallTop {
                        name: "make_counter".into(),
                        tyargs: vec![],
                        args: vec![MlExpr::Var("step".into())],
                    }),
                ),
            },
            MlFun {
                name: "bump".into(),
                export: true,
                tyvars: 0,
                params: vec![("u".into(), MlTy::Unit)],
                ret: MlTy::Unit,
                body: MlExpr::Assign(
                    var("slot"),
                    Box::new(MlExpr::CallTop {
                        name: "incr".into(),
                        tyargs: vec![],
                        args: vec![MlExpr::Deref(var("slot"))],
                    }),
                ),
            },
            MlFun {
                name: "total".into(),
                export: true,
                tyvars: 0,
                params: vec![("u".into(), MlTy::Unit)],
                ret: MlTy::Int,
                body: MlExpr::CallTop {
                    name: "finish".into(),
                    tyargs: vec![],
                    args: vec![MlExpr::Deref(var("slot"))],
                },
            },
        ],
    }
}

/// A synthetic ML program of `depth` (closures + refs) — the ML compiler
/// scaling workload.
pub fn ml_tower(depth: u32) -> MlModule {
    fn expr(d: u32) -> MlExpr {
        if d == 0 {
            return MlExpr::Int(1);
        }
        MlExpr::Let(
            format!("x{d}"),
            Box::new(MlExpr::NewRef(Box::new(expr(d - 1)))),
            Box::new(MlExpr::App(
                Box::new(MlExpr::Lam {
                    param: "y".into(),
                    param_ty: MlTy::Int,
                    ret_ty: MlTy::Int,
                    body: Box::new(MlExpr::Binop(
                        MlBinop::Add,
                        Box::new(MlExpr::Var("y".into())),
                        Box::new(MlExpr::Deref(Box::new(MlExpr::Var(format!("x{d}"))))),
                    )),
                }),
                Box::new(expr(d - 1)),
            )),
        )
    }
    MlModule {
        funs: vec![MlFun {
            name: "main".into(),
            export: true,
            tyvars: 0,
            params: vec![],
            ret: MlTy::Int,
            body: expr(depth),
        }],
        ..MlModule::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use richwasm::typecheck::check_module;

    #[test]
    fn workloads_typecheck() {
        check_module(&richwasm_ml::compile_module(&stash_module(false)).unwrap()).unwrap();
        check_module(&richwasm_l3::compile_module(&stash_client()).unwrap()).unwrap();
        check_module(&arith_chain(10)).unwrap();
        check_module(&churn(5)).unwrap();
        check_module(&richwasm_l3::compile_module(&counter_library()).unwrap()).unwrap();
        check_module(&richwasm_ml::compile_module(&counter_client()).unwrap()).unwrap();
        check_module(&richwasm_ml::compile_module(&ml_tower(3)).unwrap()).unwrap();
    }

    #[test]
    fn buggy_workload_rejected() {
        let rw = richwasm_ml::compile_module(&stash_module(true)).unwrap();
        assert!(check_module(&rw).is_err());
    }

    #[test]
    fn churn_runs() {
        let mut rt = richwasm::interp::Runtime::new();
        let i = rt.instantiate("m", churn(10)).unwrap();
        let out = rt.invoke(i, "main", vec![]).unwrap();
        assert_eq!(out.values, vec![richwasm::syntax::Value::i32(10)]);
    }
}
