//! Shared workload builders for the RichWasm benchmark harness.
//!
//! Each experiment of EXPERIMENTS.md has a corresponding Criterion bench
//! in `benches/`; this crate hosts the program generators they share.

pub mod workloads;
