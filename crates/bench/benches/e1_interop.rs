//! **E1** — Fig. 1/Fig. 3: static enforcement of interop safety.
//!
//! Regenerates the paper's core claim in measurable form: RichWasm's
//! enforcement is *static* — a one-time type-checking cost at
//! compile/link time, with **zero per-operation runtime cost** — versus
//! MSWasm-style *dynamic* capability checking (§7), which pays on every
//! access. We measure:
//!
//! * `check_accepts_safe` / `check_rejects_buggy` — the one-time cost of
//!   the static check on the stash modules;
//! * `static_typed_run` vs `dynamic_checked_run` — end-to-end runs of the
//!   same interop workload with the checker amortised away vs the
//!   interpreter's dynamic linear-memory accounting alone.

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm::interp::Runtime;
use richwasm::typecheck::check_module;
use richwasm_bench::workloads::{stash_client, stash_module};

fn bench(c: &mut Criterion) {
    let safe = richwasm_ml::compile_module(&stash_module(false)).unwrap();
    let buggy = richwasm_ml::compile_module(&stash_module(true)).unwrap();
    let client = richwasm_l3::compile_module(&stash_client()).unwrap();

    let mut g = c.benchmark_group("e1_interop");
    g.sample_size(20);

    g.bench_function("check_accepts_safe", |b| {
        b.iter(|| check_module(std::hint::black_box(&safe)).is_ok());
    });
    g.bench_function("check_rejects_buggy", |b| {
        b.iter(|| check_module(std::hint::black_box(&buggy)).is_err());
    });

    // Static: modules checked once at instantiation; invocations carry no
    // checking cost.
    g.bench_function("static_typed_run", |b| {
        let mut rt = Runtime::new();
        rt.instantiate("ml", safe.clone()).unwrap();
        let ci = rt.instantiate("l3", client.clone()).unwrap();
        b.iter(|| rt.invoke(ci, "main", vec![]).unwrap().values[0].clone());
    });

    // Dynamic-only baseline: no static checking at all — safety rests on
    // the interpreter's runtime accounting (the MSWasm-style contrast).
    g.bench_function("dynamic_checked_run", |b| {
        let mut rt = Runtime::new();
        rt.config.check_modules = false;
        rt.instantiate("ml", safe.clone()).unwrap();
        let ci = rt.instantiate("l3", client.clone()).unwrap();
        b.iter(|| rt.invoke(ci, "main", vec![]).unwrap().values[0].clone());
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
