//! **E5** — §6: compiling RichWasm to WebAssembly.
//!
//! Series reported:
//!
//! * `lower_*` — whole-pipeline compile times (type-directed lowering
//!   including the checker re-run that produces the annotations);
//! * `erasure_zero_cost` — the paper's claim that type-level instructions
//!   (`qualify`, `cap.split`, `mem.pack`, …) are erased: a
//!   qualifier-shuffling module lowers to *bytes identical* to its plain
//!   counterpart, so we also measure the Wasm-side execution of the churn
//!   workload (allocator + memory traffic only);
//! * `wasm_churn_cells` — execution on the Wasm substrate (the runtime
//!   free-list allocator of §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use richwasm_bench::workloads::{arith_chain, churn};
use richwasm_lower::lower_modules;
use richwasm_repro::engine::{Engine, EngineConfig, Exec, ModuleSet};
use richwasm_wasm::binary::encode_module;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_lowering");
    g.sample_size(15);

    for n in [10usize, 50] {
        let m = arith_chain(n);
        let named = vec![("m".to_string(), m)];
        g.bench_with_input(BenchmarkId::new("lower_funcs", n), &named, |b, named| {
            b.iter(|| lower_modules(std::hint::black_box(named)).unwrap());
        });
    }

    for n in [10u32, 100] {
        // Setup through the engine (Wasm-only mode); the timed loop
        // invokes the extracted linker directly.
        g.bench_with_input(BenchmarkId::new("wasm_churn_cells", n), &n, |b, &n| {
            let engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
            let mut inst = engine
                .instantiate(&ModuleSet::new().richwasm("m", churn(n)))
                .unwrap();
            let mut linker = inst.wasm.take().unwrap();
            let mi = linker.instance_by_name("m").unwrap();
            b.iter(|| linker.invoke(mi, "main", &[]).unwrap());
        });
    }

    // Binary encoding throughput.
    let named = vec![("m".to_string(), arith_chain(50))];
    let lowered = lower_modules(&named).unwrap();
    g.bench_function("encode_binary", |b| {
        b.iter(|| {
            lowered
                .iter()
                .map(|(_, wm)| encode_module(std::hint::black_box(wm)).len())
                .sum::<usize>()
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
