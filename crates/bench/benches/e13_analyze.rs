//! **E13** — the cost of the `Stage::Analyze` pass: CFG construction +
//! re-verification + fuel-cost + call-graph + dead-code over every
//! lowered scenario module, measured against the cold compile that
//! produces those modules.
//!
//! Analysis rides along on every cold compile (at `Analysis::Warn`, the
//! default), so its budget is expressed *relative* to the pipeline it
//! joins: the acceptance gate requires the analyze stage to cost **≤ 30%
//! of a cold compile** (cold/analyze ≥ 10/3). In practice the
//! substructural typecheck and whole-program lowering dwarf it.
//!
//! Series reported:
//!
//! * `analyze_all_modules` — `analyze_module` over every lowered
//!   scenario module (the exact Stage::Analyze work);
//! * `cold_compile` — the full static pipeline, analysis off, on a
//!   fresh engine (the baseline the 30% budget is against).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm_analyze::analyze_module;
use richwasm_bench::workloads::{
    arith_chain, churn, counter_client, counter_library, ml_tower, stash_client, stash_module,
};
use richwasm_repro::engine::{Analysis, Engine, EngineConfig, ModuleSet};
use richwasm_wasm::ast::Module;

fn scenario_sets() -> Vec<ModuleSet> {
    vec![
        ModuleSet::new()
            .ml("ml", stash_module(false))
            .l3("l3", stash_client())
            .entry("l3"),
        ModuleSet::new()
            .l3("gfx", counter_library())
            .ml("app", counter_client())
            .entry("app"),
        ModuleSet::new().ml("tower", ml_tower(4)),
        ModuleSet::new().richwasm("chain", arith_chain(64)),
        ModuleSet::new().richwasm("m", churn(50)),
    ]
}

fn median_of<T>(samples: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        criterion::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    // Collect every lowered module once, without analysis, so the
    // analyze series measures exactly the Stage::Analyze work.
    let off = Engine::with_config(EngineConfig::new().analysis(Analysis::Off));
    let sets = scenario_sets();
    let modules: Vec<Module> = sets
        .iter()
        .flat_map(|set| {
            off.compile(set)
                .unwrap()
                .lowered_modules()
                .iter()
                .map(|(_, wm)| wm.clone())
                .collect::<Vec<_>>()
        })
        .collect();
    assert!(!modules.is_empty());

    let mut g = c.benchmark_group("e13_analyze");
    g.sample_size(20);
    g.bench_function("analyze_all_modules", |b| {
        b.iter(|| {
            for wm in &modules {
                criterion::black_box(analyze_module(wm));
            }
        });
    });
    g.bench_function("cold_compile", |b| {
        b.iter(|| {
            // A fresh engine per iteration: no in-memory cache hit, no
            // cache_dir, so every compile pays the full static pipeline.
            let engine = Engine::with_config(EngineConfig::new().analysis(Analysis::Off));
            for set in &sets {
                criterion::black_box(engine.compile(set).unwrap());
            }
        });
    });
    g.finish();

    let samples = 11;
    let analyze_ns = median_of(samples, || {
        for wm in &modules {
            criterion::black_box(analyze_module(wm));
        }
    })
    .as_nanos()
    .max(1) as f64;
    let cold_ns = median_of(samples, || {
        let engine = Engine::with_config(EngineConfig::new().analysis(Analysis::Off));
        for set in &sets {
            criterion::black_box(engine.compile(set).unwrap());
        }
    })
    .as_nanos()
    .max(1) as f64;

    println!(
        "e13: analyze {:.2}ms vs cold compile {:.2}ms ({:.1}% overhead)",
        analyze_ns / 1e6,
        cold_ns / 1e6,
        100.0 * analyze_ns / cold_ns
    );
    // Analysis must cost ≤ 30% of a cold compile: cold/analyze ≥ 10/3.
    criterion::acceptance(
        "e13_analyze/cold_compile_over_analyze",
        cold_ns / analyze_ns,
        10.0 / 3.0,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
