//! **E6** — the unified `Pipeline` driver itself.
//!
//! Series reported:
//!
//! * `e1_differential_end_to_end` — the whole five-stage path (two
//!   frontends → typecheck → lower → validate → encode → execute on both
//!   interpreters + cross-check) for the Fig. 3 interop scenario, i.e.
//!   the cost of the paper's full workflow on its headline example;
//! * `e1_interp_only_end_to_end` — the same scenario skipping the Wasm
//!   half, isolating the lowering pipeline's share;
//! * `counter_build_wasm_only` — frontends through binary encoding for
//!   the Fig. 9 counter (compile-time only, no execution);
//! * `differential_bump_dispatch` — per-invocation cost of the driver's
//!   differential mode (both backends + comparison) against the raw
//!   interpreter cost measured in E2.

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm::syntax::Value;
use richwasm_bench::workloads::{counter_client, counter_library, stash_client, stash_module};
use richwasm_repro::pipeline::{Exec, Pipeline};

fn stash_pipeline() -> Pipeline {
    Pipeline::new()
        .ml("ml", stash_module(false))
        .l3("l3", stash_client())
        .entry("l3")
}

fn counter_pipeline() -> Pipeline {
    Pipeline::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_pipeline");
    g.sample_size(15);

    g.bench_function("e1_differential_end_to_end", |b| {
        b.iter(|| {
            let run = stash_pipeline().run().unwrap();
            assert_eq!(run.result.i32(), Some(42));
            run.program.report.timings.total()
        })
    });

    g.bench_function("e1_interp_only_end_to_end", |b| {
        b.iter(|| {
            let run = stash_pipeline().exec(Exec::Interp).run().unwrap();
            assert_eq!(run.result.i32(), Some(42));
            run.program.report.timings.total()
        })
    });

    g.bench_function("counter_build_wasm_only", |b| {
        b.iter(|| {
            let prog = counter_pipeline().exec(Exec::Wasm).build().unwrap();
            assert!(!prog.report.binaries.is_empty());
            prog.report
                .binaries
                .iter()
                .map(|(_, bytes)| bytes.len())
                .sum::<usize>()
        })
    });

    g.bench_function("differential_bump_dispatch", |b| {
        let mut prog = counter_pipeline().build().unwrap();
        prog.invoke("app", "setup", vec![Value::i32(1)]).unwrap();
        b.iter(|| prog.invoke("app", "bump", vec![Value::Unit]).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
