//! **E6** — the compilation driver itself, end to end.
//!
//! Series reported:
//!
//! * `e1_differential_end_to_end` — the whole five-stage path (two
//!   frontends → typecheck → lower → validate → encode → execute on both
//!   interpreters + cross-check) for the Fig. 3 interop scenario, i.e.
//!   the cost of the paper's full workflow on its headline example. A
//!   **fresh engine per iteration** keeps every compile cold — this
//!   series measures the static pipeline, not the cache (E7 measures
//!   the cache);
//! * `e1_interp_only_end_to_end` — the same scenario skipping the Wasm
//!   half, isolating the lowering pipeline's share;
//! * `counter_build_wasm_only` — frontends through binary encoding for
//!   the Fig. 9 counter (compile-time only, no execution);
//! * `differential_bump_dispatch` — per-invocation cost of the engine's
//!   differential mode (both backends + comparison) against the raw
//!   interpreter cost measured in E2.

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm::syntax::Value;
use richwasm_bench::workloads::{counter_client, counter_library, stash_client, stash_module};
use richwasm_repro::engine::{Engine, EngineConfig, Exec, ModuleSet};

fn stash_set() -> ModuleSet {
    ModuleSet::new()
        .ml("ml", stash_module(false))
        .l3("l3", stash_client())
        .entry("l3")
}

fn counter_set() -> ModuleSet {
    ModuleSet::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_pipeline");
    g.sample_size(15);

    g.bench_function("e1_differential_end_to_end", |b| {
        b.iter(|| {
            // Fresh engine: deliberately cold, so the full static path is
            // inside the measurement.
            let engine = Engine::new();
            let artifact = engine.compile(&stash_set()).unwrap();
            let mut inst = artifact.instantiate().unwrap();
            assert_eq!(inst.invoke_entry().unwrap().i32(), Some(42));
            artifact.timings().total()
        });
    });

    g.bench_function("e1_interp_only_end_to_end", |b| {
        b.iter(|| {
            let engine = Engine::with_config(EngineConfig::new().interp_only());
            let artifact = engine.compile(&stash_set()).unwrap();
            let mut inst = artifact.instantiate().unwrap();
            assert_eq!(inst.invoke_entry().unwrap().i32(), Some(42));
            artifact.timings().total()
        });
    });

    g.bench_function("counter_build_wasm_only", |b| {
        b.iter(|| {
            let engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
            let artifact = engine.compile(&counter_set()).unwrap();
            assert!(!artifact.wasm_binaries().is_empty());
            artifact
                .wasm_binaries()
                .iter()
                .map(|(_, bytes)| bytes.len())
                .sum::<usize>()
        });
    });

    g.bench_function("differential_bump_dispatch", |b| {
        let engine = Engine::new();
        let mut inst = engine.instantiate(&counter_set()).unwrap();
        inst.invoke("app", "setup", vec![Value::i32(1)]).unwrap();
        b.iter(|| inst.invoke("app", "bump", vec![Value::Unit]).unwrap());
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
