//! **E14** — the differential fuzz farm as a benchmark-gate experiment.
//!
//! A bounded sweep of generated well-typed programs runs through the
//! full engine path (typecheck → lower → validate → encode → decode
//! round-trip → differential execution), and a batch of adversarial
//! mutants runs against the checker. The headline numbers become
//! acceptance entries in the bench-gate JSON:
//!
//! * **case_pass_rate** — every generated case must pass (rate ≥ 1.0);
//! * **mutant_rejection_rate** — every ill-typed mutant must be
//!   rejected (rate ≥ 1.0);
//! * **rule_coverage** — the sweep must exercise ≥ 60% of the checker's
//!   typing rules (the full CI sweep reaches ~96%).
//!
//! Plus `case_end_to_end`: the wall cost of generating + fully running
//! one case, which is the unit the CI sweep's budget is priced in.

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm::typecheck::{check_module, coverage_of_module, RuleCoverage};
use richwasm_fuzz::{gen_program, mutate, pick_tier, run_case, MutationKind, Rng};

/// Well-typed cases in the gate sweep.
const CASES: u64 = 150;
/// Adversarial mutants in the gate sweep.
const MUTANTS: u32 = 50;
const SEED: u64 = 0xE14;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_fuzz");
    g.sample_size(10);

    g.bench_function("case_end_to_end", |b| {
        let cov = RuleCoverage::new();
        let mut i = 0u64;
        b.iter(|| {
            let mut rng = Rng::for_case(SEED, i);
            i += 1;
            let tier = pick_tier(&mut rng);
            let prog = gen_program(tier, &mut rng, &cov);
            criterion::black_box(run_case(&prog).is_ok())
        });
    });
    g.finish();

    // ---- Gate sweep -------------------------------------------------
    let mut cov = RuleCoverage::new();
    let mut ok = 0u64;
    for i in 0..CASES {
        let mut rng = Rng::for_case(SEED, i);
        let tier = pick_tier(&mut rng);
        let prog = gen_program(tier, &mut rng, &cov);
        for m in prog.rw_modules().into_iter().flatten() {
            coverage_of_module(&m, &mut cov);
        }
        if run_case(&prog).is_ok() {
            ok += 1;
        } else {
            eprintln!("e14: case {i} ({}) failed", tier.name());
        }
    }

    let mut applied = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while applied < MUTANTS && attempt < u64::from(MUTANTS) * 20 {
        let mut rng = Rng::for_case(SEED ^ 0xAD, attempt);
        attempt += 1;
        let tier = pick_tier(&mut rng);
        let prog = gen_program(tier, &mut rng, &cov);
        let kind = MutationKind::ALL[(attempt as usize) % MutationKind::ALL.len()];
        for m in prog.rw_modules().into_iter().flatten() {
            let Some(mutant) = mutate(&m, kind) else {
                continue;
            };
            applied += 1;
            if check_module(&mutant).is_err() {
                rejected += 1;
            }
            break;
        }
    }

    println!(
        "e14: {ok}/{CASES} cases ok, {rejected}/{applied} mutants rejected, \
         rule coverage {}/{}",
        cov.covered(),
        cov.total()
    );
    criterion::acceptance("e14_fuzz/case_pass_rate", ok as f64 / CASES as f64, 1.0);
    criterion::acceptance(
        "e14_fuzz/mutant_rejection_rate",
        f64::from(rejected) / f64::from(applied.max(1)),
        1.0,
    );
    criterion::acceptance(
        "e14_fuzz/rule_coverage",
        cov.covered() as f64 / cov.total() as f64,
        0.6,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
