//! **E9** — parallel invocation throughput over an [`InstancePool`]:
//! the serving-traffic experiment.
//!
//! One `Artifact` of the linear-churn workload (E2's allocator kernel —
//! CPU-bound, no host calls, every invocation independent) is driven two
//! ways over the *same* batch of jobs:
//!
//! * `batch_1_thread` — `InstancePool::invoke_batch(1, jobs)`: one
//!   worker, one instance, strictly sequential — the baseline;
//! * `batch_4_threads` — `invoke_batch(4, jobs)` over a 4-instance pool:
//!   four scoped worker threads claiming jobs from a shared counter,
//!   each with its own checked-out instance (differential checking and
//!   host record/replay stay per-instance — nothing is shared but the
//!   immutable artifact).
//!
//! Plus `checkout_checkin` — the pool recycling round trip itself
//! (checkout, one invocation, drop → reset → checkin).
//!
//! Acceptance (recorded via `criterion::acceptance`, enforced by the CI
//! `bench-gate`):
//!
//! * **agreement** — the 4-thread batch returns byte-identical agreed
//!   results, in job order, to the sequential batch;
//! * **scaling** — ≥ 2× throughput at 4 workers vs 1. The 2× bar applies
//!   where 4 workers can actually run (≥ 4 cores — the CI runners); on
//!   smaller hosts the bar degrades to what the hardware admits
//!   (≥ 2 cores: 1.2×; 1 core: 0.5×, a pure sanity floor asserting the
//!   pool machinery doesn't collapse throughput), and the printed report
//!   names the degradation.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm_bench::workloads::churn;
use richwasm_repro::engine::{Engine, Job, ModuleSet};

/// Linear alloc/update/free round trips per invocation — big enough that
/// one invocation dwarfs the per-job claim + checkout overhead.
const CHURN: u32 = 300;
/// Invocations per batch.
const JOBS: usize = 48;
const WORKERS: usize = 4;

fn churn_set() -> ModuleSet {
    ModuleSet::new().richwasm("m", churn(CHURN))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_parallel");
    g.sample_size(10);

    let engine = Engine::new();
    let artifact = engine.compile(&churn_set()).unwrap();
    let jobs: Vec<Job> = (0..JOBS)
        .map(|_| artifact.entry_job().expect("churn set has an entry"))
        .collect();
    let pool = artifact.pool(WORKERS).unwrap();

    g.bench_function("checkout_checkin", |b| {
        b.iter(|| {
            let mut inst = pool.checkout();
            inst.invoke_entry().unwrap().i32().unwrap()
        });
    });

    g.bench_function(format!("batch_x{JOBS}_1_thread"), |b| {
        b.iter(|| pool.invoke_batch(1, &jobs));
    });

    g.bench_function(format!("batch_x{JOBS}_{WORKERS}_threads"), |b| {
        b.iter(|| pool.invoke_batch(WORKERS, &jobs));
    });

    g.finish();

    // Acceptance, measured head-to-head outside the sampled series
    // (alternating min-of-batches, as in E8: the minimum is the least
    // scheduler-noisy estimate). Results are captured once per mode and
    // compared for byte-identical agreement.
    let seq_results = pool.invoke_batch(1, &jobs);
    let par_results = pool.invoke_batch(WORKERS, &jobs);

    let agreed = |rs: &[Result<richwasm_repro::Invocation, richwasm_repro::PipelineError>]| {
        rs.iter()
            .map(|r| {
                r.as_ref()
                    .expect("churn invocation succeeds")
                    .results()
                    .to_vec()
            })
            .collect::<Vec<_>>()
    };
    let agreement = agreed(&seq_results) == agreed(&par_results);

    let batches = 5;
    let mut seq_samples = Vec::with_capacity(batches);
    let mut par_samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t0 = Instant::now();
        let r = pool.invoke_batch(1, &jobs);
        seq_samples.push(t0.elapsed());
        assert!(r.iter().all(Result::is_ok));
        let t0 = Instant::now();
        let r = pool.invoke_batch(WORKERS, &jobs);
        par_samples.push(t0.elapsed());
        assert!(r.iter().all(Result::is_ok));
    }
    let seq = *seq_samples.iter().min().unwrap();
    let par = *par_samples.iter().min().unwrap();
    let speedup = seq.as_nanos() as f64 / par.as_nanos().max(1) as f64;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let required = if cores >= WORKERS {
        2.0
    } else if cores >= 2 {
        1.2
    } else {
        0.5
    };

    println!("e9_parallel/throughput ({JOBS} jobs × churn({CHURN}), differential mode):");
    println!("  1 worker thread         {seq:>12.2?}");
    println!("  {WORKERS} worker threads        {par:>12.2?}");
    println!("  speedup                 {speedup:>11.2}x  ({cores} cores available)");
    if cores < WORKERS {
        println!(
            "  note: {cores} < {WORKERS} cores — the 2x bar cannot physically hold here; \
             asserting the {required:.1}x floor for this hardware instead"
        );
    }

    criterion::acceptance(
        "e9_parallel/agreement_4v1",
        if agreement { 1.0 } else { 0.0 },
        1.0,
    );
    criterion::acceptance("e9_parallel/scaling_4v1_threads", speedup, required);
}

criterion_group!(benches, bench);
criterion_main!(benches);
