//! **E2** — Fig. 9: the linear-library / GC'd-client counter, end to end
//! on both backends.
//!
//! Series reported: per-`bump` cost on (a) the RichWasm small-step
//! interpreter and (b) the compiled WebAssembly running on our Wasm
//! substrate. The paper's qualitative claim — that the type machinery
//! (capabilities, qualifiers, existentials) is erased and costs nothing
//! at the Wasm level — shows up as (b) being dominated purely by the
//! allocator and arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm::interp::Runtime;
use richwasm_bench::workloads::{counter_client, counter_library};
use richwasm_lower::lower_modules;
use richwasm_wasm::exec::{Val, WasmLinker};

fn bench(c: &mut Criterion) {
    let gfx = richwasm_l3::compile_module(&counter_library()).unwrap();
    let app = richwasm_ml::compile_module(&counter_client()).unwrap();

    let mut g = c.benchmark_group("e2_counter");
    g.sample_size(20);

    g.bench_function("bump_richwasm_interp", |b| {
        let mut rt = Runtime::new();
        rt.instantiate("gfx", gfx.clone()).unwrap();
        let app_i = rt.instantiate("app", app.clone()).unwrap();
        rt.invoke(app_i, "setup", vec![richwasm::syntax::Value::i32(1)]).unwrap();
        b.iter(|| rt.invoke(app_i, "bump", vec![richwasm::syntax::Value::Unit]).unwrap().steps)
    });

    g.bench_function("bump_lowered_wasm", |b| {
        let lowered =
            lower_modules(&[("gfx".to_string(), gfx.clone()), ("app".to_string(), app.clone())])
                .unwrap();
        let mut linker = WasmLinker::new();
        let mut app_w = 0;
        for (name, wm) in &lowered {
            let i = linker.instantiate(name, wm.clone()).unwrap();
            if name == "app" {
                app_w = i;
            }
        }
        linker.invoke(app_w, "setup", &[Val::I32(1)]).unwrap();
        b.iter(|| linker.invoke(app_w, "bump", &[]).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
