//! **E2** — Fig. 9: the linear-library / GC'd-client counter, end to end
//! on both backends.
//!
//! Series reported: per-`bump` cost on (a) the RichWasm small-step
//! interpreter and (b) the compiled WebAssembly running on our Wasm
//! substrate. The paper's qualitative claim — that the type machinery
//! (capabilities, qualifiers, existentials) is erased and costs nothing
//! at the Wasm level — shows up as (b) being dominated purely by the
//! allocator and arithmetic.
//!
//! Both backends are set up by one `Engine` (the counter artifact is
//! compiled once and cached; each series instantiates its own backend);
//! the timed loop then invokes the extracted interpreter directly so the
//! numbers measure execution, not driver dispatch.

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm::syntax::Value;
use richwasm_bench::workloads::{counter_client, counter_library};
use richwasm_repro::engine::{Engine, EngineConfig, Exec, ModuleSet};
use richwasm_wasm::exec::Val;

fn counter_set() -> ModuleSet {
    ModuleSet::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_counter");
    g.sample_size(20);

    g.bench_function("bump_richwasm_interp", |b| {
        let engine = Engine::with_config(EngineConfig::new().interp_only());
        let mut inst = engine.instantiate(&counter_set()).unwrap();
        let mut rt = inst.richwasm.take().unwrap();
        let app_i = rt.instance_by_name("app").unwrap();
        rt.invoke(app_i, "setup", vec![Value::i32(1)]).unwrap();
        b.iter(|| rt.invoke(app_i, "bump", vec![Value::Unit]).unwrap().steps);
    });

    g.bench_function("bump_lowered_wasm", |b| {
        let engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
        let mut inst = engine.instantiate(&counter_set()).unwrap();
        let mut linker = inst.wasm.take().unwrap();
        let app_w = linker.instance_by_name("app").unwrap();
        linker.invoke(app_w, "setup", &[Val::I32(1)]).unwrap();
        b.iter(|| linker.invoke(app_w, "bump", &[]).unwrap());
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
