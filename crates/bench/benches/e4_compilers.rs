//! **E4** — §5: the ML and L3 compilers.
//!
//! Series reported: full compile times (source → RichWasm) for the
//! paper's example modules and for synthetic ML programs of growing
//! depth, plus the *type-preservation check* (the compiled output put
//! through the RichWasm checker — the paper's workflow runs this on
//! every module).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use richwasm::typecheck::check_module;
use richwasm_bench::workloads::{counter_library, ml_tower, stash_client, stash_module};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_compilers");
    g.sample_size(20);

    let stash = stash_module(false);
    g.bench_function("ml_compile_stash", |b| {
        b.iter(|| richwasm_ml::compile_module(std::hint::black_box(&stash)).unwrap());
    });

    let client = stash_client();
    g.bench_function("l3_compile_client", |b| {
        b.iter(|| richwasm_l3::compile_module(std::hint::black_box(&client)).unwrap());
    });

    let lib = counter_library();
    g.bench_function("l3_compile_counter_lib", |b| {
        b.iter(|| richwasm_l3::compile_module(std::hint::black_box(&lib)).unwrap());
    });

    for depth in [2u32, 4, 6] {
        let m = ml_tower(depth);
        g.bench_with_input(
            BenchmarkId::new("ml_compile_tower_depth", depth),
            &m,
            |b, m| b.iter(|| richwasm_ml::compile_module(std::hint::black_box(m)).unwrap()),
        );
        let rw = richwasm_ml::compile_module(&m).unwrap();
        g.bench_with_input(
            BenchmarkId::new("preservation_check_depth", depth),
            &rw,
            |b, rw| b.iter(|| check_module(std::hint::black_box(rw)).unwrap()),
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
