//! **E12** — open-loop serving through [`EngineServer`]: latency under
//! sustained arrival, correctness under concurrency, shedding under
//! deliberate overload.
//!
//! Unlike E9's closed-loop batches (arrival stops while the system is
//! busy), this bench submits on a clock regardless of completion — the
//! serving-traffic shape — and gates on the *tail*:
//!
//! * **p99 latency** — jobs arrive at ~½ of the measured single-stream
//!   capacity for the machine the bench is running on (self-calibrated,
//!   so the gate is hardware-independent); end-to-end p99 must stay
//!   within a fixed multiple of the measured service time;
//! * **zero result corruption** — every completed job's agreed result
//!   equals the sequential oracle;
//! * **overload shedding** — a burst far beyond a tenant's bounded
//!   queue must shed (≥ 1 `Backpressure`) instead of queueing without
//!   bound, and every *accepted* job still resolves across `drain`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm_bench::workloads::churn;
use richwasm_repro::engine::{Engine, Job, ModuleSet};
use richwasm_repro::server::{EngineServer, ServerConfig, SubmitError, TenantConfig};

/// Alloc/update/free round trips per job — sized so one job's service
/// time dwarfs scheduling overhead without making the bench crawl.
const CHURN: u32 = 300;
/// Paced (open-loop) jobs.
const PACED_JOBS: usize = 100;
/// Burst (overload) jobs, thrown at a depth-[`BURST_DEPTH`] queue.
const BURST_JOBS: usize = 100;
const BURST_DEPTH: usize = 4;
const WORKERS: usize = 2;
/// The p99 gate: end-to-end p99 at ~½ capacity must stay within this
/// multiple of the uncontended service time (queueing at that
/// utilization adds small multiples; 25× is a regression tripwire, not
/// a fine-grained SLO).
const P99_BUDGET: f64 = 25.0;

fn bench(c: &mut Criterion) {
    let engine = Engine::new();
    let artifact = engine
        .compile(&ModuleSet::new().richwasm("m", churn(CHURN)))
        .unwrap();
    let job = || Job::new("m", "main", vec![]);

    // Sequential oracle + service-time calibration from one instance.
    let mut probe = artifact.instantiate().unwrap();
    let oracle = probe.invoke_entry().unwrap().results().to_vec();
    let service = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            probe.invoke_entry().unwrap();
            t0.elapsed()
        })
        .min()
        .unwrap()
        .max(Duration::from_micros(50));
    drop(probe);

    // Sampled series for the human-readable report: one submit→wait
    // round trip through the server machinery.
    let mut g = c.benchmark_group("e12_serving");
    g.sample_size(10);
    {
        let server = EngineServer::start(
            &artifact,
            ServerConfig::new()
                .workers(WORKERS)
                .tenant("bench", TenantConfig::new().queue_depth(64)),
        )
        .unwrap();
        g.bench_function("submit_wait_roundtrip", |b| {
            b.iter(|| server.submit("bench", job()).unwrap().wait());
        });
        server.drain();
    }
    g.finish();

    // ── Open-loop phase: paced arrival at ~½ single-stream capacity ──
    // (a single stream completes one job per `service`; arriving every
    // 2×`service` is half that, leaving headroom on any core count).
    let interarrival = (2 * service).max(Duration::from_millis(1));
    let server = EngineServer::start(
        &artifact,
        ServerConfig::new()
            .workers(WORKERS)
            .tenant("open", TenantConfig::new().queue_depth(PACED_JOBS))
            .tenant("burst", TenantConfig::new().queue_depth(BURST_DEPTH)),
    )
    .unwrap();

    let open_start = Instant::now();
    let mut tickets = Vec::with_capacity(PACED_JOBS);
    for i in 0..PACED_JOBS {
        let due = open_start + interarrival * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        // The queue is sized for the whole run, so nothing sheds here.
        tickets.push(server.submit("open", job()).expect("paced job admitted"));
    }
    let outcomes: Vec<_> = tickets.iter().map(|t| t.wait()).collect();

    let corrupted = outcomes
        .iter()
        .filter(|o| {
            o.result
                .as_ref()
                .map(|inv| inv.results() != oracle)
                .unwrap_or(true)
        })
        .count();
    let mut totals: Vec<Duration> = outcomes.iter().map(|o| o.timing.total()).collect();
    totals.sort_unstable();
    let p50 = totals[totals.len() / 2];
    let p99 = totals[(totals.len() * 99).div_ceil(100) - 1];
    let threshold = service.mul_f64(P99_BUDGET);

    // ── Overload phase: a burst far beyond the depth-4 queue ──
    let mut burst_accepted = Vec::new();
    let mut burst_shed = 0usize;
    for _ in 0..BURST_JOBS {
        match server.submit("burst", job()) {
            Ok(t) => burst_accepted.push(t),
            Err(SubmitError::Backpressure) => burst_shed += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    server.drain();
    let dropped = burst_accepted.iter().filter(|t| !t.is_done()).count()
        + tickets.iter().filter(|t| !t.is_done()).count();

    let stats = server.stats();
    println!(
        "e12_serving (open loop: {PACED_JOBS} jobs, every {interarrival:.2?}, {WORKERS} workers):"
    );
    println!("  service time (uncontended) {service:>12.2?}");
    println!("  end-to-end p50             {p50:>12.2?}");
    println!("  end-to-end p99             {p99:>12.2?}  (budget {threshold:.2?})");
    println!(
        "  burst: {}/{BURST_JOBS} accepted, {burst_shed} shed (queue depth {BURST_DEPTH})",
        burst_accepted.len()
    );
    println!("  drained: {dropped} accepted tickets dropped (must be 0)");
    println!("  server: {stats}");
    println!("  pool:   {}", server.pool_stats());

    // p99 gate, expressed as budget/actual so >= 1.0 passes.
    criterion::acceptance(
        "e12_serving/p99_within_budget",
        threshold.as_nanos() as f64 / p99.as_nanos().max(1) as f64,
        1.0,
    );
    // Zero result corruption: every completed paced job == oracle.
    criterion::acceptance(
        "e12_serving/oracle_agreement",
        if corrupted == 0 { 1.0 } else { 0.0 },
        1.0,
    );
    // Deliberate overload must shed at least one job...
    criterion::acceptance("e12_serving/overload_shed", burst_shed as f64, 1.0);
    // ...while drain drops none of the accepted ones.
    criterion::acceptance(
        "e12_serving/drain_zero_dropped",
        if dropped == 0 { 1.0 } else { 0.0 },
        1.0,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
