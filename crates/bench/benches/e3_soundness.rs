//! **E3** — type-checking scalability (the practical face of §4's
//! metatheory): checker throughput as module size grows, and the
//! per-step overhead of the faithful small-step interpreter.
//!
//! Series reported: `check_module` wall time for arithmetic-chain modules
//! of 10/50/100 functions (expected shape: linear in module size), and
//! reduction steps/second on the linear-churn workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use richwasm::interp::Runtime;
use richwasm::typecheck::check_module;
use richwasm_bench::workloads::{arith_chain, churn};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_soundness");
    g.sample_size(15);

    for n in [10usize, 50, 100] {
        let m = arith_chain(n);
        g.bench_with_input(BenchmarkId::new("check_module_funcs", n), &m, |b, m| {
            b.iter(|| check_module(std::hint::black_box(m)).unwrap());
        });
    }

    for n in [10u32, 100] {
        let m = churn(n);
        g.bench_with_input(BenchmarkId::new("interp_churn_cells", n), &m, |b, m| {
            b.iter(|| {
                let mut rt = Runtime::new();
                let i = rt.instantiate("m", m.clone()).unwrap();
                rt.invoke(i, "main", vec![]).unwrap().steps
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
