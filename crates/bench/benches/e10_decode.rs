//! **E10** — the economics of consuming *precompiled* modules: strict
//! binary decode (+ re-validation) versus the full static pipeline, on
//! the E1 interop workload's `.wasm` bytes.
//!
//! This is the persistent-cache path's cost model: a disk hit pays
//! decode + validate of the stored bytes; a cold compile pays frontend +
//! substructural typecheck + whole-program lowering + validate + encode.
//! The gap between the two is what `EngineConfig::cache_dir` (and
//! `Engine::load_wasm` for externally produced modules) buys.
//!
//! Series reported:
//!
//! * `decode_only` — `decode_module` over every scenario binary;
//! * `decode_validate` — the full untrusted-bytes admission path;
//! * `artifact_deserialize` — a whole serialized artifact loaded back
//!   (framing + checksum + decode + validate per module);
//! * `full_pipeline_cold` — the same modules from source on a fresh
//!   engine.
//!
//! The per-byte throughput of the admission path is printed, and the
//! acceptance gate requires decode+validate to beat the full pipeline by
//! ≥ 3× (in practice it is far more — the substructural check dominates).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm_bench::workloads::{stash_client, stash_module};
use richwasm_repro::engine::{Artifact, Engine, EngineConfig, Exec, ModuleSet};
use richwasm_wasm::decode::decode_module;
use richwasm_wasm::validate_module;

fn stash_set() -> ModuleSet {
    ModuleSet::new()
        .ml("ml", stash_module(false))
        .l3("l3", stash_client())
        .entry("l3")
}

fn wasm_config() -> EngineConfig {
    EngineConfig::new().exec(Exec::Wasm)
}

fn median_of<T>(samples: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        criterion::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    let engine = Engine::with_config(wasm_config());
    let artifact = engine.compile(&stash_set()).unwrap();
    let binaries: Vec<(String, Vec<u8>)> = artifact.wasm_binaries().to_vec();
    let total_bytes: usize = binaries.iter().map(|(_, b)| b.len()).sum();
    let serialized = artifact
        .serialize()
        .expect("Exec::Wasm artifact serializes");
    assert!(total_bytes > 0);

    let mut g = c.benchmark_group("e10_decode");
    g.sample_size(20);

    g.bench_function("decode_only", |b| {
        b.iter(|| {
            for (_, bytes) in &binaries {
                decode_module(bytes).unwrap();
            }
        });
    });

    g.bench_function("decode_validate", |b| {
        b.iter(|| {
            for (_, bytes) in &binaries {
                let m = decode_module(bytes).unwrap();
                validate_module(&m).unwrap();
            }
        });
    });

    g.bench_function("artifact_deserialize", |b| {
        b.iter(|| Artifact::deserialize(&serialized).unwrap());
    });

    g.bench_function("full_pipeline_cold", |b| {
        b.iter(|| {
            Engine::with_config(wasm_config())
                .compile(&stash_set())
                .unwrap()
        });
    });

    g.finish();

    // The acceptance numbers, measured directly (median-of-9, outside the
    // sampled series, so the printed figures are the gated ones).
    let decode_validate = median_of(9, || {
        for (_, bytes) in &binaries {
            let m = decode_module(bytes).unwrap();
            validate_module(&m).unwrap();
        }
    });
    let cold = median_of(9, || {
        Engine::with_config(wasm_config())
            .compile(&stash_set())
            .unwrap()
    });

    let mb_per_s = total_bytes as f64 / 1e6 / decode_validate.as_secs_f64().max(1e-12);
    println!(
        "e10_decode: {} modules, {total_bytes} bytes (E1 interop)",
        binaries.len()
    );
    println!("  decode+validate         {decode_validate:>12.2?}  ({mb_per_s:.1} MB/s)");
    println!("  full pipeline (cold)    {cold:>12.2?}");

    criterion::acceptance(
        "e10_decode/decode_validate_vs_full_pipeline",
        cold.as_nanos() as f64 / decode_validate.as_nanos().max(1) as f64,
        3.0,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
