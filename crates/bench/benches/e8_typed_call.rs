//! **E8** — the typed call boundary: `TypedFunc::call` vs string-keyed
//! `Instance::invoke`, plus host-function call overhead.
//!
//! Series reported:
//!
//! * `string_invoke` / `typed_call` — per-call cost of the two paths on a
//!   long-lived **differential** instance (both interpreters run every
//!   call, so the body execution dominates);
//! * `string_invoke_wasm_only` / `typed_call_wasm_only` — the same on a
//!   Wasm-only instance, where dispatch overhead *is* the cost: the
//!   string path pays two name lookups, per-argument flattening, and
//!   untyped result plumbing on every call, the typed handle resolved and
//!   checked everything once at creation;
//! * `get_typed_func` — the one-time handle creation (resolution +
//!   signature validation against the checked types);
//! * `host_call_roundtrip` — a guest→host→guest round trip under
//!   differential execution with record/replay.
//!
//! After the series, the harness measures both paths head-to-head on the
//! Wasm-only instance and asserts the acceptance criterion: the typed
//! path is **≥ 1.5×** faster per call than string-keyed `invoke`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm::syntax::*;
use richwasm_repro::engine::{Engine, EngineConfig, Exec, Instance, ModuleSet};
use richwasm_repro::{HostSig, HostVal, HostValType};

/// `add : [i32, i32] -> [i32]` and `add4 : [i32; 4] -> [i32]` — small on
/// purpose: the boundary, not the body, is what E8 measures. `add4` is
/// the head-to-head workload: every extra parameter costs the untyped
/// path a per-argument flattening allocation the typed path never pays.
fn arith_module() -> Module {
    let i32t = || Type::num(NumType::I32);
    let addi = || Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add));
    Module {
        funcs: vec![
            Func::Defined {
                exports: vec!["add".into()],
                ty: FunType::mono(vec![i32t(), i32t()], vec![i32t()]),
                locals: vec![],
                body: vec![
                    Instr::GetLocal(0, Qual::Unr),
                    Instr::GetLocal(1, Qual::Unr),
                    addi(),
                ],
            },
            Func::Defined {
                exports: vec!["add4".into()],
                ty: FunType::mono(vec![i32t(), i32t(), i32t(), i32t()], vec![i32t()]),
                locals: vec![],
                body: vec![
                    Instr::GetLocal(0, Qual::Unr),
                    Instr::GetLocal(1, Qual::Unr),
                    addi(),
                    Instr::GetLocal(2, Qual::Unr),
                    addi(),
                    Instr::GetLocal(3, Qual::Unr),
                    addi(),
                ],
            },
        ],
        ..Module::default()
    }
}

/// A guest whose `main` calls `host.tick(5)` and adds 1.
fn host_client() -> Module {
    Module {
        funcs: vec![
            Func::Imported {
                exports: vec![],
                module: "host".into(),
                name: "tick".into(),
                ty: FunType::mono(vec![Type::num(NumType::I32)], vec![Type::num(NumType::I32)]),
            },
            Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![],
                body: vec![
                    Instr::i32(5),
                    Instr::Call(0, vec![]),
                    Instr::i32(1),
                    Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add)),
                ],
            },
        ],
        ..Module::default()
    }
}

fn string_calls(inst: &mut Instance, n: u32) -> i32 {
    let mut acc = 0i32;
    for i in 0..n {
        acc = inst
            .invoke("m", "add", vec![Value::i32(acc), Value::i32(i as i32)])
            .unwrap()
            .returned::<i32>()
            .unwrap();
    }
    acc
}

fn typed_calls(
    inst: &mut Instance,
    add: &richwasm_repro::TypedFunc<(i32, i32), i32>,
    n: u32,
) -> i32 {
    let mut acc = 0i32;
    for i in 0..n {
        acc = add.call(inst, (acc, i as i32)).unwrap();
    }
    acc
}

fn string_calls4(inst: &mut Instance, n: u32) -> i32 {
    let mut acc = 0i32;
    for i in 0..n {
        let i = i as i32;
        acc = inst
            .invoke(
                "m",
                "add4",
                vec![Value::i32(acc), Value::i32(i), Value::i32(1), Value::i32(2)],
            )
            .unwrap()
            .returned::<i32>()
            .unwrap();
    }
    acc
}

fn typed_calls4(
    inst: &mut Instance,
    add4: &richwasm_repro::TypedFunc<(i32, i32, i32, i32), i32>,
    n: u32,
) -> i32 {
    let mut acc = 0i32;
    for i in 0..n {
        acc = add4.call(inst, (acc, i as i32, 1, 2)).unwrap();
    }
    acc
}

const N: u32 = 1000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_typed_call");
    g.sample_size(15);

    let set = ModuleSet::new().richwasm("m", arith_module());
    let expected: i32 = (0..N as i32).fold(0, |acc, i| acc.wrapping_add(i));

    // Differential instance: both interpreters run per call.
    let engine = Engine::new();
    let mut diff_inst = engine.instantiate(&set).unwrap();
    let add = diff_inst
        .get_typed_func::<(i32, i32), i32>("m", "add")
        .unwrap();
    g.bench_function("string_invoke", |b| {
        b.iter(|| assert_eq!(string_calls(&mut diff_inst, N), expected));
    });
    g.bench_function("typed_call", |b| {
        b.iter(|| assert_eq!(typed_calls(&mut diff_inst, &add, N), expected));
    });

    // Wasm-only instance: dispatch overhead is the measured quantity.
    let wasm_engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
    let mut wasm_inst = wasm_engine.instantiate(&set).unwrap();
    let wadd = wasm_inst
        .get_typed_func::<(i32, i32), i32>("m", "add")
        .unwrap();
    g.bench_function("string_invoke_wasm_only", |b| {
        b.iter(|| assert_eq!(string_calls(&mut wasm_inst, N), expected));
    });
    g.bench_function("typed_call_wasm_only", |b| {
        b.iter(|| assert_eq!(typed_calls(&mut wasm_inst, &wadd, N), expected));
    });

    // One-time handle creation (resolution + signature validation).
    g.bench_function("get_typed_func", |b| {
        b.iter(|| {
            diff_inst
                .get_typed_func::<(i32, i32), i32>("m", "add")
                .unwrap()
        });
    });

    // Guest → host → guest round trip under differential record/replay.
    let host_set = ModuleSet::new().richwasm("m", host_client()).host_fn(
        "host",
        "tick",
        HostSig::new([HostValType::I32], [HostValType::I32]),
        |args| {
            let HostVal::I32(x) = args[0] else {
                return Err("expected i32".into());
            };
            Ok(vec![HostVal::I32(x * 2)])
        },
    );
    let mut host_inst = engine.instantiate(&host_set).unwrap();
    let main = host_inst.get_typed_func::<(), i32>("m", "main").unwrap();
    g.bench_function("host_call_roundtrip", |b| {
        b.iter(|| {
            for _ in 0..N {
                assert_eq!(main.call(&mut host_inst, ()).unwrap(), 11);
            }
        });
    });

    g.finish();

    // Acceptance: TypedFunc::call beats string-keyed invoke per call,
    // ≥ 1.5×, measured head-to-head on the Wasm-only instance with the
    // 4-argument workload (min-of-several batches — the best case is
    // the least noisy estimate of pure dispatch cost; the paths differ
    // only in dispatch — two name lookups, per-argument flattening
    // allocations, and untyped result plumbing vs a once-validated
    // handle with stack-buffer conversion).
    let wadd4 = wasm_inst
        .get_typed_func::<(i32, i32, i32, i32), i32>("m", "add4")
        .unwrap();
    let expected4: i32 = (0..N as i32).fold(0, |acc, i| acc.wrapping_add(i + 3));
    let batches = 9;
    let mut string_samples = Vec::with_capacity(batches);
    let mut typed_samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t0 = Instant::now();
        assert_eq!(string_calls4(&mut wasm_inst, N), expected4);
        string_samples.push(t0.elapsed());
        let t0 = Instant::now();
        assert_eq!(typed_calls4(&mut wasm_inst, &wadd4, N), expected4);
        typed_samples.push(t0.elapsed());
    }
    let string_med = *string_samples.iter().min().unwrap() / N;
    let typed_med = *typed_samples.iter().min().unwrap() / N;
    let ratio = string_med.as_nanos() as f64 / typed_med.as_nanos().max(1) as f64;
    println!(
        "e8_typed_call/per-call dispatch (add4, Wasm backend, {N} calls × {batches} batches):"
    );
    println!("  string-keyed invoke     {string_med:>12.2?}");
    println!("  TypedFunc::call         {typed_med:>12.2?}");
    println!("  speedup                 {ratio:>11.2}x");
    // Acceptance: recorded into the machine-readable report, then
    // enforced (a shortfall panics and fails the CI bench-gate).
    criterion::acceptance("e8_typed_call/typed_vs_string_invoke", ratio, 1.5);
}

criterion_group!(benches, bench);
criterion_main!(benches);
