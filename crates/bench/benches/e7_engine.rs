//! **E7** — the compile-once / run-many economics of the `Engine` API on
//! the E1 interop workload (Fig. 3 stash scenario).
//!
//! Series reported:
//!
//! * `cold_compile` — a full static pipeline on a fresh engine (frontend
//!   + typecheck in parallel, whole-program lower, validate, encode);
//! * `warm_cache_hit` — the same compile on an engine that has seen the
//!   module set before: a content-hash lookup returning the cached
//!   artifact, with **every static stage skipped**;
//! * `instantiate_from_artifact` — minting a fresh live instance from
//!   the cached artifact (typed linking + store setup, no static work);
//! * `invoke_x1000` — 1000 repeated `Instance::invoke` calls through one
//!   long-lived differential instance.
//!
//! After the series, the harness prints the amortised per-call cost of
//! the compile-once/run-many path against the naive recompile-per-call
//! baseline, and asserts the two acceptance invariants: a warm hit is
//! ≥ 10× faster than a cold compile, and repeated invocation never
//! re-runs a static stage (checked via `Timings`).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm_bench::workloads::{stash_client, stash_module};
use richwasm_repro::engine::{Engine, ModuleSet};

fn stash_set() -> ModuleSet {
    ModuleSet::new()
        .ml("ml", stash_module(false))
        .l3("l3", stash_client())
        .entry("l3")
}

const INVOKES: u32 = 1000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_engine");
    g.sample_size(15);

    g.bench_function("cold_compile", |b| {
        b.iter(|| {
            let engine = Engine::new();
            engine.compile(&stash_set()).unwrap()
        });
    });

    let engine = Engine::new();
    let artifact = engine.compile(&stash_set()).unwrap();
    g.bench_function("warm_cache_hit", |b| {
        b.iter(|| engine.compile(&stash_set()).unwrap());
    });
    assert!(
        engine.cache_stats().hits > 0 && engine.cache_stats().misses == 1,
        "warm series must be all hits: {:?}",
        engine.cache_stats()
    );

    g.bench_function("instantiate_from_artifact", |b| {
        b.iter(|| artifact.instantiate().unwrap());
    });

    g.bench_function("invoke_x1000", |b| {
        let mut inst = artifact.instantiate().unwrap();
        b.iter(|| {
            let mut last = None;
            for _ in 0..INVOKES {
                last = inst.invoke_entry().unwrap().i32();
            }
            assert_eq!(last, Some(42));
            last
        });
        // The acceptance invariant: however many invocations ran, no
        // static stage ever re-ran on this instance.
        assert!(
            inst.timings().no_static_stages(),
            "an invocation re-ran a static stage: {}",
            inst.timings()
        );
    });

    g.finish();

    // Amortisation report + the 10× acceptance check, measured directly
    // (one shot each, outside the sampled series, so the numbers printed
    // here are the ones the assertion uses).
    let t0 = Instant::now();
    let cold_engine = Engine::new();
    let cold_artifact = cold_engine.compile(&stash_set()).unwrap();
    let cold = t0.elapsed();
    assert!(!cold_artifact.wasm_binaries().is_empty());

    // Median-of-several for the warm hit: it is nanosecond-scale, so a
    // single sample is at the mercy of the scheduler.
    let mut warm_samples = Vec::new();
    for _ in 0..9 {
        let t0 = Instant::now();
        let hit = cold_engine.compile(&stash_set()).unwrap();
        warm_samples.push(t0.elapsed());
        assert!(hit.same_as(&cold_artifact));
    }
    warm_samples.sort();
    let warm = warm_samples[warm_samples.len() / 2];

    let mut inst = cold_artifact.instantiate().unwrap();
    let t0 = Instant::now();
    for _ in 0..INVOKES {
        inst.invoke_entry().unwrap();
    }
    let run_n = t0.elapsed();

    let per_call_amortised = (cold + run_n) / INVOKES;
    let per_call_naive = cold + run_n / INVOKES;
    println!("e7_engine/amortisation over {INVOKES} calls (E1 interop):");
    println!("  cold compile            {cold:>12.2?}");
    println!("  warm cache hit          {warm:>12.2?}");
    println!("  {INVOKES} invocations      {run_n:>12.2?}");
    println!("  per call, compile-once  {per_call_amortised:>12.2?}");
    println!("  per call, naive rebuild {per_call_naive:>12.2?}");
    // Acceptance: recorded into the machine-readable report, then
    // enforced (a shortfall panics and fails the CI bench-gate).
    criterion::acceptance(
        "e7_engine/warm_vs_cold_compile",
        cold.as_nanos() as f64 / warm.as_nanos().max(1) as f64,
        10.0,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
