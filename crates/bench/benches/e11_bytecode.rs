//! **E11** — the flat-bytecode execution tier against the tree-walking
//! Wasm interpreter, on the E2 counter workload churned hot.
//!
//! The same lowered modules run on both engines — the bytecode VM
//! (`WasmTier::Bytecode`, the default) executes pre-resolved linear
//! `Vec<Op>` code over unboxed `u64` slots, the tree-walker
//! (`WasmTier::Tree`) recursively evaluates the structured `WInstr`
//! tree — so the gap is pure dispatch/representation, not workload.
//! Both meter fuel identically (one step per executed instruction),
//! so the speedup is what compilation buys *after* paying the same
//! metering tax.
//!
//! Series reported:
//!
//! * `counter_churn_bytecode` / `counter_churn_tree` — a churn of 64
//!   `bump` invocations on the Fig. 9 counter (E2), per engine;
//! * `loop_churn_bytecode` / `loop_churn_tree` — one invocation of the
//!   allocator-churn loop (E2's hot-loop cousin from the fuel suite),
//!   2 000 iterations of linear cell round trips per call.
//!
//! The acceptance gate requires the bytecode tier to clear **≥ 5×**
//! invoke throughput over the tree-walker on the loop-churn workload
//! (where execution, not export lookup, dominates); the counter-churn
//! speedup is printed alongside as the end-to-end figure.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use richwasm_bench::workloads::{churn, counter_client, counter_library};
use richwasm_repro::engine::{Engine, EngineConfig, Exec, ModuleSet, WasmTier};
use richwasm_wasm::exec::{Val, WasmLinker};

fn counter_set() -> ModuleSet {
    ModuleSet::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
}

fn churn_set(n: u32) -> ModuleSet {
    ModuleSet::new().richwasm("m", churn(n))
}

/// Extracts a bare linker running `set` under the given tier, with the
/// named instance resolved.
fn linker_for(set: &ModuleSet, tier: WasmTier, module: &str) -> (WasmLinker, usize) {
    let engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm).wasm_tier(tier));
    let mut inst = engine.instantiate(set).unwrap();
    let linker = inst.wasm.take().unwrap();
    let idx = linker.instance_by_name(module).unwrap();
    (linker, idx)
}

fn median_of<T>(samples: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        criterion::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

const BUMPS: usize = 64;
const CHURN_ITERS: u32 = 2_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_bytecode");
    g.sample_size(20);

    for (tier, label) in [(WasmTier::Bytecode, "bytecode"), (WasmTier::Tree, "tree")] {
        g.bench_function(format!("counter_churn_{label}"), |b| {
            let (mut linker, app) = linker_for(&counter_set(), tier, "app");
            linker.invoke(app, "setup", &[Val::I32(1)]).unwrap();
            b.iter(|| {
                for _ in 0..BUMPS {
                    linker.invoke(app, "bump", &[]).unwrap();
                }
            });
        });
        g.bench_function(format!("loop_churn_{label}"), |b| {
            let (mut linker, m) = linker_for(&churn_set(CHURN_ITERS), tier, "m");
            b.iter(|| linker.invoke(m, "main", &[]).unwrap());
        });
    }

    g.finish();

    // The acceptance numbers, measured directly (median-of-9, outside
    // the sampled series, so the printed figures are the gated ones).
    let (mut bc, bc_app) = linker_for(&counter_set(), WasmTier::Bytecode, "app");
    bc.invoke(bc_app, "setup", &[Val::I32(1)]).unwrap();
    let (mut tw, tw_app) = linker_for(&counter_set(), WasmTier::Tree, "app");
    tw.invoke(tw_app, "setup", &[Val::I32(1)]).unwrap();
    let counter_bc = median_of(9, || {
        for _ in 0..BUMPS {
            bc.invoke(bc_app, "bump", &[]).unwrap();
        }
    });
    let counter_tw = median_of(9, || {
        for _ in 0..BUMPS {
            tw.invoke(tw_app, "bump", &[]).unwrap();
        }
    });

    let (mut bc, bc_m) = linker_for(&churn_set(CHURN_ITERS), WasmTier::Bytecode, "m");
    let (mut tw, tw_m) = linker_for(&churn_set(CHURN_ITERS), WasmTier::Tree, "m");
    let loop_bc = median_of(9, || bc.invoke(bc_m, "main", &[]).unwrap());
    let loop_tw = median_of(9, || tw.invoke(tw_m, "main", &[]).unwrap());

    let counter_speedup = counter_tw.as_nanos() as f64 / counter_bc.as_nanos().max(1) as f64;
    let loop_speedup = loop_tw.as_nanos() as f64 / loop_bc.as_nanos().max(1) as f64;
    println!("e11_bytecode: {BUMPS} bumps (E2 counter) / {CHURN_ITERS}-iteration churn loop");
    println!("  counter churn  bytecode {counter_bc:>10.2?}  tree {counter_tw:>10.2?}  ({counter_speedup:.1}x)");
    println!(
        "  loop churn     bytecode {loop_bc:>10.2?}  tree {loop_tw:>10.2?}  ({loop_speedup:.1}x)"
    );

    criterion::acceptance(
        "e11_bytecode/loop_churn_speedup_vs_tree_walker",
        loop_speedup,
        5.0,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
