//! The type translation `T⟦·⟧ : ML → RichWasm` and the annotation phase
//! (paper §5).
//!
//! Representation choices (the "annotation" pass baked into the
//! translation — all RichWasm type variables receive size and qualifier
//! bounds here):
//!
//! * every ML value representation fits **64 bits**: ints are `i32`,
//!   aggregates (tuples, sums, closures, refs) are boxed behind a
//!   pointer-sized reference, so all polymorphic positions can be bounded
//!   by `α ≲ 64`;
//! * closures are `∃ρ. ref rw ρ (∃ unr ⪯ α ≲ 64. (α, coderef [arg, α] →
//!   [res]))` — typed closure conversion's existential environment;
//! * `ref_to_lin τ` cells are unrestricted structs holding an *optional
//!   linear* variant reference, swapped in and out.

use richwasm::syntax::instr::Block as RwBlock;
use richwasm::syntax::{
    ArrowType, FunType, HeapType, Instr, Loc, MemPriv, NumType, Pretype, Qual, Size, Type,
};

use crate::ast::MlTy;

/// The universal slot size (bits) of an ML value representation.
pub const ML_SLOT: u64 = 64;

/// Wraps a heap type into `(∃ρ. (ref rw ρ ψ)^q)^q` — the standard boxed
/// representation.
pub fn boxed(psi: HeapType, q: Qual) -> Type {
    Pretype::ExistsLoc(Box::new(
        Pretype::Ref(MemPriv::ReadWrite, Loc::Var(0), psi).with_qual(q),
    ))
    .with_qual(q)
}

/// The option variant stored inside a `ref_to_lin` cell: an *owned linear*
/// heap cell that is either empty (case 0) or holds the linear value
/// (case 1).
pub fn opt_heap_type(content: &Type) -> HeapType {
    HeapType::Variant(vec![Type::unit(), content.clone()])
}

/// The type of the optional-value package inside a `ref_to_lin` cell.
pub fn opt_type(content: &Type) -> Type {
    boxed(opt_heap_type(content), Qual::Lin)
}

/// Translates an ML type to RichWasm.
///
/// `extra` counts the RichWasm type binders the translation itself has
/// introduced above the current position (closure environments add one);
/// ML type variables shift past them.
pub fn translate_ty_at(t: &MlTy, extra: u32) -> Type {
    match t {
        MlTy::Unit => Type::unit(),
        MlTy::Int => Type::num(NumType::I32),
        MlTy::Prod(ts) => {
            let fields = ts
                .iter()
                .map(|t| (translate_ty_at(t, extra), Size::Const(ML_SLOT)))
                .collect();
            boxed(HeapType::Struct(fields), Qual::Unr)
        }
        MlTy::Sum(ts) => {
            let cases = ts.iter().map(|t| translate_ty_at(t, extra)).collect();
            boxed(HeapType::Variant(cases), Qual::Unr)
        }
        MlTy::Arrow(a, b) => {
            // Typed closure conversion's interface type: the environment
            // type is hidden behind an existential; the code expects
            // [arg, env] and is reached through the table.
            let code = code_fun_type(
                translate_ty_at(a, extra + 1),
                Pretype::Var(0).unr(),
                translate_ty_at(b, extra + 1),
            );
            let pair =
                Pretype::Prod(vec![Pretype::Var(0).unr(), Pretype::CodeRef(code).unr()]).unr();
            boxed(
                HeapType::Exists(Qual::Unr, Size::Const(ML_SLOT), Box::new(pair)),
                Qual::Unr,
            )
        }
        MlTy::Ref(t) => boxed(
            HeapType::Struct(vec![(translate_ty_at(t, extra), Size::Const(ML_SLOT))]),
            Qual::Unr,
        ),
        MlTy::RefToLin(t) => {
            let content = translate_ty_at(t, extra);
            boxed(
                HeapType::Struct(vec![(opt_type(&content), Size::Const(ML_SLOT))]),
                Qual::Unr,
            )
        }
        MlTy::Rec(body) => {
            // The RichWasm rec binder aligns with the ML one, so `extra`
            // is unchanged under it.
            Pretype::Rec(Qual::Unr, Box::new(translate_ty_at(body, extra))).unr()
        }
        MlTy::Var(i) => Pretype::Var(i + extra).unr(),
        MlTy::Foreign(t) => t.clone(),
    }
}

/// Translates a closed-context ML type.
pub fn translate_ty(t: &MlTy) -> Type {
    translate_ty_at(t, 0)
}

/// The RichWasm type of a closure's code function: `[arg, env] → [res]`.
pub fn code_fun_type(arg: Type, env: Type, res: Type) -> FunType {
    FunType::mono(vec![arg, env], vec![res])
}

/// Convenience: a RichWasm block annotation with the given arrow and
/// local effects.
pub fn block(params: Vec<Type>, results: Vec<Type>, effects: Vec<(u32, Type)>) -> RwBlock {
    RwBlock::new(
        ArrowType::new(params, results),
        effects
            .into_iter()
            .map(|(i, t)| richwasm::syntax::instr::LocalEffect::new(i, t))
            .collect(),
    )
}

/// Emits `mem.unpack` with the given annotation around `body`.
pub fn unpack(
    params: Vec<Type>,
    results: Vec<Type>,
    effects: Vec<(u32, Type)>,
    body: Vec<Instr>,
) -> Instr {
    Instr::MemUnpack(block(params, results, effects), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use richwasm::env::KindCtx;
    use richwasm::wf::wf_type;

    #[test]
    fn base_translations_are_wellformed() {
        let mut ctx = KindCtx::new();
        for t in [
            MlTy::Unit,
            MlTy::Int,
            MlTy::Prod(vec![MlTy::Int, MlTy::Unit]),
            MlTy::Sum(vec![MlTy::Unit, MlTy::Int]),
            MlTy::Arrow(Box::new(MlTy::Int), Box::new(MlTy::Int)),
            MlTy::Ref(Box::new(MlTy::Int)),
            MlTy::Rec(Box::new(MlTy::Sum(vec![MlTy::Unit, MlTy::Var(0)]))),
        ] {
            let rt = translate_ty(&t);
            wf_type(&mut ctx, &rt).unwrap_or_else(|e| panic!("{t:?}: {e}"));
            assert_eq!(rt.qual, Qual::Unr, "{t:?} should be unrestricted");
        }
    }

    #[test]
    fn ref_to_lin_translation_is_wellformed() {
        let mut ctx = KindCtx::new();
        // A linear foreign payload: a linear RichWasm struct ref.
        let foreign = boxed(
            HeapType::Struct(vec![(Type::num(NumType::I32), Size::Const(32))]),
            Qual::Lin,
        );
        let t = MlTy::RefToLin(Box::new(MlTy::Foreign(foreign)));
        let rt = translate_ty(&t);
        wf_type(&mut ctx, &rt).unwrap();
        assert_eq!(rt.qual, Qual::Unr, "the cell itself is unrestricted");
    }

    #[test]
    fn all_representations_fit_the_slot() {
        use richwasm::sizing::size_of_type;
        use richwasm::solver::size_leq;
        let ctx = KindCtx::new();
        for t in [
            MlTy::Int,
            MlTy::Prod(vec![MlTy::Int; 5]),
            MlTy::Arrow(Box::new(MlTy::Int), Box::new(MlTy::Int)),
            MlTy::Ref(Box::new(MlTy::Prod(vec![MlTy::Int; 3]))),
        ] {
            let sz = size_of_type(&ctx, &translate_ty(&t)).unwrap();
            assert!(
                size_leq(&ctx, &sz, &Size::Const(ML_SLOT)),
                "{t:?} exceeds the universal slot"
            );
        }
    }

    #[test]
    fn tyvars_shift_under_closure_environments() {
        // Var(0) under an Arrow must become Var(1) (the ∃env binder is in
        // between).
        let t = MlTy::Arrow(Box::new(MlTy::Var(0)), Box::new(MlTy::Int));
        let rt = translate_ty(&t);
        let s = rt.to_string();
        assert!(s.contains("α1"), "{s}");
    }
}
