//! # richwasm-ml
//!
//! A compiler from **core ML** to RichWasm (paper §5).
//!
//! The source language has units, ints, references, variants (sums),
//! products, recursive types, and top-level functions with parametric
//! polymorphism, plus the multi-module constructs the paper adds
//! (imports, exports, module-level state). Compilation proceeds by typed
//! closure conversion (closures become existential packages hiding their
//! environment type), an annotation phase (size and qualifier bounds on
//! all RichWasm type variables — every ML value representation fits 64
//! bits because aggregates are boxed), and code generation.
//!
//! ## Linking types (paper §2.2, §5)
//!
//! Following the linking-types discipline, ML is extended — *without
//! changing its own type system* — with:
//!
//! * [`MlTy::Foreign`]: a type expressible only in RichWasm (e.g. L3's
//!   linear reference `(Ref Int)lin`), passed through opaquely;
//! * `ref_to_lin` ([`MlExpr::NewRefToLin`]): a reference cell that can
//!   hold a linear foreign value. Reads and writes are compiled to
//!   *swaps* against an option variant, so reading or overwriting twice
//!   **fails at runtime** rather than duplicating/dropping a linear value
//!   — exactly the paper's semantics.
//!
//! Crucially, the ML compiler "explicitly does not check whether types
//! annotated as linear are used linearly, as we can rely on RichWasm to
//! demonstrate safety" (§5): a program like Fig. 1's `stash` compiles
//! fine here and is *rejected by the RichWasm type checker*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod compile;
pub mod types;

pub use ast::{MlBinop, MlExpr, MlFun, MlGlobal, MlImport, MlModule, MlTy};
pub use compile::{compile_module, MlError};
pub use types::translate_ty;
