//! Ergonomic program builders for core ML.
//!
//! Hand-writing [`MlExpr`] trees is noisy (`Box::new` at every node),
//! which in practice limited the test corpus to a handful of scenarios.
//! These combinators make programmatic construction terse enough for
//! generators — `richwasm-fuzz` synthesises whole modules through this
//! module — while staying plain constructors: no hidden typing logic, the
//! ML compiler and the RichWasm checker remain the only arbiters.

use crate::ast::{MlBinop, MlExpr, MlFun, MlGlobal, MlImport, MlModule, MlTy};

/// `n` as a literal.
pub fn int(n: i32) -> MlExpr {
    MlExpr::Int(n)
}

/// A variable reference.
pub fn var(name: impl Into<String>) -> MlExpr {
    MlExpr::Var(name.into())
}

/// `let name = bound in body`.
pub fn let_(name: impl Into<String>, bound: MlExpr, body: MlExpr) -> MlExpr {
    MlExpr::Let(name.into(), Box::new(bound), Box::new(body))
}

/// `a; b`.
pub fn seq(a: MlExpr, b: MlExpr) -> MlExpr {
    MlExpr::Seq(Box::new(a), Box::new(b))
}

/// A binary primitive.
pub fn binop(op: MlBinop, a: MlExpr, b: MlExpr) -> MlExpr {
    MlExpr::Binop(op, Box::new(a), Box::new(b))
}

/// `a + b`.
pub fn add(a: MlExpr, b: MlExpr) -> MlExpr {
    binop(MlBinop::Add, a, b)
}

/// `if c != 0 then t else e`.
pub fn if_(c: MlExpr, t: MlExpr, e: MlExpr) -> MlExpr {
    MlExpr::If(Box::new(c), Box::new(t), Box::new(e))
}

/// A boxed tuple.
pub fn tuple(items: Vec<MlExpr>) -> MlExpr {
    MlExpr::Tuple(items)
}

/// Projection `e.i`.
pub fn proj(i: usize, e: MlExpr) -> MlExpr {
    MlExpr::Proj(i, Box::new(e))
}

/// Injection `inj_tag e : sum`.
pub fn inj(sum: MlTy, tag: usize, e: MlExpr) -> MlExpr {
    MlExpr::Inj {
        sum,
        tag,
        e: Box::new(e),
    }
}

/// Case analysis with one `(binder, arm)` per case.
pub fn case(scrut: MlExpr, arms: Vec<(&str, MlExpr)>) -> MlExpr {
    MlExpr::Case(
        Box::new(scrut),
        arms.into_iter().map(|(x, e)| (x.to_string(), e)).collect(),
    )
}

/// `ref e`.
pub fn new_ref(e: MlExpr) -> MlExpr {
    MlExpr::NewRef(Box::new(e))
}

/// `!e`.
pub fn deref(e: MlExpr) -> MlExpr {
    MlExpr::Deref(Box::new(e))
}

/// `dst := src`.
pub fn assign(dst: MlExpr, src: MlExpr) -> MlExpr {
    MlExpr::Assign(Box::new(dst), Box::new(src))
}

/// A single-parameter closure `fun (param : param_ty) : ret_ty -> body`.
pub fn lam(param: impl Into<String>, param_ty: MlTy, ret_ty: MlTy, body: MlExpr) -> MlExpr {
    MlExpr::Lam {
        param: param.into(),
        param_ty,
        ret_ty,
        body: Box::new(body),
    }
}

/// Closure application `f arg`.
pub fn app(f: MlExpr, arg: MlExpr) -> MlExpr {
    MlExpr::App(Box::new(f), Box::new(arg))
}

/// Monomorphic direct call of a top-level function or import.
pub fn call(name: impl Into<String>, args: Vec<MlExpr>) -> MlExpr {
    MlExpr::CallTop {
        name: name.into(),
        tyargs: vec![],
        args,
    }
}

/// Incremental [`MlModule`] construction.
#[derive(Debug, Clone, Default)]
pub struct MlModuleBuilder {
    module: MlModule,
}

impl MlModuleBuilder {
    /// An empty module.
    pub fn new() -> MlModuleBuilder {
        MlModuleBuilder::default()
    }

    /// Declares an import from `module`'s export `name`.
    pub fn import(
        mut self,
        module: impl Into<String>,
        name: impl Into<String>,
        params: Vec<MlTy>,
        ret: MlTy,
    ) -> Self {
        self.module.imports.push(MlImport {
            module: module.into(),
            name: name.into(),
            params,
            ret,
        });
        self
    }

    /// Declares module-level state.
    pub fn global(mut self, name: impl Into<String>, ty: MlTy, init: MlExpr) -> Self {
        self.module.globals.push(MlGlobal {
            name: name.into(),
            ty,
            init,
        });
        self
    }

    /// Adds a monomorphic function.
    pub fn fun(
        mut self,
        name: impl Into<String>,
        export: bool,
        params: Vec<(&str, MlTy)>,
        ret: MlTy,
        body: MlExpr,
    ) -> Self {
        self.module.funs.push(MlFun {
            name: name.into(),
            export,
            tyvars: 0,
            params: params
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
            ret,
            body,
        });
        self
    }

    /// Finishes the module.
    pub fn build(self) -> MlModule {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_module;

    #[test]
    fn built_modules_compile_and_check() {
        let m = MlModuleBuilder::new()
            .fun(
                "helper",
                false,
                vec![("x", MlTy::Int)],
                MlTy::Int,
                add(var("x"), int(1)),
            )
            .fun(
                "main",
                true,
                vec![],
                MlTy::Int,
                let_(
                    "r",
                    new_ref(int(3)),
                    seq(
                        assign(var("r"), call("helper", vec![deref(var("r"))])),
                        if_(
                            binop(MlBinop::Lt, deref(var("r")), int(10)),
                            proj(1, tuple(vec![int(0), deref(var("r"))])),
                            app(lam("y", MlTy::Int, MlTy::Int, var("y")), int(9)),
                        ),
                    ),
                ),
            )
            .build();
        let rw = compile_module(&m).expect("builder output compiles");
        richwasm::typecheck::check_module(&rw).expect("and typechecks");
    }

    #[test]
    fn sum_builders_compile() {
        let sum = MlTy::Sum(vec![MlTy::Int, MlTy::Int]);
        let m = MlModuleBuilder::new()
            .fun(
                "main",
                true,
                vec![],
                MlTy::Int,
                case(
                    inj(sum, 1, int(21)),
                    vec![("a", var("a")), ("b", add(var("b"), var("b")))],
                ),
            )
            .build();
        let rw = compile_module(&m).expect("compiles");
        richwasm::typecheck::check_module(&rw).expect("typechecks");
    }
}
