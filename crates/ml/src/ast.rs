//! Core ML abstract syntax (paper §5).

use richwasm::syntax as rw;

/// An ML type.
#[derive(Debug, Clone, PartialEq)]
pub enum MlTy {
    /// The unit type.
    Unit,
    /// 32-bit integers.
    Int,
    /// Products (boxed tuples).
    Prod(Vec<MlTy>),
    /// Sums (boxed variants).
    Sum(Vec<MlTy>),
    /// Functions (closures: boxed existential packages).
    Arrow(Box<MlTy>, Box<MlTy>),
    /// ML references (type-preserving updates, GC'd).
    Ref(Box<MlTy>),
    /// A `ref_to_lin` cell holding an optional *linear* value of the
    /// given type (the linking-types extension of §2.2).
    RefToLin(Box<MlTy>),
    /// An isorecursive type binding [`MlTy::Var`] 0 in its body.
    Rec(Box<MlTy>),
    /// A type variable (de Bruijn: 0 = innermost `Rec`/type-parameter
    /// binder).
    Var(u32),
    /// A *foreign* type: a RichWasm type inexpressible in ML (e.g. L3's
    /// linear reference). The compiler passes it through opaquely — this
    /// is the `(τ)lin` linking type of the paper.
    Foreign(rw::Type),
}

impl MlTy {
    /// `true` when values of this type must be treated linearly at the
    /// RichWasm level (foreign linear types only — native ML types are
    /// all unrestricted).
    pub fn is_linear(&self) -> bool {
        matches!(self, MlTy::Foreign(t) if t.qual == rw::Qual::Lin)
    }
}

/// Primitive binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum MlBinop {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Lt,
}

/// An ML expression.
#[derive(Debug, Clone, PartialEq)]
pub enum MlExpr {
    /// `()`.
    Unit,
    /// An integer literal.
    Int(i32),
    /// A variable (local, parameter, or module global).
    Var(String),
    /// `let x = e1 in e2`.
    Let(String, Box<MlExpr>, Box<MlExpr>),
    /// `e1; e2` (drops `e1`'s result).
    Seq(Box<MlExpr>, Box<MlExpr>),
    /// An anonymous function (closure-converted at compile time).
    Lam {
        /// Parameter name.
        param: String,
        /// Parameter type.
        param_ty: MlTy,
        /// Result type.
        ret_ty: MlTy,
        /// Body.
        body: Box<MlExpr>,
    },
    /// Application of a closure.
    App(Box<MlExpr>, Box<MlExpr>),
    /// Tuple construction (boxed).
    Tuple(Vec<MlExpr>),
    /// Tuple projection.
    Proj(usize, Box<MlExpr>),
    /// Variant injection: `inj_tag e : sum`.
    Inj {
        /// The full sum type.
        sum: MlTy,
        /// The case index.
        tag: usize,
        /// The payload.
        e: Box<MlExpr>,
    },
    /// Case analysis; one arm `(x, e)` per case.
    Case(Box<MlExpr>, Vec<(String, MlExpr)>),
    /// `ref e` (GC'd reference).
    NewRef(Box<MlExpr>),
    /// `!e` — for [`MlTy::RefToLin`] cells this *takes* the value and
    /// traps if the cell is empty (read-twice fails, §2.2).
    Deref(Box<MlExpr>),
    /// `e1 := e2` — for `ref_to_lin` cells this traps if the cell is
    /// already full (write-twice fails).
    Assign(Box<MlExpr>, Box<MlExpr>),
    /// `ref_to_lin τ`: a fresh, empty cell for linear values of type `τ`.
    NewRefToLin(MlTy),
    /// A primitive operation.
    Binop(MlBinop, Box<MlExpr>, Box<MlExpr>),
    /// `if e != 0 then e1 else e2`.
    If(Box<MlExpr>, Box<MlExpr>, Box<MlExpr>),
    /// Fold into a recursive type.
    Fold(MlTy, Box<MlExpr>),
    /// Unfold a recursive type.
    Unfold(Box<MlExpr>),
    /// Direct call of a top-level function (own or imported), with type
    /// arguments for its parameters.
    CallTop {
        /// Function name.
        name: String,
        /// Type arguments (left to right).
        tyargs: Vec<MlTy>,
        /// Value arguments.
        args: Vec<MlExpr>,
    },
}

/// A top-level ML function.
#[derive(Debug, Clone, PartialEq)]
pub struct MlFun {
    /// The function's name (also its export name when `export`).
    pub name: String,
    /// Whether the function is exported.
    pub export: bool,
    /// Number of type parameters (prenex polymorphism).
    pub tyvars: u32,
    /// Parameters.
    pub params: Vec<(String, MlTy)>,
    /// Result type.
    pub ret: MlTy,
    /// Body.
    pub body: MlExpr,
}

/// An imported function, with its type declared in ML terms.
#[derive(Debug, Clone, PartialEq)]
pub struct MlImport {
    /// Providing module.
    pub module: String,
    /// Export name in the provider (also the name used in `CallTop`).
    pub name: String,
    /// Parameter types.
    pub params: Vec<MlTy>,
    /// Result type.
    pub ret: MlTy,
}

/// Module-level state (paper §5: "the ability to define global state
/// which exported functions can close over").
#[derive(Debug, Clone, PartialEq)]
pub struct MlGlobal {
    /// Name (referenced by `Var`).
    pub name: String,
    /// Type.
    pub ty: MlTy,
    /// Initialiser (restricted to allocation/constant expressions that
    /// need no local variables).
    pub init: MlExpr,
}

/// An ML module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MlModule {
    /// Imported functions.
    pub imports: Vec<MlImport>,
    /// Module-level state.
    pub globals: Vec<MlGlobal>,
    /// Top-level functions.
    pub funs: Vec<MlFun>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn foreign_linearity() {
        use richwasm::syntax::{Pretype, Qual};
        assert!(!MlTy::Int.is_linear());
        assert!(MlTy::Foreign(Pretype::Unit.with_qual(Qual::Lin)).is_linear());
        assert!(!MlTy::Foreign(Pretype::Unit.with_qual(Qual::Unr)).is_linear());
    }
}
