//! The ML → RichWasm compiler (paper §5): type checking, typed closure
//! conversion, and code generation.
//!
//! Design notes:
//!
//! * Every ML local lives in a 64-bit RichWasm slot; reading a variable
//!   whose representation is linear emits `get_local i lin`, which
//!   strongly updates the slot to `unit` — so a program that uses a
//!   linear value twice (Fig. 1's `stash`) compiles, but the *RichWasm*
//!   checker rejects it. The ML compiler deliberately performs no
//!   linearity checking (§5).
//! * Lambdas are hoisted to top-level *code functions* of type
//!   `[arg, env] → [res]`, registered in the module table; the closure
//!   value packs the concrete environment behind `∃α` (typed closure
//!   conversion).
//! * Every temporary slot is reset to `unit` before the enclosing block
//!   ends, so block annotations only carry effects for outer linear
//!   variables consumed inside the block.

use std::collections::{BTreeMap, HashSet};

use richwasm::syntax::instr::LocalEffect;
use richwasm::syntax::{
    FunType, Func, Global, GlobalKind, HeapType, Index, Instr, Module, Pretype, Qual, Quantifier,
    Size, Table, Type, Value,
};

use crate::ast::{MlBinop, MlExpr, MlGlobal, MlModule, MlTy};
use crate::types::{
    block, code_fun_type, opt_heap_type, opt_type, translate_ty, translate_ty_at, unpack, ML_SLOT,
};

/// An error from the ML compiler (ML-level typing or an unsupported
/// construct). RichWasm-level rejections surface later, from
/// `richwasm::typecheck::check_module` — by design.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// An ML type error.
    Type(String),
    /// A construct outside the supported fragment.
    Unsupported(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::Type(s) => write!(f, "ML type error: {s}"),
            MlError::Unsupported(s) => write!(f, "unsupported ML construct: {s}"),
        }
    }
}

impl std::error::Error for MlError {}

fn terr<T>(msg: impl Into<String>) -> Result<T, MlError> {
    Err(MlError::Type(msg.into()))
}

/// Substitutes `arg` for variable `idx` in `t` (de Bruijn, no
/// capture-avoidance needed beyond index shifting for our prenex use).
fn ml_subst(t: &MlTy, idx: u32, arg: &MlTy) -> MlTy {
    match t {
        MlTy::Unit | MlTy::Int | MlTy::Foreign(_) => t.clone(),
        MlTy::Prod(ts) => MlTy::Prod(ts.iter().map(|t| ml_subst(t, idx, arg)).collect()),
        MlTy::Sum(ts) => MlTy::Sum(ts.iter().map(|t| ml_subst(t, idx, arg)).collect()),
        MlTy::Arrow(a, b) => MlTy::Arrow(
            Box::new(ml_subst(a, idx, arg)),
            Box::new(ml_subst(b, idx, arg)),
        ),
        MlTy::Ref(t) => MlTy::Ref(Box::new(ml_subst(t, idx, arg))),
        MlTy::RefToLin(t) => MlTy::RefToLin(Box::new(ml_subst(t, idx, arg))),
        MlTy::Rec(b) => MlTy::Rec(Box::new(ml_subst(b, idx + 1, arg))),
        MlTy::Var(i) if *i == idx => arg.clone(),
        MlTy::Var(i) if *i > idx => MlTy::Var(i - 1),
        MlTy::Var(i) => MlTy::Var(*i),
    }
}

/// Instantiates a prenex-polymorphic type with `tyargs` (telescope order:
/// first declared parameter first; de Bruijn 0 = last parameter).
fn ml_instantiate(t: &MlTy, tyargs: &[MlTy]) -> MlTy {
    let mut out = t.clone();
    // Innermost (index 0) is the *last* declared argument.
    for a in tyargs.iter().rev() {
        out = ml_subst(&out, 0, a);
    }
    out
}

/// Unfolds `rec` one step: `body[rec/0]`.
fn ml_unfold(rec: &MlTy) -> Result<MlTy, MlError> {
    match rec {
        MlTy::Rec(body) => Ok(ml_subst(body, 0, rec)),
        other => terr(format!("unfold of non-recursive type {other:?}")),
    }
}

/// A top-level callable's signature.
#[derive(Debug, Clone)]
struct FuncSig {
    idx: u32,
    tyvars: u32,
    params: Vec<MlTy>,
    ret: MlTy,
}

/// Module-level compilation state.
struct ModuleCx {
    sigs: BTreeMap<String, FuncSig>,
    globals: BTreeMap<String, (u32, MlTy)>,
    /// Hoisted code functions (appended after user functions).
    code_funcs: Vec<Func>,
    /// Table entries for code functions.
    table: Vec<u32>,
    first_code_idx: u32,
}

impl ModuleCx {
    /// Registers a hoisted code function; returns its table index.
    fn add_code_fn(&mut self, f: Func) -> u32 {
        let fidx = self.first_code_idx + self.code_funcs.len() as u32;
        self.code_funcs.push(f);
        let tidx = self.table.len() as u32;
        self.table.push(fidx);
        tidx
    }
}

/// Per-block scope information.
#[derive(Default)]
struct Scope {
    /// Outer linear slots consumed inside this block (become local
    /// effects `(slot, unit)` on the block annotation).
    consumed_outer: HashSet<u32>,
}

struct FnCompiler {
    /// name → (slot, type, def_depth); shadowing via Vec.
    vars: Vec<(String, u32, MlTy, usize)>,
    n_slots: u32,
    n_params: u32,
    tyvars: u32,
    scopes: Vec<Scope>,
}

impl FnCompiler {
    fn new(params: &[(String, MlTy)], tyvars: u32) -> FnCompiler {
        let mut c = FnCompiler {
            vars: Vec::new(),
            n_slots: params.len() as u32,
            n_params: params.len() as u32,
            tyvars,
            scopes: vec![Scope::default()],
        };
        for (i, (n, t)) in params.iter().enumerate() {
            c.vars.push((n.clone(), i as u32, t.clone(), 0));
        }
        c
    }

    fn fresh(&mut self) -> u32 {
        let s = self.n_slots;
        self.n_slots += 1;
        s
    }

    fn depth(&self) -> usize {
        self.scopes.len() - 1
    }

    fn enter(&mut self) {
        self.scopes.push(Scope::default());
    }

    /// Leaves a block scope, returning its local effects.
    fn exit(&mut self) -> Vec<LocalEffect> {
        let sc = self.scopes.pop().expect("scope");
        let mut slots: Vec<u32> = sc.consumed_outer.into_iter().collect();
        slots.sort_unstable();
        slots
            .into_iter()
            .map(|s| LocalEffect::new(s, Type::unit()))
            .collect()
    }

    fn lookup(&self, name: &str) -> Option<(u32, MlTy, usize)> {
        self.vars
            .iter()
            .rev()
            .find(|(n, ..)| n == name)
            .map(|(_, s, t, d)| (*s, t.clone(), *d))
    }

    /// Records the consumption of a linear slot defined at `def_depth` in
    /// every enclosing block scope deeper than its definition.
    fn consume(&mut self, slot: u32, def_depth: usize) {
        for level in (def_depth + 1)..self.scopes.len() {
            self.scopes[level].consumed_outer.insert(slot);
        }
    }

    /// Emits a read of a variable with the right qualifier; linear reads
    /// strongly update the slot to unit.
    fn read_var(&mut self, out: &mut Vec<Instr>, slot: u32, ty: &MlTy, def_depth: usize) {
        let q = translate_ty(ty).qual;
        out.push(Instr::GetLocal(slot, q));
        if q == Qual::Lin {
            self.consume(slot, def_depth);
        }
    }

    /// Resets a (now unrestricted or consumed) slot to unit so block
    /// annotations stay effect-free.
    fn reset(&self, out: &mut Vec<Instr>, slot: u32) {
        out.push(Instr::Val(Value::Unit));
        out.push(Instr::SetLocal(slot));
    }

    // ------------------------------------------------------------------
    // Expression compilation (type synthesis + emission).
    // ------------------------------------------------------------------
    #[allow(clippy::too_many_lines)]
    fn gen(
        &mut self,
        cx: &mut ModuleCx,
        e: &MlExpr,
        out: &mut Vec<Instr>,
    ) -> Result<MlTy, MlError> {
        match e {
            MlExpr::Unit => {
                out.push(Instr::Val(Value::Unit));
                Ok(MlTy::Unit)
            }
            MlExpr::Int(v) => {
                out.push(Instr::i32(*v));
                Ok(MlTy::Int)
            }
            MlExpr::Var(name) => {
                if let Some((slot, ty, d)) = self.lookup(name) {
                    self.read_var(out, slot, &ty, d);
                    Ok(ty)
                } else if let Some((gidx, ty)) = cx.globals.get(name).cloned() {
                    out.push(Instr::GetGlobal(gidx));
                    Ok(ty)
                } else {
                    terr(format!("unbound variable {name}"))
                }
            }
            MlExpr::Let(x, e1, e2) => {
                let t1 = self.gen(cx, e1, out)?;
                let slot = self.fresh();
                out.push(Instr::SetLocal(slot));
                self.vars.push((x.clone(), slot, t1, self.depth()));
                let t2 = self.gen(cx, e2, out)?;
                self.vars.pop();
                // Unused linear variables are caught by RichWasm here: the
                // reset overwrites a linear leftover, which is rejected.
                self.reset(out, slot);
                Ok(t2)
            }
            MlExpr::Seq(e1, e2) => {
                let _t1 = self.gen(cx, e1, out)?;
                out.push(Instr::Drop);
                self.gen(cx, e2, out)
            }
            MlExpr::Binop(op, e1, e2) => {
                let t1 = self.gen(cx, e1, out)?;
                let t2 = self.gen(cx, e2, out)?;
                if t1 != MlTy::Int || t2 != MlTy::Int {
                    return terr("binop on non-int");
                }
                use richwasm::syntax::instr::{IntBinop, IntRelop, NumInstr, Sign};
                use richwasm::syntax::NumType;
                let n = match op {
                    MlBinop::Add => NumInstr::IntBinop(NumType::I32, IntBinop::Add),
                    MlBinop::Sub => NumInstr::IntBinop(NumType::I32, IntBinop::Sub),
                    MlBinop::Mul => NumInstr::IntBinop(NumType::I32, IntBinop::Mul),
                    MlBinop::Div => NumInstr::IntBinop(NumType::I32, IntBinop::Div(Sign::S)),
                    MlBinop::Eq => NumInstr::IntRelop(NumType::I32, IntRelop::Eq),
                    MlBinop::Lt => NumInstr::IntRelop(NumType::I32, IntRelop::Lt(Sign::S)),
                };
                out.push(Instr::Num(n));
                Ok(MlTy::Int)
            }
            MlExpr::If(c, t, f) => {
                let tc = self.gen(cx, c, out)?;
                if tc != MlTy::Int {
                    return terr("if condition must be int");
                }
                self.enter();
                let mut t_out = Vec::new();
                let tt = self.gen(cx, t, &mut t_out)?;
                let mut f_out = Vec::new();
                let tf = self.gen(cx, f, &mut f_out)?;
                let effects = self.exit();
                if tt != tf {
                    return terr(format!("if arms disagree: {tt:?} vs {tf:?}"));
                }
                let rt = translate_ty(&tt);
                out.push(Instr::IfI(
                    richwasm::syntax::instr::Block::new(
                        richwasm::syntax::ArrowType::new(vec![], vec![rt]),
                        effects,
                    ),
                    t_out,
                    f_out,
                ));
                Ok(tt)
            }
            MlExpr::Tuple(es) => {
                let mut tys = Vec::new();
                for e in es {
                    tys.push(self.gen(cx, e, out)?);
                }
                out.push(Instr::StructMalloc(
                    vec![Size::Const(ML_SLOT); es.len()],
                    Qual::Unr,
                ));
                Ok(MlTy::Prod(tys))
            }
            MlExpr::Proj(i, e) => {
                let t = self.gen(cx, e, out)?;
                let MlTy::Prod(ts) = &t else {
                    return terr(format!("projection from non-product {t:?}"));
                };
                let Some(ti) = ts.get(*i).cloned() else {
                    return terr(format!("projection index {i} out of range"));
                };
                self.take_field_from_struct(out, *i, &ti);
                Ok(ti)
            }
            MlExpr::Inj { sum, tag, e } => {
                let MlTy::Sum(ts) = sum else {
                    return terr("inj into non-sum type");
                };
                let Some(expect) = ts.get(*tag) else {
                    return terr(format!("inj tag {tag} out of range"));
                };
                let t = self.gen(cx, e, out)?;
                if &t != expect {
                    return terr(format!("inj payload {t:?} vs declared {expect:?}"));
                }
                let cases = ts.iter().map(translate_ty).collect();
                out.push(Instr::VariantMalloc(*tag as u32, cases, Qual::Unr));
                Ok(sum.clone())
            }
            MlExpr::Case(e, arms) => self.gen_case(cx, e, arms, out),
            MlExpr::NewRef(e) => {
                let t = self.gen(cx, e, out)?;
                out.push(Instr::StructMalloc(vec![Size::Const(ML_SLOT)], Qual::Unr));
                Ok(MlTy::Ref(Box::new(t)))
            }
            MlExpr::NewRefToLin(ty) => {
                let content = translate_ty(ty);
                out.push(Instr::Val(Value::Unit));
                out.push(Instr::VariantMalloc(
                    0,
                    vec![Type::unit(), content],
                    Qual::Lin,
                ));
                out.push(Instr::StructMalloc(vec![Size::Const(ML_SLOT)], Qual::Unr));
                Ok(MlTy::RefToLin(Box::new(ty.clone())))
            }
            MlExpr::Deref(e) => {
                let t = self.gen(cx, e, out)?;
                match t {
                    MlTy::Ref(inner) => {
                        self.take_field_from_struct(out, 0, &inner);
                        Ok(*inner)
                    }
                    MlTy::RefToLin(inner) => {
                        self.gen_lin_take(out, &inner);
                        Ok(*inner)
                    }
                    other => terr(format!("dereference of non-reference {other:?}")),
                }
            }
            MlExpr::Assign(e1, e2) => {
                let t1 = self.gen(cx, e1, out)?;
                match t1 {
                    MlTy::Ref(inner) => {
                        let t2 = self.gen(cx, e2, out)?;
                        if t2 != *inner {
                            return terr(format!("assign {t2:?} into Ref {inner:?}"));
                        }
                        // Stack: [cell, v]. Stash v, open the cell, set.
                        // The slot is written before the block and reset
                        // after it, so the block needs no local effects.
                        let tmp = self.fresh();
                        out.push(Instr::SetLocal(tmp));
                        let body = vec![
                            Instr::GetLocal(tmp, Qual::Unr),
                            Instr::StructSet(0),
                            Instr::Drop,
                        ];
                        out.push(unpack(vec![], vec![], vec![], body));
                        self.reset(out, tmp);
                        out.push(Instr::Val(Value::Unit));
                        Ok(MlTy::Unit)
                    }
                    MlTy::RefToLin(inner) => {
                        let t2 = self.gen(cx, e2, out)?;
                        if t2 != *inner {
                            return terr(format!("assign {t2:?} into ref_to_lin {inner:?}"));
                        }
                        self.gen_lin_put(out, &inner);
                        out.push(Instr::Val(Value::Unit));
                        Ok(MlTy::Unit)
                    }
                    other => terr(format!("assignment to non-reference {other:?}")),
                }
            }
            MlExpr::Lam {
                param,
                param_ty,
                ret_ty,
                body,
            } => self.gen_lambda(cx, param, param_ty, ret_ty, body, out),
            MlExpr::App(f, a) => self.gen_app(cx, f, a, out),
            MlExpr::Fold(rec, e) => {
                let unfolded = ml_unfold(rec)?;
                let t = self.gen(cx, e, out)?;
                if t != unfolded {
                    return terr(format!("fold body {t:?} vs unfolding {unfolded:?}"));
                }
                out.push(Instr::RecFold((*translate_ty(rec).pre).clone()));
                Ok(rec.clone())
            }
            MlExpr::Unfold(e) => {
                let t = self.gen(cx, e, out)?;
                let unfolded = ml_unfold(&t)?;
                out.push(Instr::RecUnfold);
                Ok(unfolded)
            }
            MlExpr::CallTop { name, tyargs, args } => {
                let sig = cx
                    .sigs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| MlError::Type(format!("unknown function {name}")))?;
                if tyargs.len() as u32 != sig.tyvars {
                    return terr(format!(
                        "{name} expects {} type arguments, got {}",
                        sig.tyvars,
                        tyargs.len()
                    ));
                }
                if args.len() != sig.params.len() {
                    return terr(format!(
                        "{name} expects {} arguments, got {}",
                        sig.params.len(),
                        args.len()
                    ));
                }
                for (a, pt) in args.iter().zip(&sig.params) {
                    let want = ml_instantiate(pt, tyargs);
                    let got = self.gen(cx, a, out)?;
                    if got != want {
                        return terr(format!("argument {got:?} vs parameter {want:?}"));
                    }
                }
                let indices = tyargs
                    .iter()
                    .map(|t| Index::Pretype((*translate_ty(t).pre).clone()))
                    .collect();
                out.push(Instr::Call(sig.idx, indices));
                Ok(ml_instantiate(&sig.ret, tyargs))
            }
        }
    }

    /// With a boxed struct package on the stack, reads (unrestricted)
    /// field `i` and leaves just the value.
    fn take_field_from_struct(&mut self, out: &mut Vec<Instr>, i: usize, field: &MlTy) {
        let rt = translate_ty(field);
        let tmp = self.fresh();
        let q = rt.qual;
        let mut body = vec![
            Instr::StructGet(i as u32),
            Instr::SetLocal(tmp),
            Instr::Drop,
            Instr::GetLocal(tmp, q),
        ];
        if q == Qual::Unr {
            self.reset(&mut body, tmp);
        }
        out.push(unpack(vec![], vec![rt], vec![], body));
    }

    /// `!c` on a `ref_to_lin` cell: swap an empty option in, open the old
    /// option; trap (unreachable) if the cell was empty — "read twice
    /// fails at runtime" (§2.2).
    fn gen_lin_take(&mut self, out: &mut Vec<Instr>, content: &MlTy) {
        let content_rt = translate_ty(content);
        let opt = opt_type(&content_rt);
        let cases = opt_heap_type(&content_rt);
        let tmp_old = self.fresh();
        let body = vec![
            // [cell_ref] — make a fresh empty option, swap it in.
            Instr::Val(Value::Unit),
            Instr::VariantMalloc(0, vec![Type::unit(), content_rt.clone()], Qual::Lin),
            Instr::StructSwap(0),
            // [cell_ref, old_opt]
            Instr::SetLocal(tmp_old),
            Instr::Drop,
            Instr::GetLocal(tmp_old, Qual::Lin),
            // [old_opt] — open it; case 0 = cell was empty = failure.
            unpack(
                vec![],
                vec![content_rt.clone()],
                vec![],
                vec![Instr::VariantCase(
                    Qual::Lin,
                    cases,
                    block(vec![], vec![content_rt.clone()], vec![]),
                    vec![vec![Instr::Drop, Instr::Unreachable], vec![]],
                )],
            ),
        ];
        let _ = opt;
        out.push(unpack(vec![], vec![content_rt], vec![], body));
    }

    /// `c := v` on a `ref_to_lin` cell: box the value into a full option,
    /// swap it in; trap if the previous option was full — "write twice
    /// fails".
    fn gen_lin_put(&mut self, out: &mut Vec<Instr>, content: &MlTy) {
        let content_rt = translate_ty(content);
        let cases_ht = opt_heap_type(&content_rt);
        // Stack: [cell, v]. Box v into option case 1, stash it.
        out.push(Instr::VariantMalloc(
            1,
            vec![Type::unit(), content_rt],
            Qual::Lin,
        ));
        let tmp_new = self.fresh();
        out.push(Instr::SetLocal(tmp_new));
        let tmp_old = self.fresh();
        let body = vec![
            // [cell_ref]
            Instr::GetLocal(tmp_new, Qual::Lin),
            Instr::StructSwap(0),
            Instr::SetLocal(tmp_old),
            Instr::Drop,
            Instr::GetLocal(tmp_old, Qual::Lin),
            unpack(
                vec![],
                vec![],
                vec![],
                vec![Instr::VariantCase(
                    Qual::Lin,
                    cases_ht,
                    block(vec![], vec![], vec![]),
                    vec![
                        // Empty before: fine, drop the unit payload.
                        vec![Instr::Drop],
                        // Full before: double write — fails at runtime.
                        vec![Instr::Unreachable],
                    ],
                )],
            ),
        ];
        // tmp_new is consumed inside the unpack block: declare the effect.
        out.push(unpack(
            vec![],
            vec![],
            vec![(tmp_new, Type::unit()), (tmp_old, Type::unit())],
            body,
        ));
    }

    fn gen_case(
        &mut self,
        cx: &mut ModuleCx,
        e: &MlExpr,
        arms: &[(String, MlExpr)],
        out: &mut Vec<Instr>,
    ) -> Result<MlTy, MlError> {
        let t = self.gen(cx, e, out)?;
        let MlTy::Sum(ts) = &t else {
            return terr(format!("case on non-sum {t:?}"));
        };
        if ts.len() != arms.len() {
            return terr(format!(
                "case has {} arms for {} cases",
                arms.len(),
                ts.len()
            ));
        }
        self.enter(); // the variant.case block scope
        let mut bodies = Vec::new();
        let mut result: Option<MlTy> = None;
        for ((x, arm), case_ty) in arms.iter().zip(ts) {
            let slot = self.fresh();
            let mut body = vec![Instr::SetLocal(slot)];
            self.vars
                .push((x.clone(), slot, case_ty.clone(), self.depth()));
            let rt = self.gen(cx, arm, &mut body)?;
            self.vars.pop();
            self.reset(&mut body, slot);
            match &result {
                None => result = Some(rt),
                Some(prev) if *prev == rt => {}
                Some(prev) => {
                    return terr(format!("case arms disagree: {prev:?} vs {rt:?}"));
                }
            }
            bodies.push(body);
        }
        let case_effects = self.exit();
        let res_ml = result.expect("at least one arm");
        let res_rt = translate_ty(&res_ml);
        let cases_rt: Vec<Type> = ts.iter().map(translate_ty).collect();
        let tmp = self.fresh();
        let q = res_rt.qual;
        let mut unpack_body = vec![
            Instr::VariantCase(
                Qual::Unr,
                HeapType::Variant(cases_rt),
                block(
                    vec![],
                    vec![res_rt.clone()],
                    case_effects.iter().map(|e| (e.idx, e.ty.clone())).collect(),
                ),
                bodies,
            ),
            // [ref, res]
            Instr::SetLocal(tmp),
            Instr::Drop,
            Instr::GetLocal(tmp, q),
        ];
        if q == Qual::Unr {
            self.reset(&mut unpack_body, tmp);
        }
        let fx: Vec<(u32, Type)> = case_effects.iter().map(|e| (e.idx, e.ty.clone())).collect();
        out.push(unpack(vec![], vec![res_rt], fx, unpack_body));
        Ok(res_ml)
    }

    fn gen_lambda(
        &mut self,
        cx: &mut ModuleCx,
        param: &str,
        param_ty: &MlTy,
        ret_ty: &MlTy,
        body: &MlExpr,
        out: &mut Vec<Instr>,
    ) -> Result<MlTy, MlError> {
        if self.tyvars > 0 {
            return Err(MlError::Unsupported(
                "lambdas inside polymorphic functions".into(),
            ));
        }
        // Free variables of the body, minus the parameter (globals are
        // reached directly, not captured).
        let mut fvs = Vec::new();
        let mut bound: HashSet<String> = HashSet::new();
        bound.insert(param.to_string());
        free_vars(body, &mut bound, &mut fvs);
        let mut captures = Vec::new();
        for name in fvs {
            if cx.globals.contains_key(&name) || cx.sigs.contains_key(&name) {
                continue;
            }
            let Some((slot, ty, d)) = self.lookup(&name) else {
                return terr(format!("unbound variable {name}"));
            };
            if ty.is_linear() {
                return Err(MlError::Unsupported(format!(
                    "closure capture of linear variable {name}"
                )));
            }
            captures.push((name, slot, ty, d));
        }
        let env_ml = MlTy::Prod(captures.iter().map(|(_, _, t, _)| t.clone()).collect());
        let env_rt = translate_ty(&env_ml);

        // The hoisted code function: [arg, env] → [res].
        let mut code = FnCompiler::new(
            &[
                (param.to_string(), param_ty.clone()),
                ("$env".into(), env_ml),
            ],
            0,
        );
        let mut code_body = Vec::new();
        // Prologue: open the environment into fresh slots.
        let mut fv_slots = Vec::new();
        let mut open = vec![];
        let mut effects = Vec::new();
        for (name, _, ty, _) in &captures {
            let s = code.fresh();
            fv_slots.push(s);
            code.vars.push((name.clone(), s, ty.clone(), 0));
            effects.push((s, translate_ty(ty)));
        }
        for (i, s) in fv_slots.iter().enumerate() {
            open.push(Instr::StructGet(i as u32));
            open.push(Instr::SetLocal(*s));
        }
        open.push(Instr::Drop);
        code_body.push(Instr::GetLocal(1, Qual::Unr)); // the env package
        code_body.push(unpack(vec![], vec![], effects, open));
        let rt = code.gen(cx, body, &mut code_body)?;
        if &rt != ret_ty {
            return terr(format!("lambda body {rt:?} vs declared {ret_ty:?}"));
        }
        let code_ty = code_fun_type(translate_ty(param_ty), env_rt.clone(), translate_ty(ret_ty));
        let extra = code.n_slots - code.n_params;
        let tbl_idx = cx.add_code_fn(Func::Defined {
            exports: vec![],
            ty: code_ty,
            locals: vec![Size::Const(ML_SLOT); extra as usize],
            body: code_body,
        });

        // The closure value: pack (env, coderef) behind ∃α.
        for (_, slot, ty, d) in &captures {
            self.read_var(out, *slot, ty, *d);
        }
        out.push(Instr::StructMalloc(
            vec![Size::Const(ML_SLOT); captures.len()],
            Qual::Unr,
        ));
        out.push(Instr::CodeRefI(tbl_idx));
        out.push(Instr::Group(2, Qual::Unr));
        let pair_body = Pretype::Prod(vec![
            Pretype::Var(0).unr(),
            Pretype::CodeRef(code_fun_type(
                translate_ty_at(param_ty, 1),
                Pretype::Var(0).unr(),
                translate_ty_at(ret_ty, 1),
            ))
            .unr(),
        ])
        .unr();
        let psi = HeapType::Exists(Qual::Unr, Size::Const(ML_SLOT), Box::new(pair_body));
        out.push(Instr::ExistPack((*env_rt.pre).clone(), psi, Qual::Unr));
        Ok(MlTy::Arrow(
            Box::new(param_ty.clone()),
            Box::new(ret_ty.clone()),
        ))
    }

    fn gen_app(
        &mut self,
        cx: &mut ModuleCx,
        f: &MlExpr,
        a: &MlExpr,
        out: &mut Vec<Instr>,
    ) -> Result<MlTy, MlError> {
        let ta = self.gen(cx, a, out)?;
        let tf = self.gen(cx, f, out)?;
        let MlTy::Arrow(pa, pb) = &tf else {
            return terr(format!("application of non-function {tf:?}"));
        };
        if **pa != ta {
            return terr(format!("argument {ta:?} vs parameter {pa:?}"));
        }
        let arg_rt = translate_ty(pa);
        let res_rt = translate_ty(pb);
        let q_arg = arg_rt.qual;
        let q_res = res_rt.qual;
        let tmp_ref = self.fresh();
        let tmp_arg = self.fresh();
        let tmp_cr = self.fresh();
        let tmp_res = self.fresh();
        // Stack: [arg, clos]. Open the closure.
        let pair_body = Pretype::Prod(vec![
            Pretype::Var(0).unr(),
            Pretype::CodeRef(code_fun_type(
                translate_ty_at(pa, 1),
                Pretype::Var(0).unr(),
                translate_ty_at(pb, 1),
            ))
            .unr(),
        ])
        .unr();
        let psi = HeapType::Exists(Qual::Unr, Size::Const(ML_SLOT), Box::new(pair_body));
        let mut inner = vec![
            // entry: [arg, pair]
            Instr::Ungroup,
            // [arg, env, cr]
            Instr::SetLocal(tmp_cr),
            Instr::GetLocal(tmp_cr, Qual::Unr),
            // [arg, env, cr]
            Instr::CallIndirect,
        ];
        self.reset(&mut inner, tmp_cr);
        let mut body = vec![
            // entry: [arg, clos_ref]
            Instr::SetLocal(tmp_ref),
            Instr::SetLocal(tmp_arg),
            Instr::GetLocal(tmp_ref, Qual::Unr),
            Instr::GetLocal(tmp_arg, q_arg),
            // [clos_ref, arg]
            Instr::ExistUnpack(
                Qual::Unr,
                psi,
                block(
                    vec![arg_rt.clone()],
                    vec![res_rt.clone()],
                    vec![(tmp_cr, Type::unit())],
                ),
                inner,
            ),
            // [clos_ref, res]
            Instr::SetLocal(tmp_res),
            Instr::Drop,
            Instr::GetLocal(tmp_res, q_res),
        ];
        if q_res == Qual::Unr {
            self.reset(&mut body, tmp_res);
        }
        self.reset(&mut body, tmp_ref);
        if q_arg == Qual::Unr {
            // tmp_arg still holds the (unrestricted) argument; clear it.
            let mut r = Vec::new();
            self.reset(&mut r, tmp_arg);
            body.extend(r);
        }
        let fx = vec![
            (tmp_ref, Type::unit()),
            (tmp_arg, Type::unit()),
            (tmp_cr, Type::unit()),
            (tmp_res, Type::unit()),
        ];
        out.push(unpack(vec![arg_rt], vec![res_rt], fx, body));
        Ok((**pb).clone())
    }
}

/// Collects free variables of `e` in first-use order.
fn free_vars(e: &MlExpr, bound: &mut HashSet<String>, out: &mut Vec<String>) {
    let seen = |name: &String, bound: &HashSet<String>, out: &mut Vec<String>| {
        if !bound.contains(name) && !out.contains(name) {
            out.push(name.clone());
        }
    };
    match e {
        MlExpr::Unit | MlExpr::Int(_) | MlExpr::NewRefToLin(_) => {}
        MlExpr::Var(n) => seen(n, bound, out),
        MlExpr::Let(x, e1, e2) => {
            free_vars(e1, bound, out);
            let added = bound.insert(x.clone());
            free_vars(e2, bound, out);
            if added {
                bound.remove(x);
            }
        }
        MlExpr::Seq(a, b) | MlExpr::App(a, b) | MlExpr::Assign(a, b) => {
            free_vars(a, bound, out);
            free_vars(b, bound, out);
        }
        MlExpr::Binop(_, a, b) => {
            free_vars(a, bound, out);
            free_vars(b, bound, out);
        }
        MlExpr::If(c, a, b) => {
            free_vars(c, bound, out);
            free_vars(a, bound, out);
            free_vars(b, bound, out);
        }
        MlExpr::Lam { param, body, .. } => {
            let added = bound.insert(param.clone());
            free_vars(body, bound, out);
            if added {
                bound.remove(param);
            }
        }
        MlExpr::Tuple(es) => {
            for e in es {
                free_vars(e, bound, out);
            }
        }
        MlExpr::Proj(_, e)
        | MlExpr::Inj { e, .. }
        | MlExpr::NewRef(e)
        | MlExpr::Deref(e)
        | MlExpr::Fold(_, e)
        | MlExpr::Unfold(e) => free_vars(e, bound, out),
        MlExpr::Case(e, arms) => {
            free_vars(e, bound, out);
            for (x, arm) in arms {
                let added = bound.insert(x.clone());
                free_vars(arm, bound, out);
                if added {
                    bound.remove(x);
                }
            }
        }
        MlExpr::CallTop { args, .. } => {
            for a in args {
                free_vars(a, bound, out);
            }
        }
    }
}

/// Compiles an ML module to a RichWasm module.
///
/// ML-level errors (unbound variables, ML type mismatches, unsupported
/// constructs) are reported as [`MlError`]; *linearity* errors are
/// deliberately left to the RichWasm checker (§5).
///
/// # Errors
///
/// Returns [`MlError`] for ML-level problems.
pub fn compile_module(m: &MlModule) -> Result<Module, MlError> {
    let n_imports = m.imports.len() as u32;
    let mut cx = ModuleCx {
        sigs: BTreeMap::new(),
        globals: BTreeMap::new(),
        code_funcs: Vec::new(),
        table: Vec::new(),
        first_code_idx: n_imports + m.funs.len() as u32,
    };
    for (i, im) in m.imports.iter().enumerate() {
        cx.sigs.insert(
            im.name.clone(),
            FuncSig {
                idx: i as u32,
                tyvars: 0,
                params: im.params.clone(),
                ret: im.ret.clone(),
            },
        );
    }
    for (i, f) in m.funs.iter().enumerate() {
        cx.sigs.insert(
            f.name.clone(),
            FuncSig {
                idx: n_imports + i as u32,
                tyvars: f.tyvars,
                params: f.params.iter().map(|(_, t)| t.clone()).collect(),
                ret: f.ret.clone(),
            },
        );
    }
    for (i, g) in m.globals.iter().enumerate() {
        cx.globals.insert(g.name.clone(), (i as u32, g.ty.clone()));
    }

    // Globals.
    let mut globals = Vec::new();
    for g in &m.globals {
        let init = compile_global_init(&mut cx, g)?;
        let rt = translate_ty(&g.ty);
        if rt.qual != Qual::Unr {
            return Err(MlError::Unsupported(format!(
                "module global {} has a linear type",
                g.name
            )));
        }
        globals.push(Global {
            exports: vec![],
            kind: GlobalKind::Defined {
                mutable: true,
                ty: (*rt.pre).clone(),
                init,
            },
        });
    }

    // Functions.
    let mut funcs = Vec::new();
    for im in &m.imports {
        funcs.push(Func::Imported {
            exports: vec![],
            module: im.module.clone(),
            name: im.name.clone(),
            ty: import_funtype(im),
        });
    }
    for f in m.funs.iter() {
        let mut comp = FnCompiler::new(&f.params, f.tyvars);
        let mut body = Vec::new();
        let rt = comp.gen(&mut cx, &f.body, &mut body)?;
        if rt != f.ret {
            return terr(format!(
                "{}: body has type {rt:?}, declared {:?}",
                f.name, f.ret
            ));
        }
        let quants = (0..f.tyvars)
            .map(|_| Quantifier::Type {
                lower_qual: Qual::Unr,
                size: Size::Const(ML_SLOT),
                may_contain_caps: false,
            })
            .collect();
        let ty = FunType {
            quants,
            arrow: richwasm::syntax::ArrowType::new(
                f.params.iter().map(|(_, t)| translate_ty(t)).collect(),
                vec![translate_ty(&f.ret)],
            ),
        };
        let extra = comp.n_slots - comp.n_params;
        funcs.push(Func::Defined {
            exports: if f.export {
                vec![f.name.clone()]
            } else {
                vec![]
            },
            ty,
            locals: vec![Size::Const(ML_SLOT); extra as usize],
            body,
        });
    }
    funcs.extend(cx.code_funcs);

    Ok(Module {
        funcs,
        globals,
        table: Table {
            exports: vec![],
            entries: cx.table,
        },
    })
}

/// The RichWasm type of an import declaration.
pub fn import_funtype(im: &crate::ast::MlImport) -> FunType {
    FunType::mono(
        im.params.iter().map(translate_ty).collect(),
        vec![translate_ty(&im.ret)],
    )
}

fn compile_global_init(cx: &mut ModuleCx, g: &MlGlobal) -> Result<Vec<Instr>, MlError> {
    let mut comp = FnCompiler::new(&[], 0);
    let mut out = Vec::new();
    let t = comp.gen(cx, &g.init, &mut out)?;
    if t != g.ty {
        return terr(format!(
            "global {}: initialiser {t:?} vs declared {:?}",
            g.name, g.ty
        ));
    }
    if comp.n_slots > 0 {
        return Err(MlError::Unsupported(format!(
            "global {} initialiser needs local variables; use a constant or allocation \
             expression",
            g.name
        )));
    }
    Ok(out)
}

// Re-export used by types.rs consumers.
pub use crate::types::translate_ty as translate;

#[allow(unused_imports)]
use crate::types::boxed as _boxed_reexport_guard;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::MlFun;
    use richwasm::interp::Runtime;
    use richwasm::syntax::Value;
    use richwasm::typecheck::check_module;

    fn run_main(m: &MlModule) -> Result<Value, String> {
        let rw = compile_module(m).map_err(|e| e.to_string())?;
        check_module(&rw).map_err(|e| format!("richwasm: {e}"))?;
        let mut rt = Runtime::new();
        let idx = rt.instantiate("m", rw).map_err(|e| e.to_string())?;
        let r = rt.invoke(idx, "main", vec![]).map_err(|e| e.to_string())?;
        Ok(r.values[0].clone())
    }

    fn main_fn(body: MlExpr, ret: MlTy) -> MlModule {
        MlModule {
            funs: vec![MlFun {
                name: "main".into(),
                export: true,
                tyvars: 0,
                params: vec![],
                ret,
                body,
            }],
            ..MlModule::default()
        }
    }

    #[test]
    fn arithmetic() {
        let m = main_fn(
            MlExpr::Binop(
                MlBinop::Mul,
                Box::new(MlExpr::Int(6)),
                Box::new(MlExpr::Int(7)),
            ),
            MlTy::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }

    #[test]
    fn let_and_if() {
        // let x = 5 in if x then x + 1 else 0
        let m = main_fn(
            MlExpr::Let(
                "x".into(),
                Box::new(MlExpr::Int(5)),
                Box::new(MlExpr::If(
                    Box::new(MlExpr::Var("x".into())),
                    Box::new(MlExpr::Binop(
                        MlBinop::Add,
                        Box::new(MlExpr::Var("x".into())),
                        Box::new(MlExpr::Int(1)),
                    )),
                    Box::new(MlExpr::Int(0)),
                )),
            ),
            MlTy::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(6));
    }

    #[test]
    fn tuples() {
        let m = main_fn(
            MlExpr::Proj(
                1,
                Box::new(MlExpr::Tuple(vec![MlExpr::Int(1), MlExpr::Int(42)])),
            ),
            MlTy::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }

    #[test]
    fn references() {
        // let r = ref 40 in r := !r + 2; !r
        let r = || Box::new(MlExpr::Var("r".into()));
        let m = main_fn(
            MlExpr::Let(
                "r".into(),
                Box::new(MlExpr::NewRef(Box::new(MlExpr::Int(40)))),
                Box::new(MlExpr::Seq(
                    Box::new(MlExpr::Assign(
                        r(),
                        Box::new(MlExpr::Binop(
                            MlBinop::Add,
                            Box::new(MlExpr::Deref(r())),
                            Box::new(MlExpr::Int(2)),
                        )),
                    )),
                    Box::new(MlExpr::Deref(r())),
                )),
            ),
            MlTy::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }

    #[test]
    fn sums_and_case() {
        let sum = MlTy::Sum(vec![MlTy::Int, MlTy::Unit]);
        let m = main_fn(
            MlExpr::Case(
                Box::new(MlExpr::Inj {
                    sum,
                    tag: 0,
                    e: Box::new(MlExpr::Int(42)),
                }),
                vec![
                    ("x".into(), MlExpr::Var("x".into())),
                    ("_u".into(), MlExpr::Int(0)),
                ],
            ),
            MlTy::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }

    #[test]
    fn closures() {
        // let y = 40 in (fun x -> x + y) 2
        let m = main_fn(
            MlExpr::Let(
                "y".into(),
                Box::new(MlExpr::Int(40)),
                Box::new(MlExpr::App(
                    Box::new(MlExpr::Lam {
                        param: "x".into(),
                        param_ty: MlTy::Int,
                        ret_ty: MlTy::Int,
                        body: Box::new(MlExpr::Binop(
                            MlBinop::Add,
                            Box::new(MlExpr::Var("x".into())),
                            Box::new(MlExpr::Var("y".into())),
                        )),
                    }),
                    Box::new(MlExpr::Int(2)),
                )),
            ),
            MlTy::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }

    #[test]
    fn polymorphic_identity() {
        let m = MlModule {
            funs: vec![
                MlFun {
                    name: "id".into(),
                    export: false,
                    tyvars: 1,
                    params: vec![("x".into(), MlTy::Var(0))],
                    ret: MlTy::Var(0),
                    body: MlExpr::Var("x".into()),
                },
                MlFun {
                    name: "main".into(),
                    export: true,
                    tyvars: 0,
                    params: vec![],
                    ret: MlTy::Int,
                    body: MlExpr::CallTop {
                        name: "id".into(),
                        tyargs: vec![MlTy::Int],
                        args: vec![MlExpr::Int(42)],
                    },
                },
            ],
            ..MlModule::default()
        };
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }

    #[test]
    fn recursive_type_fold_unfold() {
        // rec t. (unit + t) — build fold(inj 0 ()) and unfold+case it.
        let rec = MlTy::Rec(Box::new(MlTy::Sum(vec![MlTy::Unit, MlTy::Var(0)])));
        let unfolded_sum = MlTy::Sum(vec![MlTy::Unit, rec.clone()]);
        let m = main_fn(
            MlExpr::Case(
                Box::new(MlExpr::Unfold(Box::new(MlExpr::Fold(
                    rec,
                    Box::new(MlExpr::Inj {
                        sum: unfolded_sum,
                        tag: 0,
                        e: Box::new(MlExpr::Unit),
                    }),
                )))),
                vec![
                    ("_u".into(), MlExpr::Int(42)),
                    ("_r".into(), MlExpr::Int(0)),
                ],
            ),
            MlTy::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }

    #[test]
    fn module_global_state() {
        // A counter closed over by exported functions.
        let m = MlModule {
            globals: vec![MlGlobal {
                name: "counter".into(),
                ty: MlTy::Ref(Box::new(MlTy::Int)),
                init: MlExpr::NewRef(Box::new(MlExpr::Int(0))),
            }],
            funs: vec![MlFun {
                name: "main".into(),
                export: true,
                tyvars: 0,
                params: vec![],
                ret: MlTy::Int,
                body: MlExpr::Seq(
                    Box::new(MlExpr::Assign(
                        Box::new(MlExpr::Var("counter".into())),
                        Box::new(MlExpr::Binop(
                            MlBinop::Add,
                            Box::new(MlExpr::Deref(Box::new(MlExpr::Var("counter".into())))),
                            Box::new(MlExpr::Int(21)),
                        )),
                    )),
                    Box::new(MlExpr::Binop(
                        MlBinop::Mul,
                        Box::new(MlExpr::Deref(Box::new(MlExpr::Var("counter".into())))),
                        Box::new(MlExpr::Int(2)),
                    )),
                ),
            }],
            ..MlModule::default()
        };
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }

    #[test]
    fn compiled_modules_typecheck() {
        // Type preservation (§5): every compiled module passes the
        // RichWasm checker.
        let sum = MlTy::Sum(vec![MlTy::Int, MlTy::Unit]);
        let programs: Vec<MlModule> = vec![
            main_fn(MlExpr::Int(1), MlTy::Int),
            main_fn(
                MlExpr::Case(
                    Box::new(MlExpr::Inj {
                        sum,
                        tag: 1,
                        e: Box::new(MlExpr::Unit),
                    }),
                    vec![
                        ("x".into(), MlExpr::Var("x".into())),
                        ("_".into(), MlExpr::Int(9)),
                    ],
                ),
                MlTy::Int,
            ),
        ];
        for p in &programs {
            let rw = compile_module(p).unwrap();
            check_module(&rw).unwrap();
        }
    }
}
