//! Table / call-graph discipline pass.
//!
//! Resolves every `call_indirect` to its candidate set (element-segment
//! entries with a structurally equal type), flags sites that can only
//! trap, reports functions unreachable from any root (exports, the
//! start function, table entries), and derives a module-local bound on
//! call-stack depth for default stack sizing.

use richwasm_wasm::ast::{ExportKind, ImportKind, Module, WInstr};

use crate::{Diagnostic, Pass, Severity, MODULE_SCOPE};

/// Output of the call-graph pass.
#[derive(Debug, Clone, Default)]
pub struct CallGraphInfo {
    /// Module-local bound on call-stack depth: the deepest chain of
    /// frames attributable to this module's functions, with an imported
    /// callee counted as one frame. `None` when recursion or an
    /// imported (shared) table makes it unbounded/unknown.
    pub max_call_depth: Option<u32>,
    /// Findings (always `Warn` severity).
    pub diagnostics: Vec<Diagnostic>,
}

/// One defined function's outgoing calls.
struct FuncCalls {
    /// Direct callees (global indices) with call-site offsets.
    direct: Vec<(u32, u32)>,
    /// `call_indirect` sites: (offset, type index).
    indirect: Vec<(u32, u32)>,
}

fn scan_seq(body: &[WInstr], off: &mut u32, out: &mut FuncCalls) {
    for ins in body {
        let o = *off;
        *off += 1;
        match ins {
            WInstr::Call(f) => out.direct.push((o, *f)),
            WInstr::CallIndirect(ti) => out.indirect.push((o, *ti)),
            WInstr::Block(_, b) | WInstr::Loop(_, b) => scan_seq(b, off, out),
            WInstr::If(_, t, e) => {
                scan_seq(t, off, out);
                scan_seq(e, off, out);
            }
            _ => {}
        }
    }
}

/// Runs the call-graph pass over a validated module.
#[must_use]
pub fn callgraph(m: &Module) -> CallGraphInfo {
    let n_imports = m.num_func_imports() as u32;
    let nf = m.funcs.len();
    let table_imported = m
        .imports
        .iter()
        .any(|im| matches!(im.kind, ImportKind::Table(_)));
    let elem_funcs: Vec<u32> = m
        .elems
        .iter()
        .flat_map(|e| e.funcs.iter().copied())
        .collect();
    let candidates = |ti: u32| -> Option<Vec<u32>> {
        if table_imported {
            return None; // other modules contribute entries we cannot see
        }
        let ft = m.types.get(ti as usize)?;
        Some(
            elem_funcs
                .iter()
                .copied()
                .filter(|&f| m.func_type(f) == Some(ft))
                .collect(),
        )
    };

    let calls: Vec<FuncCalls> = m
        .funcs
        .iter()
        .map(|f| {
            let mut fc = FuncCalls {
                direct: Vec::new(),
                indirect: Vec::new(),
            };
            let mut off = 0u32;
            scan_seq(&f.body, &mut off, &mut fc);
            fc
        })
        .collect();

    let mut diagnostics = Vec::new();
    let mut any_unknown_indirect = false;
    for (fi, fc) in calls.iter().enumerate() {
        for &(off, ti) in &fc.indirect {
            match candidates(ti) {
                Some(cands) if cands.is_empty() => diagnostics.push(Diagnostic {
                    func: n_imports + fi as u32,
                    offset: off,
                    pass: Pass::CallGraph,
                    severity: Severity::Warn,
                    message: format!(
                        "call_indirect (type {ti}) has no type-compatible table entry: \
                         traps if executed"
                    ),
                }),
                Some(_) => {}
                None => any_unknown_indirect = true,
            }
        }
    }
    if any_unknown_indirect {
        diagnostics.push(Diagnostic {
            func: MODULE_SCOPE,
            offset: 0,
            pass: Pass::CallGraph,
            severity: Severity::Warn,
            message: "call_indirect targets resolve through an imported table; \
                      candidate sets are unknown to per-module analysis"
                .into(),
        });
    }

    // Reachability: roots are exported functions, the start function and
    // every element-segment entry (an indirect call can only land on a
    // table entry, so table entries as roots cover indirect edges).
    let mut reachable = vec![false; nf];
    let mut work: Vec<u32> = Vec::new();
    let mark = |f: u32, work: &mut Vec<u32>, reachable: &mut Vec<bool>| {
        if f >= n_imports {
            let i = (f - n_imports) as usize;
            if i < nf && !reachable[i] {
                reachable[i] = true;
                work.push(f);
            }
        }
    };
    for e in &m.exports {
        if let ExportKind::Func(i) = e.kind {
            mark(i, &mut work, &mut reachable);
        }
    }
    if let Some(s) = m.start {
        mark(s, &mut work, &mut reachable);
    }
    for &f in &elem_funcs {
        mark(f, &mut work, &mut reachable);
    }
    while let Some(f) = work.pop() {
        let fi = (f - n_imports) as usize;
        for &(_, callee) in &calls[fi].direct {
            mark(callee, &mut work, &mut reachable);
        }
    }
    for (fi, r) in reachable.iter().enumerate() {
        if !r {
            diagnostics.push(Diagnostic {
                func: n_imports + fi as u32,
                offset: 0,
                pass: Pass::CallGraph,
                severity: Severity::Warn,
                message: "function is unreachable: not exported, not in the table, \
                          not the start function, and never called"
                    .into(),
            });
        }
    }

    // Call-depth bound: memoised DFS; recursion or an unknown indirect
    // candidate set poisons the bound to None.
    fn depth(
        fi: usize,
        calls: &[FuncCalls],
        n_imports: u32,
        candidates: &dyn Fn(u32) -> Option<Vec<u32>>,
        memo: &mut [Option<Option<u32>>],
        visiting: &mut [bool],
    ) -> Option<u32> {
        if let Some(d) = memo[fi] {
            return d;
        }
        if visiting[fi] {
            return None; // recursion: unbounded
        }
        visiting[fi] = true;
        let mut callees: Vec<u32> = calls[fi].direct.iter().map(|&(_, c)| c).collect();
        let mut unknown = false;
        for &(_, ti) in &calls[fi].indirect {
            match candidates(ti) {
                Some(cands) => callees.extend(cands),
                None => unknown = true,
            }
        }
        let d = if unknown {
            None
        } else {
            let mut deepest = 0u32;
            let mut ok = true;
            for c in callees {
                let sub = if c < n_imports {
                    Some(1)
                } else {
                    depth(
                        (c - n_imports) as usize,
                        calls,
                        n_imports,
                        candidates,
                        memo,
                        visiting,
                    )
                };
                match sub {
                    Some(s) => deepest = deepest.max(s),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            ok.then(|| 1 + deepest)
        };
        visiting[fi] = false;
        memo[fi] = Some(d);
        d
    }

    let mut memo: Vec<Option<Option<u32>>> = vec![None; nf];
    let mut visiting = vec![false; nf];
    let mut max_depth = Some(0u32);
    for fi in 0..nf {
        let d = depth(fi, &calls, n_imports, &candidates, &mut memo, &mut visiting);
        max_depth = match (max_depth, d) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
    }
    if nf == 0 {
        max_depth = Some(0);
    }

    CallGraphInfo {
        max_call_depth: max_depth,
        diagnostics,
    }
}
