//! A small forward/backward dataflow framework over [`Cfg`]s.
//!
//! Facts form a join semilattice; the solver runs a worklist to the
//! least fixpoint. Forward passes propagate a fact from the entry block
//! along terminator successors; backward passes propagate from
//! function-exiting terminators against them.

use crate::cfg::{BlockId, Cfg};

/// A join-semilattice fact.
pub trait JoinLattice: Clone {
    /// Joins `other` into `self`; returns `true` if `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// Direction of a dataflow pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry block along successor edges.
    Forward,
    /// Facts flow from function-exiting terminators against successor
    /// edges.
    Backward,
}

/// A dataflow pass: lattice, direction, boundary condition, and
/// per-block transfer function.
pub trait DataflowPass {
    /// The lattice of facts.
    type Fact: JoinLattice;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The fact at the boundary: function entry (forward) or function
    /// exit (backward).
    fn boundary(&self) -> Self::Fact;

    /// The initial "no information" fact.
    fn bottom(&self) -> Self::Fact;

    /// Transfers a fact across `block`. For forward passes the input is
    /// the fact at block entry and the output applies to its successors;
    /// for backward passes the input is the joined fact of its
    /// successors (plus the boundary when the terminator exits the
    /// function) and the output is the fact at block entry.
    fn transfer(&self, cfg: &Cfg, block: BlockId, fact: &Self::Fact) -> Self::Fact;
}

/// Runs `pass` to its least fixpoint.
///
/// Returns one fact per block: the block-entry fact for both
/// directions (for forward passes this is the joined incoming fact; for
/// backward passes the transferred outgoing fact).
pub fn solve<P: DataflowPass>(cfg: &Cfg, pass: &P) -> Vec<P::Fact> {
    match pass.direction() {
        Direction::Forward => solve_forward(cfg, pass),
        Direction::Backward => solve_backward(cfg, pass),
    }
}

// Both directions run *ordered sweeps* over dirty flags instead of an
// unordered worklist. A structured-Wasm CFG's blocks are numbered in
// layout order, where every edge except a loop back edge goes from a
// lower to a higher id — so a single sweep in direction order (forward:
// ascending, backward: descending) is a topological pass that converges
// on an acyclic CFG outright, and each additional sweep accounts for
// one level of back-edge feedback. An unordered LIFO worklist on the
// same graph relaxes `if`-diamond chains once per distinct path length;
// the sweeps keep the solver linear per round.

fn solve_forward<P: DataflowPass>(cfg: &Cfg, pass: &P) -> Vec<P::Fact> {
    let n = cfg.blocks.len();
    let mut facts: Vec<P::Fact> = vec![pass.bottom(); n];
    if n == 0 {
        return facts;
    }
    facts[cfg.entry()].join(&pass.boundary());
    let mut dirty = vec![false; n];
    dirty[cfg.entry()] = true;
    let mut pending = true;
    while pending {
        pending = false;
        for b in 0..n {
            if !dirty[b] {
                continue;
            }
            dirty[b] = false;
            let out = pass.transfer(cfg, b, &facts[b]);
            cfg.blocks[b].term.for_each_successor(|s| {
                if facts[s].join(&out) && !dirty[s] {
                    dirty[s] = true;
                    // A back edge (s ≤ b) lands behind the sweep cursor
                    // and needs another pass; a forward edge is picked
                    // up later in this one.
                    pending |= s <= b;
                }
            });
        }
    }
    facts
}

fn solve_backward<P: DataflowPass>(cfg: &Cfg, pass: &P) -> Vec<P::Fact> {
    let n = cfg.blocks.len();
    let mut facts: Vec<P::Fact> = vec![pass.bottom(); n];
    if n == 0 {
        return facts;
    }
    // Predecessor map for marking re-runs.
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        blk.term.for_each_successor(|s| preds[s].push(b));
    }
    let mut dirty = vec![true; n];
    let mut pending = true;
    while pending {
        pending = false;
        for b in (0..n).rev() {
            if !dirty[b] {
                continue;
            }
            dirty[b] = false;
            let mut out = pass.bottom();
            if cfg.blocks[b].term.exits_function() {
                out.join(&pass.boundary());
            }
            cfg.blocks[b].term.for_each_successor(|s| {
                out.join(&facts[s]);
            });
            let new = pass.transfer(cfg, b, &out);
            if facts[b].join(&new) {
                for &p in &preds[b] {
                    if !dirty[p] {
                        dirty[p] = true;
                        // Against the descending sweep, an edge from a
                        // *lower-numbered* predecessor is still ahead of
                        // the cursor; p ≥ b means another pass.
                        pending |= p >= b;
                    }
                }
            }
        }
    }
    facts
}
