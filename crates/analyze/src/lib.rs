//! # richwasm-analyze
//!
//! CFG + dataflow static analysis over the lowered Wasm AST
//! (`richwasm-wasm`). Four passes run on every module:
//!
//! 1. **Re-verifier** ([`verify`]) — an independent abstract
//!    stack/locals checker over the linearised CFG, cross-checked
//!    against `validate.rs`: any accept/reject disagreement is a bug in
//!    one of the two and surfaces as a `Deny` diagnostic.
//! 2. **Fuel cost** ([`cost`]) — sound per-function lower bounds on
//!    interpreter steps (used by `EngineServer` to reject infeasible
//!    budgets) and upper bounds where loops are boundable.
//! 3. **Call graph** ([`callgraph`]) — `call_indirect` candidate sets,
//!    unreachable functions, and a module-local call-depth bound.
//! 4. **Dead code** ([`deadcode`]) — unreachable-block lint.
//!
//! The pipeline runs [`analyze_module`] at `Artifact` build time
//! (`Stage::Analyze`); diagnostics carry a [`Severity`] so the engine's
//! `analysis: Off | Warn | Deny` knob can decide what to do with them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod cost;
pub mod dataflow;
pub mod deadcode;
pub mod verify;

use std::fmt;

use richwasm_wasm::ast::Module;
use richwasm_wasm::validate_module;

pub use cfg::{build_cfg, Cfg, CfgError};
pub use cost::{cost_report, Bound, CostReport, FuncCost, NEVER};
pub use verify::{reverify_module, VerifyError};

/// `Diagnostic::func` value for findings not tied to one function.
pub const MODULE_SCOPE: u32 = u32::MAX;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never fails a build.
    Warn,
    /// A safety-relevant finding: fails the build under `analysis: Deny`.
    Deny,
}

impl Severity {
    /// Stable wire code (artifact serialisation).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Severity::Warn => 0,
            Severity::Deny => 1,
        }
    }

    /// Inverse of [`Severity::code`].
    #[must_use]
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Severity::Warn),
            1 => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// Which pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// The abstract stack/locals re-verifier.
    Verify,
    /// The static fuel-cost analysis.
    Cost,
    /// The table/call-graph discipline pass.
    CallGraph,
    /// The dead-code lint.
    DeadCode,
}

impl Pass {
    /// Stable wire code (artifact serialisation).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Pass::Verify => 0,
            Pass::Cost => 1,
            Pass::CallGraph => 2,
            Pass::DeadCode => 3,
        }
    }

    /// Inverse of [`Pass::code`].
    #[must_use]
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Pass::Verify),
            1 => Some(Pass::Cost),
            2 => Some(Pass::CallGraph),
            3 => Some(Pass::DeadCode),
            _ => None,
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pass::Verify => write!(f, "verify"),
            Pass::Cost => write!(f, "cost"),
            Pass::CallGraph => write!(f, "callgraph"),
            Pass::DeadCode => write!(f, "deadcode"),
        }
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Global function index, or [`MODULE_SCOPE`].
    pub func: u32,
    /// Pre-order instruction offset within the function body (0 when
    /// not tied to an instruction).
    pub offset: u32,
    /// The producing pass.
    pub pass: Pass,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}:{}] ", self.pass, self.severity)?;
        if self.func != MODULE_SCOPE {
            write!(f, "func {} @{}: ", self.func, self.offset)?;
        }
        write!(f, "{}", self.message)
    }
}

/// The full analysis result for one module, cached on the `Artifact`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisReport {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// The fuel-cost summary.
    pub cost: CostReport,
}

impl AnalysisReport {
    /// The `Deny`-severity findings.
    #[must_use]
    pub fn deny_diagnostics(&self) -> Vec<Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .cloned()
            .collect()
    }

    /// Whether any `Deny`-severity finding fired.
    #[must_use]
    pub fn has_deny(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }
}

/// Analysis rejected a module: the `Deny`-severity findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeError {
    /// The findings that caused the rejection.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "static analysis rejected the module ({} finding(s))",
            self.diagnostics.len()
        )?;
        for d in &self.diagnostics {
            write!(f, "; {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalyzeError {}

fn deny(pass: Pass, message: String) -> Diagnostic {
    Diagnostic {
        func: MODULE_SCOPE,
        offset: 0,
        pass,
        severity: Severity::Deny,
        message,
    }
}

/// Runs all four passes over a module.
///
/// The re-verifier always runs and is cross-checked against
/// `validate_module`; the remaining passes need a CFG and only run when
/// both checkers accept.
#[must_use]
pub fn analyze_module(m: &Module) -> AnalysisReport {
    let validator = validate_module(m);
    let reverifier = reverify_module(m);
    match (&validator, &reverifier) {
        (Ok(()), Ok(())) => {}
        (Err(v), Err(r)) => {
            return AnalysisReport {
                diagnostics: vec![deny(
                    Pass::Verify,
                    format!("module rejected: {r} (validator agrees: {v})"),
                )],
                cost: CostReport::default(),
            };
        }
        (Ok(()), Err(r)) => {
            return AnalysisReport {
                diagnostics: vec![deny(
                    Pass::Verify,
                    format!(
                        "checker disagreement: re-verifier rejected a validator-accepted \
                         module: {r}"
                    ),
                )],
                cost: CostReport::default(),
            };
        }
        (Err(v), Ok(())) => {
            return AnalysisReport {
                diagnostics: vec![deny(
                    Pass::Verify,
                    format!(
                        "checker disagreement: re-verifier accepted a validator-rejected \
                         module: {v}"
                    ),
                )],
                cost: CostReport::default(),
            };
        }
    }

    let n_imports = m.num_func_imports() as u32;
    let mut cfgs = Vec::with_capacity(m.funcs.len());
    for (fi, f) in m.funcs.iter().enumerate() {
        match build_cfg(m, f) {
            Ok(cfg) => cfgs.push(cfg),
            Err(e) => {
                // Unreachable on a validated module; defensive.
                return AnalysisReport {
                    diagnostics: vec![deny(
                        Pass::Verify,
                        format!("cfg construction failed on validated function {fi}: {e}"),
                    )],
                    cost: CostReport::default(),
                };
            }
        }
    }

    let mut diagnostics = Vec::new();
    let mut cost = cost_report(m, &cfgs);
    for fc in &cost.funcs {
        if fc.min_steps == NEVER {
            diagnostics.push(Diagnostic {
                func: fc.func,
                offset: 0,
                pass: Pass::Cost,
                severity: Severity::Warn,
                message: "no execution path completes normally (every path traps)".into(),
            });
        }
    }

    let cg = callgraph::callgraph(m);
    cost.max_call_depth = cg.max_call_depth;
    diagnostics.extend(cg.diagnostics);

    for (i, cfg) in cfgs.iter().enumerate() {
        diagnostics.extend(deadcode::deadcode_diags(n_imports + i as u32, cfg));
    }

    AnalysisReport { diagnostics, cost }
}
