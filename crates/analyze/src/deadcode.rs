//! Dead-code / unreachable-block lint.
//!
//! A forward reachability pass over the [`Cfg`] (the simplest client of
//! the dataflow framework): a block is live iff some path from the
//! function entry reaches it. Dead blocks that contain real
//! instructions — code after an unconditional branch, `return` or
//! `unreachable` — are reported, one diagnostic per maximal dead run.

use crate::cfg::{BlockId, Cfg};
use crate::dataflow::{solve, DataflowPass, Direction, JoinLattice};
use crate::{Diagnostic, Pass, Severity};

/// Forward reachability fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Reached(bool);

impl JoinLattice for Reached {
    fn join(&mut self, other: &Self) -> bool {
        if other.0 && !self.0 {
            self.0 = true;
            true
        } else {
            false
        }
    }
}

struct ReachPass;

impl DataflowPass for ReachPass {
    type Fact = Reached;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Reached {
        Reached(true)
    }

    fn bottom(&self) -> Reached {
        Reached(false)
    }

    fn transfer(&self, _cfg: &Cfg, _block: BlockId, fact: &Reached) -> Reached {
        *fact
    }
}

/// Blocks unreachable from the function entry.
#[must_use]
pub fn dead_blocks(cfg: &Cfg) -> Vec<BlockId> {
    solve(cfg, &ReachPass)
        .iter()
        .enumerate()
        .filter_map(|(b, r)| (!r.0).then_some(b))
        .collect()
}

/// Lints one function's CFG, attributing diagnostics to global function
/// index `func`.
#[must_use]
pub fn deadcode_diags(func: u32, cfg: &Cfg) -> Vec<Diagnostic> {
    let dead = dead_blocks(cfg);
    let is_dead = {
        let mut v = vec![false; cfg.blocks.len()];
        for &b in &dead {
            v[b] = true;
        }
        v
    };
    let mut out = Vec::new();
    let mut b = 0;
    while b < cfg.blocks.len() {
        if !is_dead[b] {
            b += 1;
            continue;
        }
        // One maximal run of dead blocks; report it only if it contains
        // real instructions (pure structural scaffolding — empty merge
        // blocks after diverging arms — is noise).
        let mut first_instr: Option<u32> = None;
        let mut n_instrs = 0usize;
        while b < cfg.blocks.len() && is_dead[b] {
            let blk = &cfg.blocks[b];
            n_instrs += blk.instrs.len();
            if first_instr.is_none() {
                if let Some(&(off, _)) = blk.instrs.first() {
                    first_instr = Some(off);
                } else if blk.term.step_cost() > 0 {
                    first_instr = Some(blk.term_offset);
                    n_instrs += 1;
                }
            } else if blk.term.step_cost() > 0 {
                n_instrs += 1;
            }
            b += 1;
        }
        if let Some(off) = first_instr {
            if n_instrs > 0 {
                out.push(Diagnostic {
                    func,
                    offset: off,
                    pass: Pass::DeadCode,
                    severity: Severity::Warn,
                    message: format!("unreachable code ({n_instrs} dead instruction(s))"),
                });
            }
        }
    }
    out
}
