//! Independent abstract stack/locals re-verification.
//!
//! A second checker in this repo's differential tradition: instead of
//! recursing over the structured tree like `validate.rs`, it walks the
//! [`Cfg`]'s basic blocks **linearly in layout order**, replaying the
//! validator's control-frame discipline from the explicit terminators.
//! Value-stack heights and types are recomputed per block edge from
//! scratch. Accept/reject must agree with `validate_module` on every
//! module — any disagreement is a bug in one of the two checkers (the
//! `analyze_module` entry point turns it into a `Deny` diagnostic).

use std::fmt;

use richwasm_wasm::ast::*;
use richwasm_wasm::validate::validate_module;

use crate::cfg::{build_cfg, Cfg, Term};

/// A re-verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The offending function index (defined-function position), if the
    /// failure is inside a body.
    pub func: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            Some(i) => write!(f, "re-verification failed (function {i}): {}", self.message),
            None => write!(f, "re-verification failed: {}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

fn err<T>(msg: impl Into<String>) -> Result<T, String> {
    Err(msg.into())
}

/// Module-level typing context shared by every function body.
pub struct ModuleCtx {
    /// Global types `(type, mutable)`, imports first.
    pub globals: Vec<(ValType, bool)>,
    /// Whether a memory is in scope (defined or imported).
    pub has_memory: bool,
    /// Whether a table is in scope (defined or imported).
    pub has_table: bool,
}

/// Builds the module-level context, mirroring the validator's
/// import/global prechecks.
///
/// # Errors
///
/// Fails on the same module-level conditions `validate.rs` rejects.
pub fn module_ctx(m: &Module) -> Result<ModuleCtx, VerifyError> {
    let mut globals: Vec<(ValType, bool)> = Vec::new();
    let mut has_memory = m.memory.is_some();
    let mut has_table = m.table.is_some();
    for im in &m.imports {
        match im.kind {
            ImportKind::Global(t, mu) => globals.push((t, mu)),
            ImportKind::Memory(_) => has_memory = true,
            ImportKind::Table(_) => has_table = true,
            ImportKind::Func(ti) => {
                if m.types.get(ti as usize).is_none() {
                    return Err(VerifyError {
                        func: None,
                        message: format!("import {}.{}: unknown type {ti}", im.module, im.name),
                    });
                }
            }
        }
    }
    for g in &m.globals {
        let ok = matches!(
            (&g.init, g.ty),
            (WInstr::I32Const(_), ValType::I32)
                | (WInstr::I64Const(_), ValType::I64)
                | (WInstr::F32Const(_), ValType::F32)
                | (WInstr::F64Const(_), ValType::F64)
        );
        if !ok {
            return Err(VerifyError {
                func: None,
                message: "global initialiser must be a constant of the declared type".into(),
            });
        }
        globals.push((g.ty, g.mutable));
    }
    Ok(ModuleCtx {
        globals,
        has_memory,
        has_table,
    })
}

/// An abstract operand: a known type or the post-`unreachable`
/// polymorphic unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Av {
    T(ValType),
    Unknown,
}

/// One simulated control frame (the validator's `Ctrl`).
struct SimFrame {
    end: Vec<ValType>,
    height: usize,
    unreachable: bool,
}

struct Sim<'m> {
    m: &'m Module,
    ctx: &'m ModuleCtx,
    locals: Vec<ValType>,
    ops: Vec<Av>,
    frames: Vec<SimFrame>,
}

impl Sim<'_> {
    fn push(&mut self, t: ValType) {
        self.ops.push(Av::T(t));
    }

    fn pop_any(&mut self) -> Result<Av, String> {
        let frame = self.frames.last().expect("frame");
        if self.ops.len() == frame.height {
            if frame.unreachable {
                return Ok(Av::Unknown);
            }
            return err("stack underflow");
        }
        Ok(self.ops.pop().expect("nonempty"))
    }

    fn pop(&mut self, expect: ValType) -> Result<(), String> {
        match self.pop_any()? {
            Av::T(t) if t == expect => Ok(()),
            Av::T(t) => err(format!("expected {expect}, found {t}")),
            Av::Unknown => Ok(()),
        }
    }

    fn pop_many(&mut self, ts: &[ValType]) -> Result<(), String> {
        for t in ts.iter().rev() {
            self.pop(*t)?;
        }
        Ok(())
    }

    fn push_many(&mut self, ts: &[ValType]) {
        for t in ts {
            self.push(*t);
        }
    }

    fn push_frame(&mut self, end: Vec<ValType>) {
        self.frames.push(SimFrame {
            end,
            height: self.ops.len(),
            unreachable: false,
        });
    }

    fn pop_frame(&mut self) -> Result<Vec<ValType>, String> {
        let end = self.frames.last().expect("frame").end.clone();
        let height = self.frames.last().expect("frame").height;
        self.pop_many(&end)?;
        if self.ops.len() != height {
            return err("values remaining at end of block");
        }
        self.frames.pop();
        Ok(end)
    }

    fn set_unreachable(&mut self) {
        let frame = self.frames.last_mut().expect("frame");
        self.ops.truncate(frame.height);
        frame.unreachable = true;
    }

    /// One plain (non-control) instruction — ports the validator's
    /// straight-line arms verbatim.
    fn step(&mut self, e: &WInstr) -> Result<(), String> {
        use ValType::*;
        use WInstr::*;
        match e {
            Nop => {}
            Call(f) => {
                let ft = self
                    .m
                    .func_type(*f)
                    .cloned()
                    .ok_or(format!("unknown function {f}"))?;
                self.pop_many(&ft.params)?;
                self.push_many(&ft.results);
            }
            CallIndirect(ti) => {
                if !self.ctx.has_table {
                    return err("call_indirect without a table");
                }
                let ft = self
                    .m
                    .types
                    .get(*ti as usize)
                    .cloned()
                    .ok_or(format!("unknown type {ti}"))?;
                self.pop(I32)?;
                self.pop_many(&ft.params)?;
                self.push_many(&ft.results);
            }
            Drop => {
                self.pop_any()?;
            }
            Select => {
                self.pop(I32)?;
                let a = self.pop_any()?;
                let b = self.pop_any()?;
                match (a, b) {
                    (Av::T(x), Av::T(y)) if x != y => return err("select type mismatch"),
                    (Av::T(x), _) | (_, Av::T(x)) => self.push(x),
                    (Av::Unknown, Av::Unknown) => self.ops.push(Av::Unknown),
                }
            }
            LocalGet(i) => {
                let t = *self
                    .locals
                    .get(*i as usize)
                    .ok_or(format!("unknown local {i}"))?;
                self.push(t);
            }
            LocalSet(i) => {
                let t = *self
                    .locals
                    .get(*i as usize)
                    .ok_or(format!("unknown local {i}"))?;
                self.pop(t)?;
            }
            LocalTee(i) => {
                let t = *self
                    .locals
                    .get(*i as usize)
                    .ok_or(format!("unknown local {i}"))?;
                self.pop(t)?;
                self.push(t);
            }
            GlobalGet(i) => {
                let (t, _) = *self
                    .ctx
                    .globals
                    .get(*i as usize)
                    .ok_or(format!("unknown global {i}"))?;
                self.push(t);
            }
            GlobalSet(i) => {
                let (t, mu) = *self
                    .ctx
                    .globals
                    .get(*i as usize)
                    .ok_or(format!("unknown global {i}"))?;
                if !mu {
                    return err(format!("global {i} is immutable"));
                }
                self.pop(t)?;
            }
            Load(t, _) => {
                if !self.ctx.has_memory {
                    return err("load without a memory");
                }
                self.pop(I32)?;
                self.push(*t);
            }
            Store(t, _) => {
                if !self.ctx.has_memory {
                    return err("store without a memory");
                }
                self.pop(*t)?;
                self.pop(I32)?;
            }
            Load8U(_) => {
                if !self.ctx.has_memory {
                    return err("load without a memory");
                }
                self.pop(I32)?;
                self.push(I32);
            }
            Store8(_) => {
                if !self.ctx.has_memory {
                    return err("store without a memory");
                }
                self.pop(I32)?;
                self.pop(I32)?;
            }
            MemorySize => {
                if !self.ctx.has_memory {
                    return err("memory.size without a memory");
                }
                self.push(I32);
            }
            MemoryGrow => {
                if !self.ctx.has_memory {
                    return err("memory.grow without a memory");
                }
                self.pop(I32)?;
                self.push(I32);
            }
            I32Const(_) => self.push(I32),
            I64Const(_) => self.push(I64),
            F32Const(_) => self.push(F32),
            F64Const(_) => self.push(F64),
            IUn(w, _) | ITest(w) => {
                let t = int_ty(*w);
                self.pop(t)?;
                self.push(if matches!(e, ITest(_)) { I32 } else { t });
            }
            IBin(w, _) => {
                let t = int_ty(*w);
                self.pop(t)?;
                self.pop(t)?;
                self.push(t);
            }
            IRel(w, _) => {
                let t = int_ty(*w);
                self.pop(t)?;
                self.pop(t)?;
                self.push(I32);
            }
            FUn(w, _) => {
                let t = float_ty(*w);
                self.pop(t)?;
                self.push(t);
            }
            FBin(w, _) => {
                let t = float_ty(*w);
                self.pop(t)?;
                self.pop(t)?;
                self.push(t);
            }
            FRel(w, _) => {
                let t = float_ty(*w);
                self.pop(t)?;
                self.pop(t)?;
                self.push(I32);
            }
            I32WrapI64 => {
                self.pop(I64)?;
                self.push(I32);
            }
            I64ExtendI32(_) => {
                self.pop(I32)?;
                self.push(I64);
            }
            ITruncF(iw, fw, _) => {
                self.pop(float_ty(*fw))?;
                self.push(int_ty(*iw));
            }
            FConvertI(fw, iw, _) => {
                self.pop(int_ty(*iw))?;
                self.push(float_ty(*fw));
            }
            F32DemoteF64 => {
                self.pop(F64)?;
                self.push(F32);
            }
            F64PromoteF32 => {
                self.pop(F32)?;
                self.push(F64);
            }
            IReinterpretF(w) => {
                self.pop(float_ty(*w))?;
                self.push(int_ty(*w));
            }
            FReinterpretI(w) => {
                self.pop(int_ty(*w))?;
                self.push(float_ty(*w));
            }
            Unreachable | Block(..) | Loop(..) | If(..) | Br(_) | BrIf(_) | BrTable(..)
            | Return => {
                return err("control instruction inside a basic block (CFG builder bug)");
            }
        }
        Ok(())
    }
}

fn int_ty(w: Width) -> ValType {
    match w {
        Width::W32 => ValType::I32,
        Width::W64 => ValType::I64,
    }
}

fn float_ty(w: Width) -> ValType {
    match w {
        Width::W32 => ValType::F32,
        Width::W64 => ValType::F64,
    }
}

/// Re-verifies one function body against its CFG by linear abstract
/// interpretation over the blocks in layout order.
///
/// # Errors
///
/// Returns the first typing violation found (as a bare message; the
/// caller attaches the function index).
pub fn verify_func(m: &Module, ctx: &ModuleCtx, f: &FuncDef, cfg: &Cfg) -> Result<(), String> {
    let ft = m
        .types
        .get(f.type_idx as usize)
        .ok_or("unknown type".to_string())?;
    let mut locals = ft.params.clone();
    locals.extend(&f.locals);
    let mut sim = Sim {
        m,
        ctx,
        locals,
        ops: Vec::new(),
        frames: Vec::new(),
    };
    sim.push_frame(ft.results.clone());
    for blk in &cfg.blocks {
        for (_, ins) in &blk.instrs {
            sim.step(ins)?;
        }
        match &blk.term {
            Term::Enter { frame, .. } => {
                let fr = &cfg.frames[*frame];
                sim.pop_many(&fr.params)?;
                sim.push_frame(fr.results.clone());
                sim.push_many(&fr.params);
            }
            Term::EnterIf { then_frame, .. } => {
                sim.pop(ValType::I32)?;
                let fr = &cfg.frames[*then_frame];
                sim.pop_many(&fr.params)?;
                sim.push_frame(fr.results.clone());
                sim.push_many(&fr.params);
            }
            Term::EndThen { else_frame, .. } => {
                sim.pop_frame()?;
                let fr = &cfg.frames[*else_frame];
                sim.push_frame(fr.results.clone());
                sim.push_many(&fr.params);
            }
            Term::End { .. } => {
                let end = sim.pop_frame()?;
                sim.push_many(&end);
            }
            Term::Br(e) => {
                sim.pop_many(&e.tys)?;
                sim.set_unreachable();
            }
            Term::BrIf { taken, .. } => {
                sim.pop(ValType::I32)?;
                sim.pop_many(&taken.tys)?;
                sim.push_many(&taken.tys);
            }
            Term::BrTable { targets, default } => {
                sim.pop(ValType::I32)?;
                for t in targets {
                    if t.tys != default.tys {
                        return err("br_table target type mismatch");
                    }
                }
                sim.pop_many(&default.tys)?;
                sim.set_unreachable();
            }
            Term::Return => {
                let rt = sim.frames[0].end.clone();
                sim.pop_many(&rt)?;
                sim.set_unreachable();
            }
            Term::Trap => sim.set_unreachable(),
            Term::Exit => {
                sim.pop_frame()?;
                if !sim.frames.is_empty() {
                    return err("control frames remaining at function exit (CFG builder bug)");
                }
            }
        }
    }
    Ok(())
}

/// Independently re-verifies a whole module.
///
/// Covers the same set of checks as [`validate_module`], computed over
/// the CFG instead of the tree. Boolean accept/reject agreement with the
/// validator is a hard invariant, pinned by a property test.
///
/// # Errors
///
/// Returns the first violation found.
pub fn reverify_module(m: &Module) -> Result<(), VerifyError> {
    let ctx = module_ctx(m)?;
    for (fi, f) in m.funcs.iter().enumerate() {
        let fe = |message: String| VerifyError {
            func: Some(fi as u32),
            message,
        };
        if m.types.get(f.type_idx as usize).is_none() {
            return Err(fe("unknown type".into()));
        }
        let cfg = build_cfg(m, f).map_err(|e| fe(e.0))?;
        verify_func(m, &ctx, f, &cfg).map_err(fe)?;
    }
    for ex in &m.exports {
        let ok = match ex.kind {
            ExportKind::Func(i) => m.func_type(i).is_some(),
            ExportKind::Global(i) => (i as usize) < ctx.globals.len(),
            ExportKind::Memory(_) => ctx.has_memory,
            ExportKind::Table(_) => ctx.has_table,
        };
        if !ok {
            return Err(VerifyError {
                func: None,
                message: format!("export {}: bad index", ex.name),
            });
        }
    }
    for el in &m.elems {
        if !ctx.has_table {
            return Err(VerifyError {
                func: None,
                message: "element segment without a table".into(),
            });
        }
        for &f in &el.funcs {
            if m.func_type(f).is_none() {
                return Err(VerifyError {
                    func: None,
                    message: format!("element segment references unknown function {f}"),
                });
            }
        }
    }
    if !m.data.is_empty() && !ctx.has_memory {
        return Err(VerifyError {
            func: None,
            message: "data segment without a memory".into(),
        });
    }
    if let Some(s) = m.start {
        let ft = m.func_type(s).ok_or_else(|| VerifyError {
            func: None,
            message: format!("start function {s} unknown"),
        })?;
        if !ft.params.is_empty() || !ft.results.is_empty() {
            return Err(VerifyError {
                func: None,
                message: "start function must have type [] → []".into(),
            });
        }
    }
    Ok(())
}

/// Cross-checks the re-verifier against `validate.rs` on one module,
/// returning the verdicts `(validator, reverifier)`.
pub fn cross_check(m: &Module) -> (Result<(), String>, Result<(), String>) {
    (
        validate_module(m).map_err(|e| e.to_string()),
        reverify_module(m).map_err(|e| e.to_string()),
    )
}
