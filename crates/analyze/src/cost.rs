//! Static fuel-cost analysis.
//!
//! The interpreter (`richwasm_wasm::exec`) charges **exactly one step
//! per executed instruction dispatch** — including `block`/`loop`/`if`
//! entries and branches — plus one extra step when a call resolves to a
//! host function. Structured block *ends* are implicit in the tree AST
//! and cost nothing. This module derives two per-function summaries
//! from that metering model:
//!
//! * **`min_steps`** — a sound *lower* bound on the steps any normally
//!   completing invocation consumes: a shortest-path computation over
//!   the [`Cfg`] (via the backward dataflow framework), composed across
//!   direct calls by a Kleene ascent from zero. A fuel budget below
//!   `min_steps` can only end in a trap or fuel exhaustion, never
//!   normal completion — which is what lets `EngineServer` reject such
//!   jobs up front.
//! * **`max_steps`** — an *upper* bound where one exists: a structural
//!   walk that sums straight-line costs, takes the max over `if` arms,
//!   and bounds a `loop` only when its body never branches back to the
//!   loop header (a loop that never loops runs its body once).
//!   Recursion, imported callees (whose linked bodies are invisible to
//!   a per-module analysis), `call_indirect`, and genuinely looping
//!   loops yield [`Bound::Unbounded`] carrying a sound "≥ steps per
//!   iteration" summary instead.
//!
//! Import calls contribute `1` to `min_steps` (the `call` dispatch; a
//! linked Wasm body may be empty) — never the host-dispatch step, which
//! only exists when the import actually resolves to a host function.

use std::collections::HashMap;
use std::fmt;

use richwasm_wasm::ast::{ExportKind, ImportKind, Module, WInstr};

use crate::cfg::{BlockId, Cfg, FrameKind, Term};
use crate::dataflow::{solve, DataflowPass, Direction, JoinLattice};

/// `min_steps` value meaning "no path completes normally".
pub const NEVER: u64 = u64::MAX;

/// An upper bound on interpreter steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// At most this many steps.
    Finite(u64),
    /// No static bound; each unbounded repetition (loop iteration,
    /// recursive or unknown callee) consumes at least `min_iteration`
    /// steps.
    Unbounded {
        /// Sound lower bound on the cost of one repetition.
        min_iteration: u64,
    },
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "≤{n}"),
            Bound::Unbounded { min_iteration } => {
                write!(f, "unbounded (≥{min_iteration}/iteration)")
            }
        }
    }
}

fn bound_add(a: Bound, b: Bound) -> Bound {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => Bound::Finite(x.saturating_add(y)),
        (Bound::Unbounded { min_iteration: x }, Bound::Unbounded { min_iteration: y }) => {
            Bound::Unbounded {
                min_iteration: x.min(y),
            }
        }
        (Bound::Unbounded { min_iteration }, _) | (_, Bound::Unbounded { min_iteration }) => {
            Bound::Unbounded { min_iteration }
        }
    }
}

fn bound_max(a: Bound, b: Bound) -> Bound {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => Bound::Finite(x.max(y)),
        (Bound::Unbounded { min_iteration: x }, Bound::Unbounded { min_iteration: y }) => {
            Bound::Unbounded {
                min_iteration: x.min(y),
            }
        }
        (u @ Bound::Unbounded { .. }, _) | (_, u @ Bound::Unbounded { .. }) => u,
    }
}

fn add1(b: Bound) -> Bound {
    bound_add(b, Bound::Finite(1))
}

/// Per-function cost summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncCost {
    /// Global function index (imports first).
    pub func: u32,
    /// Sound lower bound on steps of a normally completing invocation
    /// ([`NEVER`] when no path completes).
    pub min_steps: u64,
    /// Upper bound, where one exists.
    pub max_steps: Bound,
}

/// The module's cost report, exposed on `Artifact`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CostReport {
    /// One entry per *defined* function, in definition order.
    pub funcs: Vec<FuncCost>,
    /// Exported function names with their global indices.
    pub exports: Vec<(String, u32)>,
    /// Module-local bound on call-stack depth (imported callees counted
    /// as one frame); `None` when recursion or unknown indirect targets
    /// make it unbounded. Filled in by the call-graph pass.
    pub max_call_depth: Option<u32>,
}

impl CostReport {
    /// The cost summary of a function by global index.
    #[must_use]
    pub fn func(&self, idx: u32) -> Option<&FuncCost> {
        self.funcs.iter().find(|c| c.func == idx)
    }

    /// Sound lower bound on the steps a normally completing invocation
    /// of the named export consumes. `None` when the export is unknown
    /// or resolves to an imported function (whose cost this module
    /// cannot see).
    #[must_use]
    pub fn min_steps_of_export(&self, name: &str) -> Option<u64> {
        let idx = self
            .exports
            .iter()
            .find_map(|(n, i)| (n == name).then_some(*i))?;
        self.func(idx).map(|c| c.min_steps)
    }
}

/// Shared context for per-instruction minimum costs.
struct CostCtx<'m> {
    n_imports: u32,
    /// `min_steps` per defined function (current Kleene estimate).
    minfunc: &'m [u64],
    /// Extra (callee) minimum per type index for `call_indirect`.
    indirect_min: Vec<u64>,
}

impl<'m> CostCtx<'m> {
    fn new(m: &'m Module, minfunc: &'m [u64]) -> Self {
        let n_imports = m.num_func_imports() as u32;
        let table_imported = m
            .imports
            .iter()
            .any(|im| matches!(im.kind, ImportKind::Table(_)));
        // Candidate sets per type index: the functions listed in element
        // segments whose type structurally equals the expected one. With
        // an imported (shared) table other modules contribute entries we
        // cannot see, so the callee minimum degrades to 0.
        let elem_funcs: Vec<u32> = m
            .elems
            .iter()
            .flat_map(|e| e.funcs.iter().copied())
            .collect();
        let indirect_min = m
            .types
            .iter()
            .map(|ft| {
                if table_imported {
                    return 0;
                }
                elem_funcs
                    .iter()
                    .filter(|&&f| m.func_type(f) == Some(ft))
                    .map(|&f| {
                        if f < n_imports {
                            0
                        } else {
                            minfunc[(f - n_imports) as usize]
                        }
                    })
                    .min()
                    // No compatible entry in a fully known table: the
                    // call always traps, so no completion through it.
                    .unwrap_or(NEVER)
            })
            .collect();
        CostCtx {
            n_imports,
            minfunc,
            indirect_min,
        }
    }

    /// Minimum steps one plain instruction consumes (callees included).
    fn instr_min(&self, ins: &WInstr) -> u64 {
        match ins {
            WInstr::Call(f) => {
                if *f < self.n_imports {
                    1
                } else {
                    1u64.saturating_add(self.minfunc[(*f - self.n_imports) as usize])
                }
            }
            WInstr::CallIndirect(ti) => 1u64.saturating_add(
                self.indirect_min
                    .get(*ti as usize)
                    .copied()
                    .unwrap_or(NEVER),
            ),
            _ => 1,
        }
    }

    /// Total minimum cost of a block (instructions plus terminator).
    fn block_min(&self, cfg: &Cfg, b: BlockId) -> u64 {
        let blk = &cfg.blocks[b];
        let mut c = blk.term.step_cost();
        for (_, ins) in &blk.instrs {
            c = c.saturating_add(self.instr_min(ins));
        }
        c
    }
}

/// Minimum distance-to-completion fact: join is `min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MinDist(u64);

impl JoinLattice for MinDist {
    fn join(&mut self, other: &Self) -> bool {
        if other.0 < self.0 {
            self.0 = other.0;
            true
        } else {
            false
        }
    }
}

struct MinCostPass<'a> {
    ctx: &'a CostCtx<'a>,
}

impl DataflowPass for MinCostPass<'_> {
    type Fact = MinDist;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> MinDist {
        MinDist(0)
    }

    fn bottom(&self) -> MinDist {
        MinDist(NEVER)
    }

    fn transfer(&self, cfg: &Cfg, block: BlockId, fact: &MinDist) -> MinDist {
        if fact.0 == NEVER {
            return MinDist(NEVER);
        }
        MinDist(fact.0.saturating_add(self.ctx.block_min(cfg, block)))
    }
}

/// Computes `min_steps` for every defined function: a per-function
/// shortest path to completion, closed over direct calls by a Kleene
/// ascent from zero. Estimates only grow and every intermediate vector
/// is a sound lower bound, so capping the rounds preserves soundness
/// (unbounded recursion simply stops ascending at the cap).
fn min_costs(m: &Module, cfgs: &[Cfg]) -> Vec<u64> {
    let nf = cfgs.len();
    let mut minfunc = vec![0u64; nf];
    for _ in 0..nf + 8 {
        let mut changed = false;
        let next: Vec<u64> = {
            let ctx = CostCtx::new(m, &minfunc);
            cfgs.iter()
                .map(|cfg| solve(cfg, &MinCostPass { ctx: &ctx })[cfg.entry()].0)
                .collect()
        };
        for (cur, new) in minfunc.iter_mut().zip(next) {
            if new != *cur {
                *cur = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    minfunc
}

/// Shortest cycle through loop header `h` (steps consumed by one
/// iteration), or [`NEVER`] when no back edge is live.
fn min_cycle(cfg: &Cfg, ctx: &CostCtx<'_>, h: BlockId) -> u64 {
    let n = cfg.blocks.len();
    let costs: Vec<u64> = (0..n).map(|b| ctx.block_min(cfg, b)).collect();
    let mut e = vec![NEVER; n];
    loop {
        let mut changed = false;
        for b in (0..n).rev() {
            let best = cfg.blocks[b]
                .term
                .successors()
                .into_iter()
                .map(|s| if s == h { 0 } else { e[s] })
                .min()
                .unwrap_or(NEVER);
            if best == NEVER {
                continue;
            }
            let v = costs[b].saturating_add(best);
            if v < e[b] {
                e[b] = v;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    e[h]
}

/// Does any branch in `body` target the label at relative depth `depth`
/// (i.e. branch back to the enclosing loop's header)?
fn branches_back(body: &[WInstr], depth: u32) -> bool {
    body.iter().any(|ins| match ins {
        WInstr::Br(l) | WInstr::BrIf(l) => *l == depth,
        WInstr::BrTable(ls, d) => *d == depth || ls.contains(&depth),
        WInstr::Block(_, b) | WInstr::Loop(_, b) => branches_back(b, depth + 1),
        WInstr::If(_, t, e) => branches_back(t, depth + 1) || branches_back(e, depth + 1),
        _ => false,
    })
}

struct MaxCtx<'m> {
    m: &'m Module,
    n_imports: u32,
    minfunc: &'m [u64],
    /// Per defined function: loop-instruction offset → min steps per
    /// iteration (from [`min_cycle`]).
    loop_iter: Vec<HashMap<u32, u64>>,
    memo: Vec<Option<Bound>>,
    visiting: Vec<bool>,
}

impl MaxCtx<'_> {
    fn func_max(&mut self, fi: usize) -> Bound {
        if let Some(b) = self.memo[fi] {
            return b;
        }
        if self.visiting[fi] {
            // Recursion: every recursive activation costs the call
            // dispatch plus at least the cheapest completing path.
            return Bound::Unbounded {
                min_iteration: self.minfunc[fi].saturating_add(1),
            };
        }
        self.visiting[fi] = true;
        let m = self.m;
        let mut off = 0u32;
        let b = self.max_seq(fi, &m.funcs[fi].body, &mut off);
        self.visiting[fi] = false;
        self.memo[fi] = Some(b);
        b
    }

    fn max_seq(&mut self, fi: usize, body: &[WInstr], off: &mut u32) -> Bound {
        let mut total = Bound::Finite(0);
        for ins in body {
            let o = *off;
            *off += 1;
            let c = match ins {
                WInstr::Block(_, b) => add1(self.max_seq(fi, b, off)),
                WInstr::If(_, t, e) => {
                    let bt = self.max_seq(fi, t, off);
                    let be = self.max_seq(fi, e, off);
                    add1(bound_max(bt, be))
                }
                WInstr::Loop(_, b) => {
                    if branches_back(b, 0) {
                        let mi = self.loop_iter[fi].get(&o).copied().unwrap_or(1);
                        // Walk the body anyway to keep offsets aligned
                        // with the CFG builder's pre-order numbering.
                        let _ = self.max_seq(fi, b, off);
                        Bound::Unbounded {
                            min_iteration: mi.max(1),
                        }
                    } else {
                        // A loop nothing branches back to runs once.
                        add1(self.max_seq(fi, b, off))
                    }
                }
                WInstr::Call(f) => {
                    if *f < self.n_imports {
                        // The linked body of an import is invisible to a
                        // per-module analysis.
                        Bound::Unbounded { min_iteration: 1 }
                    } else {
                        add1(self.func_max((*f - self.n_imports) as usize))
                    }
                }
                WInstr::CallIndirect(_) => Bound::Unbounded { min_iteration: 1 },
                _ => Bound::Finite(1),
            };
            total = bound_add(total, c);
        }
        total
    }
}

/// Computes the module's [`CostReport`] (`max_call_depth` is left for
/// the call-graph pass to fill in). `cfgs` holds one CFG per defined
/// function, in definition order.
#[must_use]
pub fn cost_report(m: &Module, cfgs: &[Cfg]) -> CostReport {
    let n_imports = m.num_func_imports() as u32;
    let minfunc = min_costs(m, cfgs);

    // Per-loop iteration minima, now that call minima have converged.
    let ctx = CostCtx::new(m, &minfunc);
    let loop_iter: Vec<HashMap<u32, u64>> = cfgs
        .iter()
        .map(|cfg| {
            let mut map = HashMap::new();
            for blk in &cfg.blocks {
                if let Term::Enter { frame, body } = &blk.term {
                    if cfg.frames[*frame].kind == FrameKind::Loop {
                        let c = min_cycle(cfg, &ctx, *body);
                        if c != NEVER {
                            map.insert(blk.term_offset, c);
                        }
                    }
                }
            }
            map
        })
        .collect();

    let mut maxctx = MaxCtx {
        m,
        n_imports,
        minfunc: &minfunc,
        loop_iter,
        memo: vec![None; cfgs.len()],
        visiting: vec![false; cfgs.len()],
    };
    let funcs = (0..cfgs.len())
        .map(|i| FuncCost {
            func: n_imports + i as u32,
            min_steps: minfunc[i],
            max_steps: maxctx.func_max(i),
        })
        .collect();

    let exports = m
        .exports
        .iter()
        .filter_map(|e| match e.kind {
            ExportKind::Func(i) => Some((e.name.clone(), i)),
            _ => None,
        })
        .collect();

    CostReport {
        funcs,
        exports,
        max_call_depth: None,
    }
}
