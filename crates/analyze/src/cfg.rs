//! Control-flow graph construction over the structured Wasm AST.
//!
//! The structured `block`/`loop`/`if` tree is linearised into basic blocks
//! laid out in **pre-order** — exactly the order `validate.rs` visits
//! instructions, and deliberately the same linearisation a flat bytecode
//! tier would execute from. Branches are pre-resolved to explicit
//! [`Edge`]s: backward branches to a `loop` header are known at the branch
//! site; forward branches to a `block`/`if` merge point are patched when
//! the enclosing construct closes.
//!
//! Every block ends in a [`Term`]. Structured entries and exits
//! (`Enter`/`EnterIf`/`EndThen`/`End`/`Exit`) are kept as explicit
//! terminators so a linear walk of the blocks in layout order can replay
//! the validator's control-frame discipline step for step (see
//! `verify.rs`).

use std::fmt;

use richwasm_wasm::ast::{BlockType, FuncDef, FuncType, Module, ValType, WInstr};

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;
/// Index of a control frame within a [`Cfg`].
pub type FrameId = usize;

/// Sentinel successor: the branch leaves the function (a `br` to the
/// function-level label completes the function).
pub const EXIT: BlockId = usize::MAX;

/// Placeholder for a forward branch target not yet resolved. Never
/// observable in a finished [`Cfg`].
const PENDING: BlockId = usize::MAX - 1;

/// An error found while building the CFG.
///
/// The builder only rejects conditions the validator also rejects
/// (unknown labels, unknown block-type indices), so a build failure
/// always corresponds to a validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgError(pub String);

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cfg construction error: {}", self.0)
    }
}

impl std::error::Error for CfgError {}

/// What kind of structured construct a control frame came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// The implicit function-body frame.
    Func,
    /// A `block`.
    Block,
    /// A `loop`.
    Loop,
    /// The then-arm of an `if`.
    Then,
    /// The else-arm of an `if`.
    Else,
}

/// A control frame: one structured construct in the original tree.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The construct this frame came from.
    pub kind: FrameKind,
    /// The enclosing frame, `None` for the function frame.
    pub parent: Option<FrameId>,
    /// Block-type parameters.
    pub params: Vec<ValType>,
    /// Block-type results.
    pub results: Vec<ValType>,
}

impl Frame {
    /// The types a branch to this frame's label expects: params for a
    /// loop (branch to the header), results for everything else.
    #[must_use]
    pub fn label_types(&self) -> &[ValType] {
        match self.kind {
            FrameKind::Loop => &self.params,
            _ => &self.results,
        }
    }
}

/// A resolved branch edge: target block plus the label types the branch
/// transfers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Target block, or [`EXIT`].
    pub to: BlockId,
    /// The label types at the target.
    pub tys: Vec<ValType>,
}

/// A basic-block terminator.
#[derive(Debug, Clone)]
pub enum Term {
    /// Enter a `block` or `loop` frame; `body` is the next block in
    /// layout order.
    Enter {
        /// The frame being entered.
        frame: FrameId,
        /// First block of the construct body.
        body: BlockId,
    },
    /// Enter an `if`: pops the condition, then behaves like two
    /// sequential frame entries (the validator pushes the then-frame
    /// first, then a fresh frame for the else-arm).
    EnterIf {
        /// Frame of the then-arm.
        then_frame: FrameId,
        /// Frame of the else-arm.
        else_frame: FrameId,
        /// First block of the then-arm (next in layout order).
        then_blk: BlockId,
        /// First block of the else-arm.
        else_blk: BlockId,
    },
    /// End of a then-arm: close the then frame, open the else frame.
    EndThen {
        /// Frame of the else-arm about to open.
        else_frame: FrameId,
        /// First block of the else-arm (next in layout order).
        next: BlockId,
    },
    /// Structured end of a `block`/`loop`/else frame; falls through to
    /// the merge block.
    End {
        /// The frame being closed.
        frame: FrameId,
        /// The merge block (next in layout order).
        next: BlockId,
    },
    /// Unconditional `br`.
    Br(Edge),
    /// Conditional `br_if`: taken edge or fall-through to the next block.
    BrIf {
        /// Edge when the condition is non-zero.
        taken: Edge,
        /// Fall-through block.
        fall: BlockId,
    },
    /// `br_table`.
    BrTable {
        /// Indexed targets.
        targets: Vec<Edge>,
        /// Default target.
        default: Edge,
    },
    /// `return`.
    Return,
    /// `unreachable` — execution traps here.
    Trap,
    /// The function frame falls off the end of the body.
    Exit,
}

impl Term {
    /// All in-function successor blocks ([`EXIT`] targets are skipped).
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.for_each_successor(|b| out.push(b));
        out
    }

    /// Visits every in-function successor without allocating ([`EXIT`]
    /// targets are skipped). The dataflow solver's hot path.
    pub fn for_each_successor(&self, mut f: impl FnMut(BlockId)) {
        let mut push = |b: BlockId| {
            if b != EXIT {
                f(b);
            }
        };
        match self {
            Term::Enter { body, .. } => push(*body),
            Term::EnterIf {
                then_blk, else_blk, ..
            } => {
                push(*then_blk);
                push(*else_blk);
            }
            Term::EndThen { next, .. } | Term::End { next, .. } => push(*next),
            Term::Br(e) => push(e.to),
            Term::BrIf { taken, fall } => {
                push(taken.to);
                push(*fall);
            }
            Term::BrTable { targets, default } => {
                for t in targets {
                    push(t.to);
                }
                push(default.to);
            }
            Term::Return | Term::Trap | Term::Exit => {}
        }
    }

    /// Whether this terminator can complete the function directly
    /// (function exit, `return`, or a branch to the function label).
    #[must_use]
    pub fn exits_function(&self) -> bool {
        match self {
            Term::Exit | Term::Return => true,
            Term::Br(e) => e.to == EXIT,
            Term::BrIf { taken, .. } => taken.to == EXIT,
            Term::BrTable { targets, default } => {
                default.to == EXIT || targets.iter().any(|t| t.to == EXIT)
            }
            _ => false,
        }
    }

    /// Interpreter steps charged for dispatching this terminator.
    ///
    /// `block`/`loop`/`if`/`br`/`br_if`/`br_table`/`return`/`unreachable`
    /// are real instructions the interpreter meters (one step each);
    /// structured ends are implicit in the tree AST and cost nothing.
    #[must_use]
    pub fn step_cost(&self) -> u64 {
        match self {
            Term::Enter { .. }
            | Term::EnterIf { .. }
            | Term::Br(_)
            | Term::BrIf { .. }
            | Term::BrTable { .. }
            | Term::Return
            | Term::Trap => 1,
            Term::EndThen { .. } | Term::End { .. } | Term::Exit => 0,
        }
    }
}

/// A basic block: straight-line plain instructions plus a terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// The control frame this block executes in.
    pub frame: FrameId,
    /// Plain (non-control) instructions with their pre-order offsets.
    pub instrs: Vec<(u32, WInstr)>,
    /// The terminator.
    pub term: Term,
    /// Pre-order offset of the terminator instruction (for structured
    /// ends, the offset just past the construct).
    pub term_offset: u32,
}

/// A function's control-flow graph. Entry is always block `0`; blocks
/// are stored in pre-order layout order.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All control frames; frame `0` is the function frame.
    pub frames: Vec<Frame>,
    /// All basic blocks in layout order.
    pub blocks: Vec<Block>,
}

impl Cfg {
    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        0
    }
}

/// Where a label scope sends branches.
enum Target {
    /// Backward branch to a loop header (known immediately).
    Header(BlockId),
    /// Branch to the function label: leaves the function.
    FuncExit,
    /// Forward branch to a merge block not yet laid out; patched when
    /// the construct closes.
    Merge(Vec<Patch>),
}

struct Scope {
    tys: Vec<ValType>,
    target: Target,
}

/// A branch-edge slot awaiting a forward-target patch.
struct Patch {
    block: BlockId,
    slot: Slot,
}

enum Slot {
    Br,
    BrIfTaken,
    BrTableTarget(usize),
    BrTableDefault,
}

struct Builder<'m> {
    m: &'m Module,
    frames: Vec<Frame>,
    blocks: Vec<Block>,
    cur_frame: FrameId,
    cur_instrs: Vec<(u32, WInstr)>,
    offset: u32,
}

impl Builder<'_> {
    /// Assigns the next pre-order offset.
    fn bump(&mut self) -> u32 {
        let o = self.offset;
        self.offset += 1;
        o
    }

    /// Seals the open block with `term` and implicitly opens the next
    /// one (which will get id `blocks.len()` at its own seal).
    fn seal(&mut self, term: Term, term_offset: u32) -> BlockId {
        let id = self.blocks.len();
        self.blocks.push(Block {
            frame: self.cur_frame,
            instrs: std::mem::take(&mut self.cur_instrs),
            term,
            term_offset,
        });
        id
    }

    fn block_func_type(&self, bt: &BlockType) -> Result<FuncType, CfgError> {
        self.m.block_func_type(bt).ok_or_else(|| match bt {
            BlockType::Func(i) => CfgError(format!("unknown type {i}")),
            _ => CfgError("unresolvable block type".into()),
        })
    }

    /// Resolves label `l` to an edge, registering a patch for forward
    /// targets. `slot` names the edge slot in the block about to be
    /// sealed (id `blocks.len()`).
    fn edge_for(&self, scopes: &mut [Scope], l: u32, slot: Slot) -> Result<Edge, CfgError> {
        let n = scopes.len();
        if (l as usize) >= n {
            return Err(CfgError(format!("unknown label {l}")));
        }
        let sc = &mut scopes[n - 1 - l as usize];
        let tys = sc.tys.clone();
        let to = match &mut sc.target {
            Target::Header(b) => *b,
            Target::FuncExit => EXIT,
            Target::Merge(ps) => {
                ps.push(Patch {
                    block: self.blocks.len(),
                    slot,
                });
                PENDING
            }
        };
        Ok(Edge { to, tys })
    }

    /// Points every registered forward branch of `sc` at `to`.
    fn apply_patches(&mut self, sc: Scope, to: BlockId) {
        let Target::Merge(ps) = sc.target else {
            return;
        };
        for p in ps {
            match (&mut self.blocks[p.block].term, &p.slot) {
                (Term::Br(e), Slot::Br) => e.to = to,
                (Term::BrIf { taken, .. }, Slot::BrIfTaken) => taken.to = to,
                (Term::BrTable { targets, .. }, Slot::BrTableTarget(i)) => targets[*i].to = to,
                (Term::BrTable { default, .. }, Slot::BrTableDefault) => default.to = to,
                _ => unreachable!("patch slot does not match terminator shape"),
            }
        }
    }

    fn lower_seq(&mut self, body: &[WInstr], scopes: &mut Vec<Scope>) -> Result<(), CfgError> {
        for ins in body {
            match ins {
                WInstr::Block(bt, b) => {
                    let ft = self.block_func_type(bt)?;
                    let off = self.bump();
                    let parent = self.cur_frame;
                    let fid = self.frames.len();
                    self.frames.push(Frame {
                        kind: FrameKind::Block,
                        parent: Some(parent),
                        params: ft.params.clone(),
                        results: ft.results.clone(),
                    });
                    let body_blk = self.blocks.len() + 1;
                    self.seal(
                        Term::Enter {
                            frame: fid,
                            body: body_blk,
                        },
                        off,
                    );
                    self.cur_frame = fid;
                    scopes.push(Scope {
                        tys: ft.results,
                        target: Target::Merge(Vec::new()),
                    });
                    self.lower_seq(b, scopes)?;
                    let next = self.blocks.len() + 1;
                    self.seal(Term::End { frame: fid, next }, self.offset);
                    let sc = scopes.pop().expect("scope stack balanced");
                    self.apply_patches(sc, next);
                    self.cur_frame = parent;
                }
                WInstr::Loop(bt, b) => {
                    let ft = self.block_func_type(bt)?;
                    let off = self.bump();
                    let parent = self.cur_frame;
                    let fid = self.frames.len();
                    self.frames.push(Frame {
                        kind: FrameKind::Loop,
                        parent: Some(parent),
                        params: ft.params.clone(),
                        results: ft.results.clone(),
                    });
                    let header = self.blocks.len() + 1;
                    self.seal(
                        Term::Enter {
                            frame: fid,
                            body: header,
                        },
                        off,
                    );
                    self.cur_frame = fid;
                    scopes.push(Scope {
                        tys: ft.params,
                        target: Target::Header(header),
                    });
                    self.lower_seq(b, scopes)?;
                    let next = self.blocks.len() + 1;
                    self.seal(Term::End { frame: fid, next }, self.offset);
                    scopes.pop().expect("scope stack balanced");
                    self.cur_frame = parent;
                }
                WInstr::If(bt, then_b, else_b) => {
                    let ft = self.block_func_type(bt)?;
                    let off = self.bump();
                    let parent = self.cur_frame;
                    let tf = self.frames.len();
                    self.frames.push(Frame {
                        kind: FrameKind::Then,
                        parent: Some(parent),
                        params: ft.params.clone(),
                        results: ft.results.clone(),
                    });
                    let ef = self.frames.len();
                    self.frames.push(Frame {
                        kind: FrameKind::Else,
                        parent: Some(parent),
                        params: ft.params.clone(),
                        results: ft.results.clone(),
                    });
                    let then_blk = self.blocks.len() + 1;
                    let if_blk = self.seal(
                        Term::EnterIf {
                            then_frame: tf,
                            else_frame: ef,
                            then_blk,
                            else_blk: PENDING,
                        },
                        off,
                    );
                    self.cur_frame = tf;
                    scopes.push(Scope {
                        tys: ft.results,
                        target: Target::Merge(Vec::new()),
                    });
                    self.lower_seq(then_b, scopes)?;
                    // The then arm's runtime successor is the *merge*
                    // after the whole `if` — not the else arm, which
                    // merely follows it in the linear layout. The merge
                    // id is unknown until the else arm is lowered, so
                    // seal with PENDING and patch below.
                    let else_blk = self.blocks.len() + 1;
                    let then_end = self.seal(
                        Term::EndThen {
                            else_frame: ef,
                            next: PENDING,
                        },
                        self.offset,
                    );
                    if let Term::EnterIf { else_blk: e, .. } = &mut self.blocks[if_blk].term {
                        *e = else_blk;
                    }
                    self.cur_frame = ef;
                    self.lower_seq(else_b, scopes)?;
                    let next = self.blocks.len() + 1;
                    self.seal(Term::End { frame: ef, next }, self.offset);
                    if let Term::EndThen { next: n, .. } = &mut self.blocks[then_end].term {
                        *n = next;
                    }
                    let sc = scopes.pop().expect("scope stack balanced");
                    self.apply_patches(sc, next);
                    self.cur_frame = parent;
                }
                WInstr::Br(l) => {
                    let off = self.bump();
                    let e = self.edge_for(scopes, *l, Slot::Br)?;
                    self.seal(Term::Br(e), off);
                }
                WInstr::BrIf(l) => {
                    let off = self.bump();
                    let taken = self.edge_for(scopes, *l, Slot::BrIfTaken)?;
                    let fall = self.blocks.len() + 1;
                    self.seal(Term::BrIf { taken, fall }, off);
                }
                WInstr::BrTable(ls, d) => {
                    let off = self.bump();
                    let mut targets = Vec::with_capacity(ls.len());
                    for (i, l) in ls.iter().enumerate() {
                        targets.push(self.edge_for(scopes, *l, Slot::BrTableTarget(i))?);
                    }
                    let default = self.edge_for(scopes, *d, Slot::BrTableDefault)?;
                    self.seal(Term::BrTable { targets, default }, off);
                }
                WInstr::Return => {
                    let off = self.bump();
                    self.seal(Term::Return, off);
                }
                WInstr::Unreachable => {
                    let off = self.bump();
                    self.seal(Term::Trap, off);
                }
                plain => {
                    let off = self.bump();
                    self.cur_instrs.push((off, plain.clone()));
                }
            }
        }
        Ok(())
    }
}

/// Builds the control-flow graph of one function.
///
/// # Errors
///
/// Fails only on conditions `validate.rs` also rejects: an unknown
/// function/block type index or a branch to an unknown label.
pub fn build_cfg(m: &Module, f: &FuncDef) -> Result<Cfg, CfgError> {
    let ft = m
        .types
        .get(f.type_idx as usize)
        .cloned()
        .ok_or_else(|| CfgError("unknown type".into()))?;
    let mut b = Builder {
        m,
        frames: vec![Frame {
            kind: FrameKind::Func,
            parent: None,
            params: ft.params,
            results: ft.results.clone(),
        }],
        blocks: Vec::new(),
        cur_frame: 0,
        cur_instrs: Vec::new(),
        offset: 0,
    };
    let mut scopes = vec![Scope {
        tys: ft.results,
        target: Target::FuncExit,
    }];
    b.lower_seq(&f.body, &mut scopes)?;
    let off = b.offset;
    b.seal(Term::Exit, off);
    debug_assert!(b.blocks.iter().all(|blk| blk
        .term
        .successors()
        .iter()
        .all(|&s| s < b.blocks.len())));
    Ok(Cfg {
        frames: b.frames,
        blocks: b.blocks,
    })
}
