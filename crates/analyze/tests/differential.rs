//! Differential pin: the abstract stack re-verifier and `validate.rs`
//! must agree accept/reject on generated modules.
//!
//! The generator (shared shape with the wasm crate's round-trip suite)
//! emits structurally consistent but not necessarily *valid* modules —
//! labels, locals, globals and types may be out of range, stacks may
//! underflow, arms may disagree — so both accept and reject verdicts are
//! exercised. Any divergence is a bug in one of the two checkers.

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use proptest::test_runner::TestRng;
use richwasm_analyze::reverify_module;
use richwasm_wasm::ast::*;
use richwasm_wasm::validate_module;

fn arbitrary_module(rng: &mut TestRng) -> Module {
    let mut m = Module::default();
    let pick = |rng: &mut TestRng, n: u64| (rng.next_u64() % n) as u32;
    let vt = |rng: &mut TestRng| match rng.next_u64() % 4 {
        0 => ValType::I32,
        1 => ValType::I64,
        2 => ValType::F32,
        _ => ValType::F64,
    };

    let ntypes = 1 + pick(rng, 4) as usize;
    for _ in 0..ntypes {
        let params = (0..pick(rng, 3)).map(|_| vt(rng)).collect();
        let results = (0..pick(rng, 3)).map(|_| vt(rng)).collect();
        m.intern_type(FuncType { params, results });
    }
    let ntypes = m.types.len() as u64;

    let n_func_imports = pick(rng, 3);
    for i in 0..n_func_imports {
        m.imports.push(Import {
            module: format!("env{}", pick(rng, 2)),
            name: format!("f{i}"),
            kind: ImportKind::Func(pick(rng, ntypes)),
        });
    }
    let n_global_imports = pick(rng, 2);
    for i in 0..n_global_imports {
        m.imports.push(Import {
            module: "env".into(),
            name: format!("g{i}"),
            kind: ImportKind::Global(vt(rng), rng.next_u64() % 2 == 0),
        });
    }

    if rng.next_u64() % 2 == 0 {
        m.table = Some(pick(rng, 16));
    }
    if rng.next_u64() % 2 == 0 {
        m.memory = Some(1 + pick(rng, 4));
    }

    for _ in 0..pick(rng, 3) {
        let ty = vt(rng);
        // Sometimes a mismatched initialiser, to exercise rejection.
        let init = if rng.next_u64() % 8 == 0 {
            WInstr::I32Const(1)
        } else {
            match ty {
                ValType::I32 => WInstr::I32Const(rng.next_u64() as i32),
                ValType::I64 => WInstr::I64Const(rng.next_u64() as i64),
                ValType::F32 => {
                    WInstr::F32Const(f32::from_bits(rng.next_u64() as u32 & 0x7f7f_ffff))
                }
                ValType::F64 => {
                    WInstr::F64Const(f64::from_bits(rng.next_u64() & 0x7fef_ffff_ffff_ffff))
                }
            }
        };
        m.globals.push(GlobalDef {
            ty,
            mutable: rng.next_u64() % 2 == 0,
            init,
        });
    }

    let n_funcs = 1 + pick(rng, 3);
    let total_funcs = (n_func_imports + n_funcs) as u64;
    for _ in 0..n_funcs {
        let type_idx = pick(rng, ntypes);
        let locals = (0..pick(rng, 5)).map(|_| vt(rng)).collect();
        let body = arbitrary_body(rng, 3, ntypes, total_funcs);
        m.funcs.push(FuncDef {
            type_idx,
            locals,
            body,
        });
    }

    for i in 0..pick(rng, 3) {
        let kind = match rng.next_u64() % 4 {
            0 => ExportKind::Func(pick(rng, total_funcs)),
            1 if !m.globals.is_empty() || n_global_imports > 0 => ExportKind::Global(pick(
                rng,
                (n_global_imports + m.globals.len() as u32) as u64,
            )),
            2 if m.memory.is_some() => ExportKind::Memory(0),
            3 if m.table.is_some() => ExportKind::Table(0),
            _ => ExportKind::Func(pick(rng, total_funcs)),
        };
        m.exports.push(Export {
            name: format!("export_{i}"),
            kind,
        });
    }
    if m.table.is_some() {
        for _ in 0..pick(rng, 2) {
            let funcs = (0..1 + pick(rng, 3))
                .map(|_| pick(rng, total_funcs))
                .collect();
            m.elems.push(ElemSegment {
                offset: pick(rng, 8),
                funcs,
            });
        }
    }
    if rng.next_u64() % 8 == 0 {
        m.start = Some(pick(rng, total_funcs));
    }
    m
}

fn arbitrary_body(rng: &mut TestRng, depth: u32, ntypes: u64, nfuncs: u64) -> Vec<WInstr> {
    let n = rng.next_u64() % 6;
    (0..n)
        .map(|_| arbitrary_instr(rng, depth, ntypes, nfuncs))
        .collect()
}

fn arbitrary_instr(rng: &mut TestRng, depth: u32, ntypes: u64, nfuncs: u64) -> WInstr {
    use WInstr::*;
    let pick = |rng: &mut TestRng, n: u64| (rng.next_u64() % n) as u32;
    let w = |rng: &mut TestRng| {
        if rng.next_u64() % 2 == 0 {
            Width::W32
        } else {
            Width::W64
        }
    };
    let sx = |rng: &mut TestRng| {
        if rng.next_u64() % 2 == 0 {
            Sx::S
        } else {
            Sx::U
        }
    };
    let choices: u64 = if depth > 0 { 26 } else { 23 };
    match rng.next_u64() % choices {
        0 => Unreachable,
        1 => Nop,
        2 => Br(pick(rng, 4)),
        3 => BrIf(pick(rng, 4)),
        4 => BrTable(
            (0..pick(rng, 3)).map(|_| pick(rng, 3)).collect(),
            pick(rng, 3),
        ),
        5 => Return,
        6 => Call(pick(rng, nfuncs)),
        7 => CallIndirect(pick(rng, ntypes)),
        8 => Drop,
        9 => Select,
        10 => LocalGet(pick(rng, 8)),
        11 => LocalSet(pick(rng, 8)),
        12 => LocalTee(pick(rng, 8)),
        13 => GlobalGet(pick(rng, 4)),
        14 => GlobalSet(pick(rng, 4)),
        15 => I32Const(rng.next_u64() as i32),
        16 => I64Const(rng.next_u64() as i64),
        17 => {
            let width = w(rng);
            IBin(
                width,
                match rng.next_u64() % 5 {
                    0 => IBinOp::Add,
                    1 => IBinOp::Sub,
                    2 => IBinOp::Xor,
                    3 => IBinOp::Shr(sx(rng)),
                    _ => IBinOp::Rotl,
                },
            )
        }
        18 => IRel(
            w(rng),
            match rng.next_u64() % 3 {
                0 => IRelOp::Eq,
                1 => IRelOp::Lt(sx(rng)),
                _ => IRelOp::Ge(sx(rng)),
            },
        ),
        19 => FBin(
            w(rng),
            match rng.next_u64() % 3 {
                0 => FBinOp::Add,
                1 => FBinOp::Min,
                _ => FBinOp::Copysign,
            },
        ),
        20 => Load(ValType::I32, pick(rng, 256)),
        21 => Store(ValType::I64, pick(rng, 256)),
        22 => ITruncF(w(rng), w(rng), sx(rng)),
        23 => Block(
            arbitrary_blocktype(rng, ntypes),
            arbitrary_body(rng, depth - 1, ntypes, nfuncs),
        ),
        24 => Loop(
            arbitrary_blocktype(rng, ntypes),
            arbitrary_body(rng, depth - 1, ntypes, nfuncs),
        ),
        _ => If(
            arbitrary_blocktype(rng, ntypes),
            arbitrary_body(rng, depth - 1, ntypes, nfuncs),
            arbitrary_body(rng, depth - 1, ntypes, nfuncs),
        ),
    }
}

fn arbitrary_blocktype(rng: &mut TestRng, ntypes: u64) -> BlockType {
    match rng.next_u64() % 3 {
        0 => BlockType::Empty,
        1 => BlockType::Value(match rng.next_u64() % 4 {
            0 => ValType::I32,
            1 => ValType::I64,
            2 => ValType::F32,
            _ => ValType::F64,
        }),
        // Deliberately may exceed the type-section length, so both
        // checkers must reject it the same way.
        _ => BlockType::Func((rng.next_u64() % (ntypes + 1)) as u32),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn reverifier_agrees_with_validator(m in BoxedStrategy::from_fn(arbitrary_module)) {
        let v = validate_module(&m);
        let r = reverify_module(&m);
        prop_assert_eq!(
            v.is_ok(),
            r.is_ok(),
            "checker disagreement\nvalidator: {:?}\nre-verifier: {:?}\nmodule: {:#?}",
            v, r, m
        );
    }
}
