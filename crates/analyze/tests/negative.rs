//! Handcrafted negative modules: each pass must flag its target defect,
//! and the cost pass's step model must match the interpreter's metering
//! exactly on straight-line code.

use richwasm_analyze::{analyze_module, Bound, Pass, Severity, NEVER};
use richwasm_wasm::ast::*;
use richwasm_wasm::exec::WasmLinker;

fn module_with(body: Vec<WInstr>, results: Vec<ValType>) -> Module {
    Module {
        types: vec![FuncType {
            params: vec![],
            results,
        }],
        funcs: vec![FuncDef {
            type_idx: 0,
            locals: vec![],
            body,
        }],
        exports: vec![Export {
            name: "f".into(),
            kind: ExportKind::Func(0),
        }],
        ..Module::default()
    }
}

#[test]
fn verify_pass_flags_an_invalid_module() {
    // i64 produced where the function type demands i32: both checkers
    // must reject, and the report must carry a Deny diagnostic.
    let m = module_with(vec![WInstr::I64Const(1)], vec![ValType::I32]);
    let report = analyze_module(&m);
    assert!(report.has_deny());
    assert!(report
        .deny_diagnostics()
        .iter()
        .all(|d| d.pass == Pass::Verify));
}

#[test]
fn clean_module_has_no_deny_findings() {
    let m = module_with(vec![WInstr::I32Const(7)], vec![ValType::I32]);
    let report = analyze_module(&m);
    assert!(!report.has_deny(), "diagnostics: {:?}", report.diagnostics);
    assert_eq!(report.cost.min_steps_of_export("f"), Some(1));
}

#[test]
fn cost_min_matches_interpreter_metering_on_straight_line_code() {
    // i32.const, i32.const, i32.add = 3 steps exactly.
    let m = module_with(
        vec![
            WInstr::I32Const(2),
            WInstr::I32Const(3),
            WInstr::IBin(Width::W32, IBinOp::Add),
        ],
        vec![ValType::I32],
    );
    let report = analyze_module(&m);
    let min = report.cost.min_steps_of_export("f").unwrap();
    assert_eq!(min, 3);
    assert_eq!(report.cost.funcs[0].max_steps, Bound::Finite(3));

    // The interpreter agrees: a budget of min-1 exhausts, min completes.
    let mut linker = WasmLinker::new();
    let idx = linker.instantiate("m", m.clone()).unwrap();
    linker.max_steps = min - 1;
    assert!(linker.invoke(idx, "f", &[]).is_err());
    let mut linker = WasmLinker::new();
    let idx = linker.instantiate("m", m).unwrap();
    linker.max_steps = min;
    assert!(linker.invoke(idx, "f", &[]).is_ok());
}

#[test]
fn cost_min_is_a_sound_lower_bound_on_branchy_code() {
    // if/else with asymmetric arms: min must be ≤ the cheap arm's cost
    // and the interpreter must complete any run given enough fuel.
    let m = module_with(
        vec![
            WInstr::I32Const(0),
            WInstr::If(
                BlockType::Value(ValType::I32),
                vec![
                    WInstr::I32Const(1),
                    WInstr::I32Const(2),
                    WInstr::IBin(Width::W32, IBinOp::Add),
                ],
                vec![WInstr::I32Const(9)],
            ),
        ],
        vec![ValType::I32],
    );
    let report = analyze_module(&m);
    let min = report.cost.min_steps_of_export("f").unwrap();
    // const(1) + if(1) + cheap arm const(1) = 3
    assert_eq!(min, 3);
    let mut linker = WasmLinker::new();
    let idx = linker.instantiate("m", m).unwrap();
    linker.max_steps = min;
    // Condition 0 takes the else arm, which is exactly the cheap path.
    assert_eq!(linker.invoke(idx, "f", &[]).unwrap().len(), 1);
}

#[test]
fn then_arm_fallthrough_reaches_the_merge_not_the_else_arm() {
    // Regression: the then arm's dataflow successor is the merge *after*
    // the whole `if`, not the else arm that merely follows it in linear
    // layout — flowing it into a trapping else arm made min NEVER for a
    // function that completes.
    let m = module_with(
        vec![
            WInstr::I32Const(1),
            WInstr::If(
                BlockType::Empty,
                vec![WInstr::Nop],
                vec![WInstr::Unreachable],
            ),
        ],
        vec![],
    );
    let report = analyze_module(&m);
    // const(1) + if(1) + nop(1) = 3 via the then arm.
    assert_eq!(report.cost.funcs[0].min_steps, 3);

    // The interpreter agrees: condition 1 takes the then arm and
    // completes on exactly that budget.
    let mut linker = WasmLinker::new();
    let idx = linker.instantiate("m", m).unwrap();
    linker.max_steps = 3;
    assert!(linker.invoke(idx, "f", &[]).is_ok());
}

#[test]
fn cost_pass_flags_a_function_that_can_never_complete() {
    let m = module_with(vec![WInstr::Unreachable], vec![]);
    let report = analyze_module(&m);
    assert_eq!(report.cost.funcs[0].min_steps, NEVER);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.pass == Pass::Cost && d.severity == Severity::Warn));
}

#[test]
fn looping_loop_is_unbounded_with_iteration_floor() {
    // loop { local.get; br_if 0 } — a real back edge.
    let mut m = Module::default();
    let ft = m.intern_type(FuncType {
        params: vec![],
        results: vec![],
    });
    m.funcs.push(FuncDef {
        type_idx: ft,
        locals: vec![ValType::I32],
        body: vec![WInstr::Loop(
            BlockType::Empty,
            vec![WInstr::LocalGet(0), WInstr::BrIf(0)],
        )],
    });
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(0),
    });
    let report = analyze_module(&m);
    let fc = &report.cost.funcs[0];
    // Cheapest completion: loop(1) + local.get(1) + br_if(1) = 3.
    assert_eq!(fc.min_steps, 3);
    match fc.max_steps {
        Bound::Unbounded { min_iteration } => {
            // One iteration re-runs local.get + br_if = 2 steps.
            assert_eq!(min_iteration, 2);
        }
        Bound::Finite(n) => panic!("expected unbounded, got ≤{n}"),
    }
}

#[test]
fn non_looping_loop_is_finite() {
    let m = module_with(
        vec![
            WInstr::Loop(BlockType::Value(ValType::I32), vec![WInstr::I32Const(1)]),
            WInstr::Drop,
        ],
        vec![],
    );
    let report = analyze_module(&m);
    // loop(1) + const(1) + drop(1) = 3.
    assert_eq!(report.cost.funcs[0].max_steps, Bound::Finite(3));
}

#[test]
fn callgraph_flags_a_call_indirect_that_can_only_trap() {
    // Local table with no element entries: every call_indirect traps.
    let mut m = module_with(vec![WInstr::I32Const(0), WInstr::CallIndirect(0)], vec![]);
    m.table = Some(1);
    let report = analyze_module(&m);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.pass == Pass::CallGraph && d.message.contains("traps if executed")));
    // And the cost pass agrees the function can never complete.
    assert_eq!(report.cost.funcs[0].min_steps, NEVER);
}

#[test]
fn callgraph_flags_an_unreachable_function() {
    let mut m = module_with(vec![], vec![]);
    // A second function nobody references.
    m.funcs.push(FuncDef {
        type_idx: 0,
        locals: vec![],
        body: vec![],
    });
    let report = analyze_module(&m);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.pass == Pass::CallGraph && d.func == 1 && d.message.contains("unreachable")));
}

#[test]
fn callgraph_bounds_call_depth() {
    // f calls g calls (nothing): depth 2.
    let mut m = module_with(vec![WInstr::Call(1)], vec![]);
    m.funcs.push(FuncDef {
        type_idx: 0,
        locals: vec![],
        body: vec![],
    });
    let report = analyze_module(&m);
    assert_eq!(report.cost.max_call_depth, Some(2));

    // Self-recursion: unbounded.
    let m = module_with(vec![WInstr::Call(0)], vec![]);
    let report = analyze_module(&m);
    assert_eq!(report.cost.max_call_depth, None);
}

#[test]
fn deadcode_flags_instructions_after_an_unconditional_branch() {
    let m = module_with(
        vec![WInstr::Block(
            BlockType::Empty,
            vec![
                WInstr::Br(0),
                WInstr::I32Const(1), // dead
                WInstr::Drop,        // dead
            ],
        )],
        vec![],
    );
    let report = analyze_module(&m);
    let dead: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.pass == Pass::DeadCode)
        .collect();
    assert_eq!(dead.len(), 1, "diagnostics: {:?}", report.diagnostics);
    assert!(dead[0].message.contains("2 dead instruction(s)"));
    assert!(!report.has_deny());
}

#[test]
fn recursion_makes_max_unbounded_but_keeps_min() {
    // even/odd-style mutual recursion.
    let mut m = module_with(
        vec![
            WInstr::I32Const(0),
            WInstr::If(BlockType::Empty, vec![WInstr::Call(1)], vec![]),
        ],
        vec![],
    );
    m.funcs.push(FuncDef {
        type_idx: 0,
        locals: vec![],
        body: vec![WInstr::Call(0)],
    });
    let report = analyze_module(&m);
    // f can complete without recursing: const + if = 2 steps.
    assert_eq!(report.cost.funcs[0].min_steps, 2);
    assert!(matches!(
        report.cost.funcs[1].max_steps,
        Bound::Unbounded { .. }
    ));
    assert_eq!(report.cost.max_call_depth, None);
}
